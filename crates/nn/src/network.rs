//! Sequential network container and the two architectures the paper uses.

use airchitect_tensor::{gemm, ops, Matrix};
use serde::{Deserialize, Serialize};

use crate::layer::{Dense, Dropout, Embedding, Layer, Relu};
use crate::Param;

/// Caller-owned scratch for the allocation-free forward/backward paths
/// ([`Sequential::forward_ws`], [`Sequential::backward_ws`],
/// [`Sequential::infer_ws`]).
///
/// Holds one activation buffer per layer plus two ping-pong gradient
/// buffers; all of them (and the layers' own caches) are recycled across
/// batches, so after the first batch the training hot loop performs zero
/// heap allocations. Create it once per training or inference run and
/// keep passing the same instance.
#[derive(Debug)]
pub struct Workspace {
    acts: Vec<Matrix>,
    grads: Vec<Matrix>,
    threads: usize,
}

impl Workspace {
    /// Creates a workspace that runs kernels on [`gemm::num_threads`]
    /// threads.
    pub fn new() -> Self {
        Self::with_threads(gemm::num_threads())
    }

    /// Creates a workspace with an explicit kernel thread count.
    /// Thread count never affects results, only wall-clock time.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            acts: Vec::new(),
            grads: Vec::new(),
            threads: threads.max(1),
        }
    }

    /// The kernel thread count this workspace dispatches with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn ensure(&mut self, num_layers: usize) {
        if self.acts.len() < num_layers {
            self.acts.resize_with(num_layers, || Matrix::zeros(1, 1));
        }
        if self.grads.len() < 2 {
            self.grads.resize_with(2, || Matrix::zeros(1, 1));
        }
    }
}

impl Default for Workspace {
    fn default() -> Self {
        Self::new()
    }
}

/// A feed-forward stack of [`Layer`]s trained end to end.
///
/// Two constructors cover the paper's model zoo:
///
/// * [`Sequential::mlp`] — the MLP-A/B/C/D baselines (paper Fig. 9 table):
///   raw (normalized) features through hidden ReLU layers,
/// * [`Sequential::embedding_mlp`] — the AIrchitect architecture (paper
///   Fig. 2): per-feature embeddings, then a hidden ReLU layer, then the
///   classification head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sequential {
    layers: Vec<Layer>,
    in_dim: usize,
    out_dim: usize,
}

impl Sequential {
    /// Builds a plain MLP: `in_dim → hidden[0] → … → num_classes` with ReLU
    /// between dense layers.
    ///
    /// # Panics
    ///
    /// Panics if `in_dim` or `num_classes` is zero.
    pub fn mlp(in_dim: usize, hidden: &[usize], num_classes: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && num_classes > 0, "dims must be positive");
        let mut layers = Vec::new();
        let mut prev = in_dim;
        for (i, &h) in hidden.iter().enumerate() {
            layers.push(Layer::Dense(Dense::new(
                prev,
                h,
                seed.wrapping_add(i as u64),
            )));
            layers.push(Layer::Relu(Relu::new()));
            prev = h;
        }
        layers.push(Layer::Dense(Dense::new(
            prev,
            num_classes,
            seed.wrapping_add(1000),
        )));
        Self {
            layers,
            in_dim,
            out_dim: num_classes,
        }
    }

    /// Builds the AIrchitect architecture: per-feature embeddings (size
    /// `embed_dim`, vocabulary `vocab`) → Dense(`hidden`) → ReLU →
    /// Dense(`num_classes`).
    ///
    /// The paper uses `embed_dim = 16` and `hidden = 256` across all case
    /// studies.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn embedding_mlp(
        num_features: usize,
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        num_classes: usize,
        seed: u64,
    ) -> Self {
        assert!(hidden > 0 && num_classes > 0, "dims must be positive");
        let emb = Embedding::new(num_features, vocab, embed_dim, seed);
        let concat = emb.out_dim();
        Self {
            layers: vec![
                Layer::Embedding(emb),
                Layer::Dense(Dense::new(concat, hidden, seed.wrapping_add(1))),
                Layer::Relu(Relu::new()),
                Layer::Dense(Dense::new(hidden, num_classes, seed.wrapping_add(2))),
            ],
            in_dim: num_features,
            out_dim: num_classes,
        }
    }

    /// The AIrchitect architecture with dropout after the hidden ReLU —
    /// the regularized variant for overfit-prone spaces (the paper's CS2
    /// "starts to overfit" after ~22 epochs).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `rate` is outside `[0, 1)`.
    #[allow(clippy::too_many_arguments)]
    pub fn embedding_mlp_dropout(
        num_features: usize,
        vocab: usize,
        embed_dim: usize,
        hidden: usize,
        num_classes: usize,
        rate: f32,
        seed: u64,
    ) -> Self {
        let mut net =
            Self::embedding_mlp(num_features, vocab, embed_dim, hidden, num_classes, seed);
        // Insert dropout between the hidden ReLU and the classifier head.
        let head = net.layers.pop().expect("embedding_mlp has layers");
        net.layers.push(Layer::Dropout(Dropout::new(rate, seed)));
        net.layers.push(head);
        net
    }

    /// Input width the network expects.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Number of output classes.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Builds a network from explicit layers (used by the deserializer).
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    pub fn from_layers(layers: Vec<Layer>, in_dim: usize, out_dim: usize) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        Self {
            layers,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass returning logits.
    pub fn forward(&mut self, x: &Matrix, training: bool) -> Matrix {
        let mut h = x.clone();
        for l in &mut self.layers {
            h = l.forward(&h, training);
        }
        h
    }

    /// Backward pass from the loss gradient on the logits.
    pub fn backward(&mut self, grad: &Matrix) {
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// Forward pass through workspace-owned buffers; returns the logits,
    /// which live in the workspace. Allocation-free after the first call
    /// with a given batch shape.
    pub fn forward_ws<'ws>(
        &mut self,
        x: &Matrix,
        ws: &'ws mut Workspace,
        training: bool,
    ) -> &'ws Matrix {
        ws.ensure(self.layers.len());
        let threads = ws.threads;
        for (i, l) in self.layers.iter_mut().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(i);
            let input = if i == 0 { x } else { &prev[i - 1] };
            l.forward_into(input, &mut rest[0], training, threads);
        }
        &ws.acts[self.layers.len() - 1]
    }

    /// Backward pass from the loss gradient on the logits, ping-ponging
    /// between the workspace's two gradient buffers. Must follow a
    /// training-mode [`Sequential::forward_ws`]. Allocation-free after
    /// warm-up; parameter gradients accumulate exactly as in
    /// [`Sequential::backward`].
    pub fn backward_ws(&mut self, loss_grad: &Matrix, ws: &mut Workspace) {
        ws.ensure(self.layers.len());
        let threads = ws.threads;
        let (left, right) = ws.grads.split_at_mut(1);
        let ga = &mut left[0];
        let gb = &mut right[0];
        let n = self.layers.len();
        // `flip` tracks which ping-pong buffer holds the incoming
        // gradient; the deepest layer reads `loss_grad` directly.
        let mut flip = false;
        for i in (0..n).rev() {
            let need_dx = i > 0;
            let l = &mut self.layers[i];
            if i == n - 1 {
                l.backward_into(loss_grad, ga, need_dx, threads);
                flip = false;
            } else if !flip {
                l.backward_into(&*ga, gb, need_dx, threads);
                flip = true;
            } else {
                l.backward_into(&*gb, ga, need_dx, threads);
                flip = false;
            }
        }
    }

    /// Inference through workspace-owned buffers; returns the logits,
    /// which live in the workspace. No layer caches are touched, so this
    /// works on a shared reference. Allocation-free after the first call
    /// with a given batch shape.
    pub fn infer_ws<'ws>(&self, x: &Matrix, ws: &'ws mut Workspace) -> &'ws Matrix {
        ws.ensure(self.layers.len());
        let threads = ws.threads;
        for (i, l) in self.layers.iter().enumerate() {
            let (prev, rest) = ws.acts.split_at_mut(i);
            let input = if i == 0 { x } else { &prev[i - 1] };
            l.infer_into(input, &mut rest[0], threads);
        }
        &ws.acts[self.layers.len() - 1]
    }

    /// Visits every trainable parameter in [`Sequential::params_mut`]
    /// order without allocating the intermediate `Vec`.
    pub fn for_each_param(&mut self, mut f: impl FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.for_each_param(&mut f);
        }
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// All trainable parameters, read-only, in the same order as
    /// [`Sequential::params_mut`].
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total scalar parameter count.
    pub fn num_params(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// Inference-only forward pass returning logits (no caches touched).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for l in &self.layers {
            h = l.infer(&h);
        }
        h
    }

    /// Predicts class labels (argmax over logits) for a feature matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<u32> {
        ops::argmax_rows(&self.infer(x))
    }

    /// Predicts the label of a single feature row.
    pub fn predict_one(&self, row: &[f32]) -> u32 {
        let x = Matrix::from_vec(1, row.len(), row.to_vec());
        self.predict(&x)[0]
    }

    /// The `k` most likely labels for one feature row, with softmax
    /// probabilities, sorted most-likely first.
    ///
    /// Recommenders naturally return ranked lists: a designer can inspect
    /// the runner-up configurations when the top pick is inconvenient.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn predict_topk(&self, row: &[f32], k: usize) -> Vec<(u32, f32)> {
        assert!(k > 0, "k must be positive");
        let x = Matrix::from_vec(1, row.len(), row.to_vec());
        let probs = ops::softmax_rows(&self.infer(&x));
        let mut ranked: Vec<(u32, f32)> = probs
            .row(0)
            .iter()
            .enumerate()
            .map(|(i, &p)| (i as u32, p))
            .collect();
        // `total_cmp`, not `partial_cmp`: a corrupt or diverged checkpoint
        // can emit NaN logits, which must degrade to a bad ranking (NaNs
        // sink to the tail) rather than a panic in the serving path.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
        ranked.truncate(k.min(self.out_dim));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_shapes() {
        let mut net = Sequential::mlp(4, &[8, 8], 3, 1);
        let y = net.forward(&Matrix::zeros(5, 4), false);
        assert_eq!((y.rows(), y.cols()), (5, 3));
        // 4*8+8 + 8*8+8 + 8*3+3 parameters.
        assert_eq!(net.num_params(), 40 + 72 + 27);
    }

    #[test]
    fn embedding_mlp_shapes() {
        let mut net = Sequential::embedding_mlp(4, 64, 16, 256, 459, 1);
        let y = net.forward(&Matrix::zeros(2, 4), false);
        assert_eq!((y.rows(), y.cols()), (2, 459));
        assert_eq!(net.in_dim(), 4);
        assert_eq!(net.out_dim(), 459);
    }

    #[test]
    fn deterministic_construction() {
        let mut a = Sequential::mlp(3, &[5], 2, 9);
        let mut b = Sequential::mlp(3, &[5], 2, 9);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn predict_one_matches_batch() {
        let net = Sequential::mlp(2, &[4], 3, 5);
        let x = Matrix::from_rows(&[&[0.3, -1.2], &[2.0, 0.1]]);
        let batch = net.predict(&x);
        assert_eq!(net.predict_one(&[0.3, -1.2]), batch[0]);
        assert_eq!(net.predict_one(&[2.0, 0.1]), batch[1]);
    }

    #[test]
    fn dropout_variant_trains_and_infers_deterministically() {
        let mut net = Sequential::embedding_mlp_dropout(2, 8, 4, 16, 3, 0.3, 1);
        assert_eq!(net.layers().len(), 5);
        let x = Matrix::from_rows(&[&[1.0, 2.0]]);
        // Inference is mask-free and stable.
        assert_eq!(net.infer(&x), net.infer(&x));
        // Training path runs end to end.
        let y = net.forward(&x, true);
        net.backward(&y);
    }

    #[test]
    fn predict_topk_is_ranked_and_consistent() {
        let net = Sequential::mlp(3, &[8], 5, 2);
        let row = [0.4, -0.7, 1.3];
        let top = net.predict_topk(&row, 3);
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(top[0].0, net.predict_one(&row));
        // Probabilities are valid.
        assert!(top.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
        // k larger than the class count is clamped.
        assert_eq!(net.predict_topk(&row, 99).len(), 5);
    }

    #[test]
    fn predict_topk_survives_nan_logits() {
        // A diverged or corrupted parameter set yields NaN logits, which the
        // softmax sum spreads to every class probability; ranking must return
        // a full (if meaningless) list instead of panicking in the sort.
        let mut net = Sequential::mlp(3, &[8], 5, 2);
        net.for_each_param(|p| p.value.fill(f32::NAN));
        let top = net.predict_topk(&[0.4, -0.7, 1.3], 5);
        assert_eq!(top.len(), 5);
        assert!(top.iter().all(|&(_, p)| p.is_nan()));
        // Every class still appears exactly once.
        let mut labels: Vec<u32> = top.iter().map(|&(l, _)| l).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut net = Sequential::mlp(2, &[4], 2, 1);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let y = net.forward(&x, true);
        net.backward(&y);
        assert!(net
            .params_mut()
            .iter()
            .any(|p| p.grad.iter().any(|&g| g != 0.0)));
        net.zero_grad();
        assert!(net
            .params_mut()
            .iter()
            .all(|p| p.grad.iter().all(|&g| g == 0.0)));
    }

    #[test]
    fn workspace_forward_backward_match_allocating_path() {
        // The zero-allocation workspace path must produce bit-identical
        // activations and parameter gradients to the original API.
        let x = Matrix::from_rows(&[&[0.5, -1.0, 2.0], &[1.5, 0.25, -0.75]]);
        let grad = Matrix::from_rows(&[&[0.1, -0.2], &[0.3, 0.05]]);

        let mut old = Sequential::mlp(3, &[8, 4], 2, 11);
        let y_old = old.forward(&x, true);
        old.backward(&grad);

        let mut ws = Workspace::with_threads(2);
        let mut new = Sequential::mlp(3, &[8, 4], 2, 11);
        let y_new = new.forward_ws(&x, &mut ws, true).clone();
        new.backward_ws(&grad, &mut ws);

        assert_eq!(y_old, y_new);
        // The caches differ by design (backward() clears, the workspace
        // path retains), so compare the parameters, grads included.
        assert_eq!(
            old.params(),
            new.params(),
            "parameter gradients must match bit for bit"
        );
    }

    #[test]
    fn workspace_embedding_network_matches_allocating_path() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 1.0]]);
        let grad = Matrix::from_rows(&[&[0.2, -0.1, 0.05], &[-0.3, 0.1, 0.2]]);

        let mut old = Sequential::embedding_mlp(2, 4, 8, 16, 3, 5);
        let y_old = old.forward(&x, true);
        old.backward(&grad);

        let mut ws = Workspace::new();
        let mut new = Sequential::embedding_mlp(2, 4, 8, 16, 3, 5);
        let y_new = new.forward_ws(&x, &mut ws, true).clone();
        new.backward_ws(&grad, &mut ws);

        assert_eq!(y_old, y_new);
        assert_eq!(old.params(), new.params());
    }

    #[test]
    fn infer_ws_matches_infer_and_reuses_buffers() {
        let net = Sequential::mlp(3, &[6], 4, 2);
        let mut ws = Workspace::new();
        let a = Matrix::from_rows(&[&[0.1, 0.2, 0.3]]);
        let b = Matrix::from_rows(&[&[5.0, -2.0, 0.0], &[1.0, 1.0, 1.0]]);
        assert_eq!(net.infer(&a), *net.infer_ws(&a, &mut ws));
        // Second call with a different batch size reuses the same workspace.
        assert_eq!(net.infer(&b), *net.infer_ws(&b, &mut ws));
    }
}
