//! Evaluation metrics: accuracy and the geometric mean the paper reports for
//! misprediction penalties (Fig. 10g-h, "99.9% average performance
//! (Geometric Mean)").

/// Fraction of predictions equal to their labels.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn accuracy(predictions: &[u32], labels: &[u32]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty inputs");
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / predictions.len() as f64
}

/// Geometric mean of strictly-positive values; zeros are clamped to `floor`
/// so a single catastrophic outcome (performance 0) cannot send the mean to
/// zero — matching how the paper reports a finite GeoMean despite a few
/// catastrophic mispredictions.
///
/// # Panics
///
/// Panics if `values` is empty or `floor` is not positive.
pub fn geometric_mean(values: &[f64], floor: f64) -> f64 {
    assert!(!values.is_empty(), "empty inputs");
    assert!(floor > 0.0, "floor must be positive");
    let log_sum: f64 = values.iter().map(|&v| v.max(floor).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Top-k accuracy: fraction of samples whose true label appears in the
/// model's ranked candidate list.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn topk_accuracy(ranked: &[Vec<u32>], labels: &[u32]) -> f64 {
    assert_eq!(ranked.len(), labels.len(), "length mismatch");
    assert!(!ranked.is_empty(), "empty inputs");
    let hits = ranked
        .iter()
        .zip(labels)
        .filter(|(cands, l)| cands.contains(l))
        .count();
    hits as f64 / labels.len() as f64
}

/// Fraction of values below `threshold` (e.g. the paper's "<20% of optimal"
/// catastrophic bucket).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn fraction_below(values: &[f64], threshold: f64) -> f64 {
    assert!(!values.is_empty(), "empty inputs");
    values.iter().filter(|&&v| v < threshold).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 4]), 2.0 / 3.0);
        assert_eq!(accuracy(&[5], &[5]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_rejects_mismatched_lengths() {
        let _ = accuracy(&[1], &[1, 2]);
    }

    #[test]
    fn geometric_mean_of_constant_is_constant() {
        assert!((geometric_mean(&[0.5, 0.5, 0.5], 1e-6) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_clamps_zeros() {
        let g = geometric_mean(&[1.0, 0.0], 0.01);
        assert!((g - (0.01f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_below_arithmetic_mean() {
        let vals = [0.2, 0.9, 1.0, 0.6];
        let arith: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(geometric_mean(&vals, 1e-9) < arith);
    }

    #[test]
    fn topk_accuracy_counts_list_hits() {
        let ranked = vec![vec![3, 1, 2], vec![0, 5], vec![9]];
        let labels = [1, 7, 9];
        assert!((topk_accuracy(&ranked, &labels) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fraction_below_threshold() {
        assert_eq!(fraction_below(&[0.1, 0.5, 0.9], 0.5), 1.0 / 3.0);
        assert_eq!(fraction_below(&[1.0, 1.0], 0.2), 0.0);
    }
}
