use serde::{Deserialize, Serialize};

use crate::WorkloadError;

/// A dense GEMM workload computing `C[M x N] = A[M x K] · B[K x N]`.
///
/// In the paper's CNN terminology (Eyeriss-style, im2col lowering):
///
/// * `A` (`M x K`) is the **IFMAP** operand — `M` output pixels by `K`
///   unrolled input-channel/kernel elements,
/// * `B` (`K x N`) is the **Filter** operand — `N` output channels,
/// * `C` (`M x N`) is the **OFMAP** (or partial sums while accumulating).
///
/// Dimensions are strictly positive; see [`GemmWorkload::new`].
///
/// # Example
///
/// ```
/// use airchitect_workload::GemmWorkload;
///
/// let wl = GemmWorkload::new(128, 256, 64)?;
/// assert_eq!(wl.macs(), 128 * 256 * 64);
/// assert_eq!(wl.ifmap_elems(), 128 * 64);
/// # Ok::<(), airchitect_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GemmWorkload {
    m: u64,
    n: u64,
    k: u64,
}

impl GemmWorkload {
    /// Creates a GEMM workload `M x K · K x N`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroDimension`] if any dimension is zero.
    pub fn new(m: u64, n: u64, k: u64) -> Result<Self, WorkloadError> {
        for (v, which) in [(m, "M"), (n, "N"), (k, "K")] {
            if v == 0 {
                return Err(WorkloadError::ZeroDimension { which });
            }
        }
        Ok(Self { m, n, k })
    }

    /// The `M` dimension (rows of `A` and `C`).
    pub fn m(&self) -> u64 {
        self.m
    }

    /// The `N` dimension (columns of `B` and `C`).
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The `K` dimension (inner / reduction dimension).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Total number of multiply-accumulate operations: `M · N · K`.
    pub fn macs(&self) -> u64 {
        self.m * self.n * self.k
    }

    /// Number of elements in the IFMAP operand `A[M x K]`.
    pub fn ifmap_elems(&self) -> u64 {
        self.m * self.k
    }

    /// Number of elements in the Filter operand `B[K x N]`.
    pub fn filter_elems(&self) -> u64 {
        self.k * self.n
    }

    /// Number of elements in the OFMAP operand `C[M x N]`.
    pub fn ofmap_elems(&self) -> u64 {
        self.m * self.n
    }

    /// Aspect ratio `M : K` of the IFMAP operand (paper Fig. 6a x-axis).
    pub fn ifmap_aspect(&self) -> f64 {
        self.m as f64 / self.k as f64
    }

    /// Aspect ratio `K : N` of the Filter operand (paper Fig. 6b x-axis).
    pub fn filter_aspect(&self) -> f64 {
        self.k as f64 / self.n as f64
    }

    /// Aspect ratio `M : N` of the OFMAP operand (paper Fig. 6c x-axis).
    pub fn ofmap_aspect(&self) -> f64 {
        self.m as f64 / self.n as f64
    }

    /// The workload as an `(m, n, k)` tuple.
    pub fn as_tuple(&self) -> (u64, u64, u64) {
        (self.m, self.n, self.k)
    }
}

impl std::fmt::Display for GemmWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "GEMM(M={}, N={}, K={})", self.m, self.n, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dims() {
        assert_eq!(
            GemmWorkload::new(0, 1, 1),
            Err(WorkloadError::ZeroDimension { which: "M" })
        );
        assert_eq!(
            GemmWorkload::new(1, 0, 1),
            Err(WorkloadError::ZeroDimension { which: "N" })
        );
        assert_eq!(
            GemmWorkload::new(1, 1, 0),
            Err(WorkloadError::ZeroDimension { which: "K" })
        );
    }

    #[test]
    fn operand_sizes_are_consistent() {
        let wl = GemmWorkload::new(3, 5, 7).unwrap();
        assert_eq!(wl.macs(), 105);
        assert_eq!(wl.ifmap_elems(), 21);
        assert_eq!(wl.filter_elems(), 35);
        assert_eq!(wl.ofmap_elems(), 15);
    }

    #[test]
    fn aspect_ratios() {
        let wl = GemmWorkload::new(10, 5, 2).unwrap();
        assert!((wl.ifmap_aspect() - 5.0).abs() < 1e-12);
        assert!((wl.filter_aspect() - 0.4).abs() < 1e-12);
        assert!((wl.ofmap_aspect() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let wl = GemmWorkload::new(1, 2, 3).unwrap();
        assert_eq!(wl.to_string(), "GEMM(M=1, N=2, K=3)");
    }
}
