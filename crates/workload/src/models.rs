//! Layer tables for the CNNs used by the paper (Fig. 7a and Fig. 11a).
//!
//! The paper derives its workload distribution from "layers of popular
//! conv-nets" and evaluates the trained model on layers of FasterRCNN,
//! GoogLeNet, AlexNet, MobileNet, and ResNet-18. This module bundles those
//! layer tables so the reproduction can regenerate both the distribution
//! (Fig. 7a) and the unseen-layer evaluation (Fig. 11a).
//!
//! Layer hyper-parameters follow the original publications; fully-connected
//! layers are expressed directly as `M=1` GEMMs (batch size one).

use crate::{ConvLayer, GemmWorkload};

/// A named network: its list of convolution layers plus any FC-layer GEMMs.
#[derive(Debug, Clone)]
pub struct NetworkTable {
    /// Human readable network name (e.g. `"resnet18"`).
    pub name: &'static str,
    /// Convolution layers, lowered lazily via [`ConvLayer::to_gemm`].
    pub convs: Vec<ConvLayer>,
    /// Additional GEMMs (fully-connected layers), already lowered.
    pub extra_gemms: Vec<(String, GemmWorkload)>,
}

impl NetworkTable {
    /// All GEMM workloads of the network, in layer order, with names.
    pub fn gemms(&self) -> Vec<(String, GemmWorkload)> {
        let mut out: Vec<(String, GemmWorkload)> = self
            .convs
            .iter()
            .filter_map(|c| c.to_gemm().ok().map(|g| (c.name().to_string(), g)))
            .collect();
        out.extend(self.extra_gemms.iter().cloned());
        out
    }
}

fn conv(name: &str, hw: u64, cin: u64, cout: u64, k: u64, stride: u64, pad: u64) -> ConvLayer {
    ConvLayer::new(name, hw, hw, cin, cout, k, k, stride, pad)
        .expect("static layer tables are valid")
}

fn fc(name: &str, inputs: u64, outputs: u64) -> (String, GemmWorkload) {
    (
        name.to_string(),
        GemmWorkload::new(1, outputs, inputs).expect("static layer tables are valid"),
    )
}

/// AlexNet (Krizhevsky et al., 2012): 5 convolutions and 3 FC layers.
pub fn alexnet() -> NetworkTable {
    NetworkTable {
        name: "alexnet",
        convs: vec![
            conv("conv1", 227, 3, 96, 11, 4, 0),
            conv("conv2", 27, 96, 256, 5, 1, 2),
            conv("conv3", 13, 256, 384, 3, 1, 1),
            conv("conv4", 13, 384, 384, 3, 1, 1),
            conv("conv5", 13, 384, 256, 3, 1, 1),
        ],
        extra_gemms: vec![
            fc("fc6", 9216, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    }
}

/// ResNet-18 (He et al., 2015): stem plus the four basic-block stages.
pub fn resnet18() -> NetworkTable {
    NetworkTable {
        name: "resnet18",
        convs: vec![
            conv("conv1", 224, 3, 64, 7, 2, 3),
            // Stage 1: 56x56, 64ch
            conv("layer1.0.conv1", 56, 64, 64, 3, 1, 1),
            conv("layer1.0.conv2", 56, 64, 64, 3, 1, 1),
            conv("layer1.1.conv1", 56, 64, 64, 3, 1, 1),
            conv("layer1.1.conv2", 56, 64, 64, 3, 1, 1),
            // Stage 2: downsample to 28x28, 128ch
            conv("layer2.0.conv1", 56, 64, 128, 3, 2, 1),
            conv("layer2.0.conv2", 28, 128, 128, 3, 1, 1),
            conv("layer2.0.downsample", 56, 64, 128, 1, 2, 0),
            conv("layer2.1.conv1", 28, 128, 128, 3, 1, 1),
            conv("layer2.1.conv2", 28, 128, 128, 3, 1, 1),
            // Stage 3: 14x14, 256ch
            conv("layer3.0.conv1", 28, 128, 256, 3, 2, 1),
            conv("layer3.0.conv2", 14, 256, 256, 3, 1, 1),
            conv("layer3.0.downsample", 28, 128, 256, 1, 2, 0),
            conv("layer3.1.conv1", 14, 256, 256, 3, 1, 1),
            conv("layer3.1.conv2", 14, 256, 256, 3, 1, 1),
            // Stage 4: 7x7, 512ch
            conv("layer4.0.conv1", 14, 256, 512, 3, 2, 1),
            conv("layer4.0.conv2", 7, 512, 512, 3, 1, 1),
            conv("layer4.0.downsample", 14, 256, 512, 1, 2, 0),
            conv("layer4.1.conv1", 7, 512, 512, 3, 1, 1),
            conv("layer4.1.conv2", 7, 512, 512, 3, 1, 1),
        ],
        extra_gemms: vec![fc("fc", 512, 1000)],
    }
}

/// MobileNet-V1 (Howard et al., 2017): the pointwise (1x1) convolutions,
/// which dominate its GEMM work. Depthwise stages are not GEMMs and are
/// excluded, matching how SCALE-Sim-style tools ingest MobileNet.
pub fn mobilenet_v1() -> NetworkTable {
    NetworkTable {
        name: "mobilenet",
        convs: vec![
            conv("conv1", 224, 3, 32, 3, 2, 1),
            conv("pw2", 112, 32, 64, 1, 1, 0),
            conv("pw3", 56, 64, 128, 1, 1, 0),
            conv("pw4", 56, 128, 128, 1, 1, 0),
            conv("pw5", 28, 128, 256, 1, 1, 0),
            conv("pw6", 28, 256, 256, 1, 1, 0),
            conv("pw7", 14, 256, 512, 1, 1, 0),
            conv("pw8", 14, 512, 512, 1, 1, 0),
            conv("pw9", 14, 512, 512, 1, 1, 0),
            conv("pw10", 14, 512, 512, 1, 1, 0),
            conv("pw11", 14, 512, 512, 1, 1, 0),
            conv("pw12", 14, 512, 512, 1, 1, 0),
            conv("pw13", 7, 512, 1024, 1, 1, 0),
            conv("pw14", 7, 1024, 1024, 1, 1, 0),
        ],
        extra_gemms: vec![fc("fc", 1024, 1000)],
    }
}

/// GoogLeNet (Szegedy et al., 2014): stem plus representative inception
/// branches from each stage.
pub fn googlenet() -> NetworkTable {
    NetworkTable {
        name: "googlenet",
        convs: vec![
            conv("conv1", 224, 3, 64, 7, 2, 3),
            conv("conv2.reduce", 56, 64, 64, 1, 1, 0),
            conv("conv2", 56, 64, 192, 3, 1, 1),
            conv("inception3a.1x1", 28, 192, 64, 1, 1, 0),
            conv("inception3a.3x3reduce", 28, 192, 96, 1, 1, 0),
            conv("inception3a.3x3", 28, 96, 128, 3, 1, 1),
            conv("inception3a.5x5reduce", 28, 192, 16, 1, 1, 0),
            conv("inception3a.5x5", 28, 16, 32, 5, 1, 2),
            conv("inception4a.1x1", 14, 480, 192, 1, 1, 0),
            conv("inception4a.3x3reduce", 14, 480, 96, 1, 1, 0),
            conv("inception4a.3x3", 14, 96, 208, 3, 1, 1),
            conv("inception4e.3x3", 14, 160, 320, 3, 1, 1),
            conv("inception5a.1x1", 7, 832, 256, 1, 1, 0),
            conv("inception5b.3x3", 7, 192, 384, 3, 1, 1),
        ],
        extra_gemms: vec![fc("fc", 1024, 1000)],
    }
}

/// VGG-16 (Simonyan & Zisserman, 2014): all 13 convolutions plus the three
/// FC layers. Not part of the paper's Fig. 11a list (its FasterRCNN entry
/// already carries the VGG backbone), so it is excluded from
/// [`all_networks`]; useful as extra evaluation material.
pub fn vgg16() -> NetworkTable {
    NetworkTable {
        name: "vgg16",
        convs: vec![
            conv("conv1_1", 224, 3, 64, 3, 1, 1),
            conv("conv1_2", 224, 64, 64, 3, 1, 1),
            conv("conv2_1", 112, 64, 128, 3, 1, 1),
            conv("conv2_2", 112, 128, 128, 3, 1, 1),
            conv("conv3_1", 56, 128, 256, 3, 1, 1),
            conv("conv3_2", 56, 256, 256, 3, 1, 1),
            conv("conv3_3", 56, 256, 256, 3, 1, 1),
            conv("conv4_1", 28, 256, 512, 3, 1, 1),
            conv("conv4_2", 28, 512, 512, 3, 1, 1),
            conv("conv4_3", 28, 512, 512, 3, 1, 1),
            conv("conv5_1", 14, 512, 512, 3, 1, 1),
            conv("conv5_2", 14, 512, 512, 3, 1, 1),
            conv("conv5_3", 14, 512, 512, 3, 1, 1),
        ],
        extra_gemms: vec![
            fc("fc6", 25088, 4096),
            fc("fc7", 4096, 4096),
            fc("fc8", 4096, 1000),
        ],
    }
}

/// FasterRCNN (Ren et al., 2015) with a VGG-16 backbone: late backbone
/// layers, the RPN head, and the detection FC layers.
pub fn faster_rcnn() -> NetworkTable {
    NetworkTable {
        name: "faster_rcnn",
        convs: vec![
            conv("vgg.conv4_1", 75, 256, 512, 3, 1, 1),
            conv("vgg.conv4_2", 75, 512, 512, 3, 1, 1),
            conv("vgg.conv5_1", 37, 512, 512, 3, 1, 1),
            conv("vgg.conv5_2", 37, 512, 512, 3, 1, 1),
            conv("vgg.conv5_3", 37, 512, 512, 3, 1, 1),
            conv("rpn.conv", 37, 512, 512, 3, 1, 1),
            conv("rpn.cls", 37, 512, 18, 1, 1, 0),
            conv("rpn.bbox", 37, 512, 36, 1, 1, 0),
        ],
        extra_gemms: vec![
            fc("detector.fc6", 25088, 4096),
            fc("detector.fc7", 4096, 4096),
            fc("detector.cls", 4096, 21),
            fc("detector.bbox", 4096, 84),
        ],
    }
}

/// BERT-base encoder GEMMs at sequence length 128 — an **extension beyond
/// the paper's CNN-only evaluation** (its conclusion proposes applying the
/// methodology to other workloads). One encoder block: the four attention
/// projections and the two feed-forward layers, each an `M = seq` GEMM.
///
/// Deliberately *not* included in [`all_networks`], so the figure
/// regenerators stay faithful to the paper's CNN corpus; use it to probe
/// out-of-distribution generalization.
pub fn bert_base() -> NetworkTable {
    let seq = 128;
    let gemm = |name: &str, n: u64, k: u64| {
        (
            name.to_string(),
            GemmWorkload::new(seq, n, k).expect("static layer tables are valid"),
        )
    };
    NetworkTable {
        name: "bert_base",
        convs: vec![],
        extra_gemms: vec![
            gemm("attn.q", 768, 768),
            gemm("attn.k", 768, 768),
            gemm("attn.v", 768, 768),
            gemm("attn.out", 768, 768),
            gemm("ffn.up", 3072, 768),
            gemm("ffn.down", 768, 3072),
            // Attention score/context products per head (64-dim heads).
            (
                "attn.scores".to_string(),
                GemmWorkload::new(seq, seq, 64).expect("static layer tables are valid"),
            ),
            (
                "attn.context".to_string(),
                GemmWorkload::new(seq, 64, seq).expect("static layer tables are valid"),
            ),
        ],
    }
}

/// All bundled networks, in the order the paper lists them (Fig. 11a).
pub fn all_networks() -> Vec<NetworkTable> {
    vec![
        faster_rcnn(),
        googlenet(),
        alexnet(),
        mobilenet_v1(),
        resnet18(),
    ]
}

/// Convenience: AlexNet's GEMM workloads without names.
pub fn alexnet_gemms() -> Vec<GemmWorkload> {
    alexnet().gemms().into_iter().map(|(_, g)| g).collect()
}

/// Convenience: every GEMM of every bundled network, with
/// `(network, layer)` naming.
pub fn all_gemms() -> Vec<(String, GemmWorkload)> {
    let mut out = Vec::new();
    for net in all_networks() {
        for (layer, g) in net.gemms() {
            out.push((format!("{}/{layer}", net.name), g));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_networks_lower_cleanly() {
        for net in all_networks() {
            let gemms = net.gemms();
            assert!(!gemms.is_empty(), "{} has no GEMMs", net.name);
            // Every conv layer must have lowered (no empty outputs).
            assert_eq!(
                gemms.len(),
                net.convs.len() + net.extra_gemms.len(),
                "{} dropped a layer during lowering",
                net.name
            );
        }
    }

    #[test]
    fn resnet18_has_expected_layer_count() {
        // 20 convs (incl. 3 downsample projections) + 1 FC.
        assert_eq!(resnet18().gemms().len(), 21);
    }

    #[test]
    fn dims_span_the_paper_distribution_range() {
        // Fig 7a shows dims spanning roughly 1..100k in log space.
        let gemms = all_gemms();
        let max_m = gemms.iter().map(|(_, g)| g.m()).max().unwrap();
        let min_n = gemms.iter().map(|(_, g)| g.n()).min().unwrap();
        assert!(max_m > 10_000, "expected large M from early conv layers");
        assert!(min_n < 64, "expected small N from RPN/cls heads");
    }

    #[test]
    fn vgg16_has_sixteen_weight_layers() {
        let net = vgg16();
        assert_eq!(net.gemms().len(), 16);
        // conv5_3 feeding fc6: 7x7x512 = 25088 matches the fc6 K dim.
        let (name, fc6) = &net.extra_gemms[0];
        assert_eq!(name, "fc6");
        assert_eq!(fc6.k(), 25088);
        assert!(all_networks().iter().all(|n| n.name != "vgg16"));
    }

    #[test]
    fn bert_extension_is_valid_but_excluded_from_the_paper_corpus() {
        let bert = bert_base();
        assert_eq!(bert.gemms().len(), 8);
        assert!(bert.gemms().iter().all(|(_, g)| g.m() == 128));
        assert!(all_networks().iter().all(|n| n.name != "bert_base"));
    }

    #[test]
    fn all_gemms_are_uniquely_named() {
        let gemms = all_gemms();
        let mut names: Vec<&String> = gemms.iter().map(|(n, _)| n).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), gemms.len());
    }
}
