//! GEMM workload modeling for the AIrchitect reproduction.
//!
//! The paper evaluates design-space exploration on GEMM (GEneral Matrix-matrix
//! Multiplication) workloads whose dimensions are drawn from the layers of
//! popular convolutional networks (paper Fig. 7a). This crate provides:
//!
//! * [`GemmWorkload`] — the `M x K · K x N` workload description that every
//!   other crate consumes,
//! * [`ConvLayer`] — a convolution layer description plus its im2col lowering
//!   to a GEMM,
//! * [`models`] — layer tables for AlexNet, ResNet-18, MobileNet-V1,
//!   GoogLeNet, and the FasterRCNN head (the networks named in paper Fig. 11a),
//! * [`distribution`] — samplers that reproduce the paper's workload
//!   distribution for dataset generation.
//!
//! # Example
//!
//! ```
//! use airchitect_workload::{GemmWorkload, models};
//!
//! let wl = GemmWorkload::new(224, 64, 147)?;
//! assert_eq!(wl.macs(), 224 * 64 * 147);
//!
//! // Every bundled CNN lowers to a non-empty list of GEMMs.
//! assert!(!models::alexnet_gemms().is_empty());
//! # Ok::<(), airchitect_workload::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
mod gemm;

pub mod distribution;
pub mod models;

pub use conv::ConvLayer;
pub use error::WorkloadError;
pub use gemm::GemmWorkload;
