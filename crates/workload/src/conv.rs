use serde::{Deserialize, Serialize};

use crate::{GemmWorkload, WorkloadError};

/// A 2-D convolution layer, lowered to a GEMM via im2col.
///
/// The im2col lowering used throughout the systolic-array literature (and by
/// SCALE-Sim, the paper's cost model) maps a convolution onto a GEMM with
///
/// * `M = H_out · W_out` (number of output pixels),
/// * `N = C_out` (number of filters),
/// * `K = C_in · K_h · K_w` (unrolled receptive field).
///
/// # Example
///
/// ```
/// use airchitect_workload::ConvLayer;
///
/// // AlexNet conv1: 227x227x3 input, 96 11x11 filters, stride 4.
/// let conv1 = ConvLayer::new("conv1", 227, 227, 3, 96, 11, 11, 4, 0)?;
/// let gemm = conv1.to_gemm()?;
/// assert_eq!(gemm.m(), 55 * 55);
/// assert_eq!(gemm.n(), 96);
/// assert_eq!(gemm.k(), 3 * 11 * 11);
/// # Ok::<(), airchitect_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvLayer {
    name: String,
    input_h: u64,
    input_w: u64,
    in_channels: u64,
    out_channels: u64,
    kernel_h: u64,
    kernel_w: u64,
    stride: u64,
    padding: u64,
}

impl ConvLayer {
    /// Creates a convolution layer description.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidConv`] if any size or the stride is
    /// zero.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        input_h: u64,
        input_w: u64,
        in_channels: u64,
        out_channels: u64,
        kernel_h: u64,
        kernel_w: u64,
        stride: u64,
        padding: u64,
    ) -> Result<Self, WorkloadError> {
        let checks: [(u64, &'static str); 7] = [
            (input_h, "input height is zero"),
            (input_w, "input width is zero"),
            (in_channels, "input channels is zero"),
            (out_channels, "output channels is zero"),
            (kernel_h, "kernel height is zero"),
            (kernel_w, "kernel width is zero"),
            (stride, "stride is zero"),
        ];
        for (v, what) in checks {
            if v == 0 {
                return Err(WorkloadError::InvalidConv { what });
            }
        }
        Ok(Self {
            name: name.into(),
            input_h,
            input_w,
            in_channels,
            out_channels,
            kernel_h,
            kernel_w,
            stride,
            padding,
        })
    }

    /// The layer's name (e.g. `"conv1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Output height after convolution.
    pub fn output_h(&self) -> u64 {
        conv_out(self.input_h, self.kernel_h, self.stride, self.padding)
    }

    /// Output width after convolution.
    pub fn output_w(&self) -> u64 {
        conv_out(self.input_w, self.kernel_w, self.stride, self.padding)
    }

    /// Lowers the convolution to its im2col GEMM.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyOutput`] if the kernel does not fit in
    /// the (padded) input.
    pub fn to_gemm(&self) -> Result<GemmWorkload, WorkloadError> {
        let (oh, ow) = (self.output_h(), self.output_w());
        if oh == 0 || ow == 0 {
            return Err(WorkloadError::EmptyOutput);
        }
        GemmWorkload::new(
            oh * ow,
            self.out_channels,
            self.in_channels * self.kernel_h * self.kernel_w,
        )
    }
}

/// `floor((in + 2·pad - kernel) / stride) + 1`, saturating to 0 when the
/// kernel does not fit.
fn conv_out(input: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
    let padded = input + 2 * padding;
    if padded < kernel {
        return 0;
    }
    (padded - kernel) / stride + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_shape() {
        let c = ConvLayer::new("conv1", 227, 227, 3, 96, 11, 11, 4, 0).unwrap();
        assert_eq!(c.output_h(), 55);
        assert_eq!(c.output_w(), 55);
        let g = c.to_gemm().unwrap();
        assert_eq!(g.as_tuple(), (3025, 96, 363));
    }

    #[test]
    fn padding_preserves_size_for_3x3_stride_1() {
        let c = ConvLayer::new("same", 56, 56, 64, 64, 3, 3, 1, 1).unwrap();
        assert_eq!(c.output_h(), 56);
        assert_eq!(c.output_w(), 56);
    }

    #[test]
    fn kernel_larger_than_input_is_empty() {
        let c = ConvLayer::new("bad", 2, 2, 1, 1, 5, 5, 1, 0).unwrap();
        assert_eq!(c.to_gemm(), Err(WorkloadError::EmptyOutput));
    }

    #[test]
    fn zero_stride_rejected() {
        assert!(matches!(
            ConvLayer::new("bad", 8, 8, 1, 1, 3, 3, 0, 0),
            Err(WorkloadError::InvalidConv { .. })
        ));
    }

    #[test]
    fn pointwise_conv_gemm() {
        // MobileNet-style 1x1 conv.
        let c = ConvLayer::new("pw", 14, 14, 256, 512, 1, 1, 1, 0).unwrap();
        let g = c.to_gemm().unwrap();
        assert_eq!(g.as_tuple(), (196, 512, 256));
    }
}
