//! Workload samplers reproducing the paper's GEMM dimension distribution.
//!
//! Paper Fig. 7a plots the distribution of operand matrix dimensions for the
//! GEMM operations of popular neural networks; the dataset-generation step
//! samples `M`, `N`, `K` from that distribution. We provide two samplers:
//!
//! * [`CnnWorkloadSampler`] — the faithful reproduction: an empirical sampler
//!   seeded by the bundled CNN layer tables ([`crate::models`]), with
//!   multiplicative log-space jitter so that 10^4..10^6 distinct workloads can
//!   be drawn from a few hundred base layers,
//! * [`LogUniformSampler`] — a simple log-uniform fallback used in tests and
//!   in ablation benches.

use rand::{Rng, RngExt};

use crate::{models, GemmWorkload};

/// Samples each GEMM dimension log-uniformly from `[min, max]`.
///
/// # Example
///
/// ```
/// use airchitect_workload::distribution::LogUniformSampler;
/// use rand::SeedableRng;
///
/// let sampler = LogUniformSampler::new(1, 4096);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let wl = sampler.sample(&mut rng);
/// assert!(wl.m() >= 1 && wl.m() <= 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogUniformSampler {
    min: u64,
    max: u64,
}

impl LogUniformSampler {
    /// Creates a sampler over `[min, max]`, clamping `min` to at least 1.
    ///
    /// # Panics
    ///
    /// Panics if `max < min`.
    pub fn new(min: u64, max: u64) -> Self {
        let min = min.max(1);
        assert!(max >= min, "max ({max}) must be >= min ({min})");
        Self { min, max }
    }

    /// Draws one dimension.
    pub fn sample_dim<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lo = (self.min as f64).ln();
        let hi = (self.max as f64).ln();
        let v = (lo + (hi - lo) * rng.random::<f64>()).exp();
        (v.round() as u64).clamp(self.min, self.max)
    }

    /// Draws a full GEMM workload with independent dimensions.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GemmWorkload {
        GemmWorkload::new(
            self.sample_dim(rng),
            self.sample_dim(rng),
            self.sample_dim(rng),
        )
        .expect("dims are >= 1 by construction")
    }
}

/// Empirical sampler over the GEMM dimensions of the bundled CNNs.
///
/// Sampling picks a random base layer *per dimension* and applies
/// multiplicative jitter `2^u` with `u ~ U(-jitter, +jitter)` in log2 space,
/// then clamps to `[1, max_dim]`. Picking dimensions independently matches
/// the paper's description of sampling `M`, `N`, `K` "from the distribution
/// depicted in Fig. 7(a)" (a per-dimension histogram, not a joint one).
#[derive(Debug, Clone)]
pub struct CnnWorkloadSampler {
    ms: Vec<u64>,
    ns: Vec<u64>,
    ks: Vec<u64>,
    jitter: f64,
    max_dim: u64,
}

impl CnnWorkloadSampler {
    /// Default multiplicative jitter, in log2 units (one octave).
    pub const DEFAULT_JITTER: f64 = 1.0;
    /// Default dimension cap (matches the paper's bound "determined from
    /// layers of popular conv-nets").
    pub const DEFAULT_MAX_DIM: u64 = 1 << 14;

    /// Builds the sampler from all bundled networks with default jitter.
    pub fn new() -> Self {
        Self::with_jitter(Self::DEFAULT_JITTER, Self::DEFAULT_MAX_DIM)
    }

    /// Builds the sampler with explicit jitter (log2 units) and dim cap.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or `max_dim` is zero.
    pub fn with_jitter(jitter: f64, max_dim: u64) -> Self {
        assert!(jitter >= 0.0, "jitter must be non-negative");
        assert!(max_dim >= 1, "max_dim must be >= 1");
        let gemms = models::all_gemms();
        Self {
            ms: gemms.iter().map(|(_, g)| g.m()).collect(),
            ns: gemms.iter().map(|(_, g)| g.n()).collect(),
            ks: gemms.iter().map(|(_, g)| g.k()).collect(),
            jitter,
            max_dim,
        }
    }

    fn jittered<R: Rng + ?Sized>(&self, base: u64, rng: &mut R) -> u64 {
        let u = (rng.random::<f64>() * 2.0 - 1.0) * self.jitter;
        let v = (base as f64) * u.exp2();
        (v.round() as u64).clamp(1, self.max_dim)
    }

    /// Draws one GEMM workload.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GemmWorkload {
        let m = self.jittered(self.ms[rng.random_range(0..self.ms.len())], rng);
        let n = self.jittered(self.ns[rng.random_range(0..self.ns.len())], rng);
        let k = self.jittered(self.ks[rng.random_range(0..self.ks.len())], rng);
        GemmWorkload::new(m, n, k).expect("dims clamped to >= 1")
    }

    /// Draws `count` workloads.
    pub fn sample_many<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<GemmWorkload> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

impl Default for CnnWorkloadSampler {
    fn default() -> Self {
        Self::new()
    }
}

/// Histogram of `log2(dim)` rounded to the nearest integer bin, as plotted in
/// paper Fig. 7a. Returns `(bin, count)` pairs sorted by bin.
pub fn log2_histogram<I: IntoIterator<Item = u64>>(dims: I) -> Vec<(u32, usize)> {
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<u32, usize> = BTreeMap::new();
    for d in dims {
        let bin = (d.max(1) as f64).log2().round() as u32;
        *bins.entry(bin).or_insert(0) += 1;
    }
    bins.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn log_uniform_respects_bounds() {
        let s = LogUniformSampler::new(4, 512);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let wl = s.sample(&mut rng);
            for d in [wl.m(), wl.n(), wl.k()] {
                assert!((4..=512).contains(&d));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must be >=")]
    fn log_uniform_rejects_inverted_bounds() {
        let _ = LogUniformSampler::new(10, 5);
    }

    #[test]
    fn cnn_sampler_is_deterministic_per_seed() {
        let s = CnnWorkloadSampler::new();
        let a = s.sample_many(50, &mut StdRng::seed_from_u64(42));
        let b = s.sample_many(50, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn cnn_sampler_respects_cap() {
        let s = CnnWorkloadSampler::with_jitter(2.0, 1 << 10);
        let mut rng = StdRng::seed_from_u64(3);
        for wl in s.sample_many(500, &mut rng) {
            assert!(wl.m() <= 1 << 10);
            assert!(wl.n() <= 1 << 10);
            assert!(wl.k() <= 1 << 10);
        }
    }

    #[test]
    fn cnn_sampler_produces_diverse_workloads() {
        let s = CnnWorkloadSampler::new();
        let mut rng = StdRng::seed_from_u64(9);
        let wls = s.sample_many(200, &mut rng);
        let mut uniq = wls.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 150, "sampler should rarely repeat workloads");
    }

    #[test]
    fn zero_jitter_reproduces_base_layers() {
        let s = CnnWorkloadSampler::with_jitter(0.0, u64::MAX >> 1);
        let mut rng = StdRng::seed_from_u64(5);
        let base_ms = &s.ms;
        for _ in 0..100 {
            let wl = s.sample(&mut rng);
            assert!(base_ms.contains(&wl.m()));
        }
    }

    #[test]
    fn histogram_bins_log2() {
        let h = log2_histogram([1, 2, 2, 4, 1000]);
        assert_eq!(h, vec![(0, 1), (1, 2), (2, 1), (10, 1)]);
    }
}
