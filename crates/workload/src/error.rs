use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// A GEMM dimension was zero.
    ZeroDimension {
        /// Which of `M`, `N`, `K` was zero.
        which: &'static str,
    },
    /// A convolution parameter was invalid (zero size or stride).
    InvalidConv {
        /// Human readable description of the offending parameter.
        what: &'static str,
    },
    /// The convolution output would be empty for the given input size.
    EmptyOutput,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ZeroDimension { which } => {
                write!(f, "gemm dimension `{which}` must be non-zero")
            }
            WorkloadError::InvalidConv { what } => {
                write!(f, "invalid convolution parameter: {what}")
            }
            WorkloadError::EmptyOutput => {
                write!(f, "convolution produces an empty output feature map")
            }
        }
    }
}

impl Error for WorkloadError {}
