//! Phase-level execution traces.
//!
//! SCALE-Sim's second output (besides cycle counts) is per-cycle SRAM
//! read/write traces. This module produces their phase-level equivalent: for
//! every fold, the fill / stream / drain phases with their cycle spans and
//! the operand bytes each phase moves across the array edge. Totals are tied
//! to the analytical model by construction and by test:
//!
//! * summed phase cycles == [`crate::compute::runtime_cycles`],
//! * summed phase bytes  == [`crate::compute::array_io_elems`].
//!
//! The trace drives bandwidth-demand plots (sawtooth per-fold curves) and
//! the `simulate --trace`-style tooling a SCALE-Sim user expects.

use airchitect_workload::GemmWorkload;
use serde::{Deserialize, Serialize};

use crate::compute::{self, Tiling};
use crate::{ArrayConfig, Dataflow};

/// What a phase does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Loading the stationary tile (WS/IS).
    Fill,
    /// Pipelined streaming of the moving operands (all dataflows).
    Stream,
    /// Draining output-stationary accumulators (OS).
    Drain,
}

impl std::fmt::Display for PhaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PhaseKind::Fill => "fill",
            PhaseKind::Stream => "stream",
            PhaseKind::Drain => "drain",
        };
        f.write_str(s)
    }
}

/// One phase of one fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Fold index (row-major over the fold grid).
    pub fold: u64,
    /// Phase kind.
    pub kind: PhaseKind,
    /// Cycle count of the phase.
    pub cycles: u64,
    /// IFMAP bytes crossing the array edge during the phase.
    pub ifmap_bytes: u64,
    /// Filter bytes crossing the array edge during the phase.
    pub filter_bytes: u64,
    /// OFMAP bytes crossing the array edge during the phase.
    pub ofmap_bytes: u64,
}

impl Phase {
    /// Total bytes moved in the phase.
    pub fn total_bytes(&self) -> u64 {
        self.ifmap_bytes + self.filter_bytes + self.ofmap_bytes
    }

    /// Mean bandwidth demand of the phase in bytes/cycle.
    pub fn mean_bandwidth(&self) -> f64 {
        self.total_bytes() as f64 / self.cycles.max(1) as f64
    }
}

/// A full execution trace: phases in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutionTrace {
    phases: Vec<Phase>,
}

impl ExecutionTrace {
    /// The phases in execution order.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Total cycles (equals the analytical runtime).
    pub fn total_cycles(&self) -> u64 {
        self.phases.iter().map(|p| p.cycles).sum()
    }

    /// Total bytes moved (equals the analytical array I/O volume).
    pub fn total_bytes(&self) -> u64 {
        self.phases.iter().map(Phase::total_bytes).sum()
    }

    /// Peak mean-bandwidth demand across phases, in bytes/cycle — the
    /// interface provisioning point.
    pub fn peak_bandwidth(&self) -> f64 {
        self.phases
            .iter()
            .map(Phase::mean_bandwidth)
            .fold(0.0, f64::max)
    }
}

/// Builds the phase trace of `workload` on `array` under `dataflow`.
pub fn trace(workload: &GemmWorkload, array: ArrayConfig, dataflow: Dataflow) -> ExecutionTrace {
    let t: Tiling = compute::tiling(workload, array, dataflow);
    let (r, c) = (array.rows(), array.cols());
    let eff_r = r.min(t.row_extent);
    let eff_c = c.min(t.col_extent);
    let temporal = t.temporal_extent;
    let mut phases = Vec::with_capacity((t.folds() * 3) as usize);

    for fold in 0..t.folds() {
        match dataflow {
            Dataflow::Os => {
                // Stream: A slab (R x K) west + B slab (K x C) north.
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Stream,
                    cycles: temporal + r + c - 2,
                    ifmap_bytes: eff_r * temporal,
                    filter_bytes: temporal * eff_c,
                    ofmap_bytes: 0,
                });
                // Drain: the R x C accumulator tile exits south.
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Drain,
                    cycles: r,
                    ifmap_bytes: 0,
                    filter_bytes: 0,
                    ofmap_bytes: eff_r * eff_c,
                });
            }
            Dataflow::Ws => {
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Fill,
                    cycles: r,
                    ifmap_bytes: 0,
                    filter_bytes: eff_r * eff_c,
                    ofmap_bytes: 0,
                });
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Stream,
                    cycles: temporal + r + c - 2,
                    ifmap_bytes: temporal * eff_r,
                    filter_bytes: 0,
                    ofmap_bytes: temporal * eff_c,
                });
            }
            Dataflow::Is => {
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Fill,
                    cycles: r,
                    ifmap_bytes: eff_r * eff_c,
                    filter_bytes: 0,
                    ofmap_bytes: 0,
                });
                phases.push(Phase {
                    fold,
                    kind: PhaseKind::Stream,
                    cycles: temporal + r + c - 2,
                    ifmap_bytes: 0,
                    filter_bytes: temporal * eff_r,
                    ofmap_bytes: temporal * eff_c,
                });
            }
        }
    }
    ExecutionTrace { phases }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(m: u64, n: u64, k: u64) -> GemmWorkload {
        GemmWorkload::new(m, n, k).unwrap()
    }

    fn arr(r: u64, c: u64) -> ArrayConfig {
        ArrayConfig::new(r, c).unwrap()
    }

    #[test]
    fn trace_cycles_match_analytical_runtime() {
        for df in Dataflow::ALL {
            for (m, n, k) in [(8, 8, 8), (100, 37, 211), (513, 9, 1024)] {
                let w = wl(m, n, k);
                let a = arr(8, 16);
                assert_eq!(
                    trace(&w, a, df).total_cycles(),
                    compute::runtime_cycles(&w, a, df),
                    "{df} {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn trace_bytes_match_array_io() {
        for df in Dataflow::ALL {
            for (m, n, k) in [(8, 8, 8), (100, 37, 211), (513, 9, 1024)] {
                let w = wl(m, n, k);
                let a = arr(16, 4);
                assert_eq!(
                    trace(&w, a, df).total_bytes(),
                    compute::array_io_elems(&w, a, df),
                    "{df} {m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn os_folds_have_stream_then_drain() {
        let t = trace(&wl(16, 16, 32), arr(8, 8), Dataflow::Os);
        assert_eq!(t.phases().len(), 4 * 2); // 4 folds, 2 phases each
        for pair in t.phases().chunks(2) {
            assert_eq!(pair[0].kind, PhaseKind::Stream);
            assert_eq!(pair[1].kind, PhaseKind::Drain);
            assert_eq!(pair[0].fold, pair[1].fold);
            assert!(pair[1].ofmap_bytes > 0);
        }
    }

    #[test]
    fn ws_fill_moves_only_filter_bytes() {
        let t = trace(&wl(64, 16, 32), arr(8, 8), Dataflow::Ws);
        for p in t.phases().iter().filter(|p| p.kind == PhaseKind::Fill) {
            assert!(p.filter_bytes > 0);
            assert_eq!(p.ifmap_bytes, 0);
            assert_eq!(p.ofmap_bytes, 0);
        }
    }

    #[test]
    fn peak_bandwidth_is_positive_and_bounded() {
        let t = trace(&wl(100, 100, 100), arr(8, 8), Dataflow::Os);
        let peak = t.peak_bandwidth();
        assert!(peak > 0.0);
        // A phase cannot move more than its bytes in one cycle each.
        assert!(peak <= t.total_bytes() as f64);
    }
}
