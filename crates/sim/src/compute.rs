//! Fold-based analytical runtime model (SCALE-Sim style).
//!
//! A GEMM is executed as a sequence of *folds*: the workload is tiled to the
//! array shape along the two spatial dimensions of the chosen dataflow, and
//! each fold pays a pipeline fill/drain skew (`2R + C − 2` cycles) plus one
//! cycle per element streamed through the temporal dimension.
//!
//! | dataflow | spatial dims (rows, cols) | temporal dim | folds |
//! |----------|---------------------------|--------------|-------|
//! | OS       | `M`, `N`                  | `K`          | `⌈M/R⌉·⌈N/C⌉` |
//! | WS       | `K`, `N`                  | `M`          | `⌈K/R⌉·⌈N/C⌉` |
//! | IS       | `K`, `M`                  | `N`          | `⌈K/R⌉·⌈M/C⌉` |
//!
//! The row skew is `2R` rather than `R` because operands enter skewed at the
//! top *and* results drain skewed at the bottom of each column; this mild
//! rows-vs-cols asymmetry is what makes wide (cols ≈ 2×rows) shapes optimal
//! for many workloads, reproducing the paper's Fig. 5 observation.

use airchitect_workload::GemmWorkload;

use crate::{ArrayConfig, Dataflow};

/// Ceiling division of two positive integers.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// The per-dataflow tiling: spatial extents, temporal extent, and fold count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Workload extent mapped onto array rows.
    pub row_extent: u64,
    /// Workload extent mapped onto array columns.
    pub col_extent: u64,
    /// Workload extent streamed through the array per fold.
    pub temporal_extent: u64,
    /// Folds along the row dimension: `⌈row_extent / R⌉`.
    pub row_folds: u64,
    /// Folds along the column dimension: `⌈col_extent / C⌉`.
    pub col_folds: u64,
}

impl Tiling {
    /// Total number of folds.
    pub fn folds(&self) -> u64 {
        self.row_folds * self.col_folds
    }
}

/// Computes the tiling of `workload` on `array` under `dataflow`.
pub fn tiling(workload: &GemmWorkload, array: ArrayConfig, dataflow: Dataflow) -> Tiling {
    let (row_extent, col_extent, temporal_extent) = match dataflow {
        Dataflow::Os => (workload.m(), workload.n(), workload.k()),
        Dataflow::Ws => (workload.k(), workload.n(), workload.m()),
        Dataflow::Is => (workload.k(), workload.m(), workload.n()),
    };
    Tiling {
        row_extent,
        col_extent,
        temporal_extent,
        row_folds: div_ceil(row_extent, array.rows()),
        col_folds: div_ceil(col_extent, array.cols()),
    }
}

/// Stall-free runtime in cycles:
/// `folds · (2R + C + temporal − 2)`.
///
/// # Example
///
/// ```
/// use airchitect_sim::{compute, ArrayConfig, Dataflow};
/// use airchitect_workload::GemmWorkload;
///
/// let wl = GemmWorkload::new(16, 16, 100)?;
/// let a = ArrayConfig::new(16, 16)?;
/// // Single fold: 2*16 + 16 + 100 - 2 = 146 cycles.
/// assert_eq!(compute::runtime_cycles(&wl, a, Dataflow::Os), 146);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn runtime_cycles(workload: &GemmWorkload, array: ArrayConfig, dataflow: Dataflow) -> u64 {
    airchitect_telemetry::metrics::SIM_EVALS.inc();
    let t = tiling(workload, array, dataflow);
    t.folds() * (2 * array.rows() + array.cols() + t.temporal_extent - 2)
}

/// The best (minimum) runtime across all three dataflows, with the winner.
pub fn best_dataflow(workload: &GemmWorkload, array: ArrayConfig) -> (Dataflow, u64) {
    Dataflow::ALL
        .iter()
        .map(|&df| (df, runtime_cycles(workload, array, df)))
        .min_by_key(|&(_, c)| c)
        .expect("Dataflow::ALL is non-empty")
}

/// Ideal cycles if every MAC unit were busy every cycle: `⌈MACs / (R·C)⌉`.
pub fn compute_lower_bound(workload: &GemmWorkload, array: ArrayConfig) -> u64 {
    div_ceil(workload.macs(), array.macs())
}

/// Fraction of MAC-cycles doing useful work: `MACs / (R·C·T)`, in `(0, 1]`.
pub fn utilization(workload: &GemmWorkload, array: ArrayConfig, dataflow: Dataflow) -> f64 {
    let t = runtime_cycles(workload, array, dataflow);
    workload.macs() as f64 / (array.macs() as f64 * t as f64)
}

/// Volume of operand elements injected into the array edges, per dataflow.
///
/// This is the SRAM→array traffic used by the energy model: each fold streams
/// its two moving operands along the array edges and drains one result tile.
pub fn array_io_elems(workload: &GemmWorkload, array: ArrayConfig, dataflow: Dataflow) -> u64 {
    let t = tiling(workload, array, dataflow);
    let r = array.rows().min(t.row_extent);
    let c = array.cols().min(t.col_extent);
    match dataflow {
        // OS: per fold, stream an R x K slab of A and a K x C slab of B,
        // drain an R x C tile of C.
        Dataflow::Os => t.folds() * (r * t.temporal_extent + t.temporal_extent * c + r * c),
        // WS/IS: per fold, load the R x C stationary tile, stream a
        // temporal x R moving-operand slab, drain a temporal x C result slab.
        Dataflow::Ws | Dataflow::Is => {
            t.folds() * (r * c + t.temporal_extent * r + t.temporal_extent * c)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(m: u64, n: u64, k: u64) -> GemmWorkload {
        GemmWorkload::new(m, n, k).unwrap()
    }

    fn arr(r: u64, c: u64) -> ArrayConfig {
        ArrayConfig::new(r, c).unwrap()
    }

    #[test]
    fn single_fold_runtime() {
        // Perfectly fitting OS: M=R, N=C.
        assert_eq!(
            runtime_cycles(&wl(8, 8, 32), arr(8, 8), Dataflow::Os),
            2 * 8 + 8 + 32 - 2
        );
    }

    #[test]
    fn folds_multiply_runtime() {
        let base = runtime_cycles(&wl(8, 8, 32), arr(8, 8), Dataflow::Os);
        // Doubling M doubles the row folds.
        assert_eq!(
            runtime_cycles(&wl(16, 8, 32), arr(8, 8), Dataflow::Os),
            2 * base
        );
        // Doubling both spatial dims quadruples folds.
        assert_eq!(
            runtime_cycles(&wl(16, 16, 32), arr(8, 8), Dataflow::Os),
            4 * base
        );
    }

    #[test]
    fn ceil_quantization_penalty() {
        // M = R + 1 forces two row folds: runtime jumps discontinuously.
        let fit = runtime_cycles(&wl(8, 8, 32), arr(8, 8), Dataflow::Os);
        let spill = runtime_cycles(&wl(9, 8, 32), arr(8, 8), Dataflow::Os);
        assert_eq!(spill, 2 * fit);
    }

    #[test]
    fn dataflow_temporal_dims_differ() {
        // Long-K workload: OS streams K once; WS folds over K.
        let w = wl(8, 8, 4096);
        let a = arr(8, 8);
        assert!(runtime_cycles(&w, a, Dataflow::Os) < runtime_cycles(&w, a, Dataflow::Ws));
        // Long-M workload: WS streams M; OS folds over M.
        let w = wl(4096, 8, 8);
        assert!(runtime_cycles(&w, a, Dataflow::Ws) < runtime_cycles(&w, a, Dataflow::Os));
        // Long-N workload: IS streams N.
        let w = wl(8, 4096, 8);
        assert!(runtime_cycles(&w, a, Dataflow::Is) < runtime_cycles(&w, a, Dataflow::Os));
    }

    #[test]
    fn best_dataflow_picks_minimum() {
        let w = wl(100, 300, 700);
        let a = arr(16, 32);
        let (df, c) = best_dataflow(&w, a);
        for other in Dataflow::ALL {
            assert!(c <= runtime_cycles(&w, a, other), "{df} not optimal");
        }
    }

    #[test]
    fn runtime_respects_lower_bound() {
        let w = wl(123, 456, 789);
        for a in [arr(4, 4), arr(8, 32), arr(64, 2)] {
            for df in Dataflow::ALL {
                assert!(runtime_cycles(&w, a, df) >= compute_lower_bound(&w, a));
            }
        }
    }

    #[test]
    fn utilization_bounded() {
        let w = wl(31, 77, 201);
        for a in [arr(4, 16), arr(32, 8)] {
            for df in Dataflow::ALL {
                let u = utilization(&w, a, df);
                assert!(u > 0.0 && u <= 1.0, "utilization {u} out of range");
            }
        }
    }

    #[test]
    fn array_io_at_least_operand_volume_once() {
        // Everything must enter the array at least once per fold touching it.
        let w = wl(64, 64, 64);
        let a = arr(8, 8);
        for df in Dataflow::ALL {
            assert!(array_io_elems(&w, a, df) >= w.ofmap_elems());
        }
    }
}
