//! Analytical systolic-array simulator for the AIrchitect reproduction.
//!
//! The paper generates its ground-truth optimization data with SCALE-Sim
//! (Samajdar et al.), an analytical model of a monolithic systolic array, and
//! an in-house multi-array simulator for the scheduling case study. This crate
//! re-implements both from scratch:
//!
//! * [`compute`] — fold-based runtime model for the three true systolic
//!   dataflows (Output/Weight/Input Stationary),
//! * [`memory`] — SRAM buffer sizing: DRAM traffic as a function of buffer
//!   capacity (tiling reuse) plus a double-buffering stall model,
//! * [`energy`] — Eyeriss-style per-access energy accounting,
//! * [`multi`] — concurrent execution of independent workloads on a set of
//!   heterogeneous arrays (case study 3),
//! * [`report`] — one-stop [`report::SimReport`] aggregating all of the above.
//!
//! # Model summary (see DESIGN.md §3 for the substitution rationale)
//!
//! Runtime per dataflow, for `C[M x N] = A[M x K] · B[K x N]` on an `R x C`
//! array (`⌈·⌉` is ceiling division):
//!
//! ```text
//! T_OS = ⌈M/R⌉·⌈N/C⌉·(2R + C + K − 2)
//! T_WS = ⌈K/R⌉·⌈N/C⌉·(2R + C + M − 2)
//! T_IS = ⌈K/R⌉·⌈M/C⌉·(2R + C + N − 2)
//! ```
//!
//! # Example
//!
//! ```
//! use airchitect_sim::{ArrayConfig, Dataflow};
//! use airchitect_workload::GemmWorkload;
//!
//! let wl = GemmWorkload::new(64, 64, 256)?;
//! let array = ArrayConfig::new(16, 32)?;
//! let cycles = airchitect_sim::compute::runtime_cycles(&wl, array, Dataflow::Os);
//! assert!(cycles >= wl.macs() / array.macs()); // compute lower bound
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

mod array;
mod dataflow;
mod error;
pub mod functional;

pub mod compute;
pub mod energy;
pub mod memory;
pub mod multi;
pub mod report;
pub mod trace;

pub use array::ArrayConfig;
pub use dataflow::Dataflow;
pub use error::SimError;
