//! One-stop simulation report combining runtime, stalls, traffic, and energy.

use airchitect_workload::GemmWorkload;
use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;
use crate::memory::{self, BufferConfig, TrafficReport};
use crate::{compute, ArrayConfig, Dataflow, SimError};

/// Full simulation result for one workload on one array configuration.
///
/// # Example
///
/// ```
/// use airchitect_sim::report::simulate;
/// use airchitect_sim::memory::BufferConfig;
/// use airchitect_sim::{ArrayConfig, Dataflow};
/// use airchitect_workload::GemmWorkload;
///
/// let report = simulate(
///     &GemmWorkload::new(256, 256, 256)?,
///     ArrayConfig::new(16, 16)?,
///     Dataflow::Os,
///     BufferConfig::from_kb(200, 200, 100)?,
///     16,
/// )?;
/// assert_eq!(report.total_cycles, report.compute_cycles + report.stall_cycles);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Stall-free compute cycles.
    pub compute_cycles: u64,
    /// Memory stall cycles.
    pub stall_cycles: u64,
    /// `compute_cycles + stall_cycles`.
    pub total_cycles: u64,
    /// MAC utilization over the compute phase, in `(0, 1]`.
    pub utilization: f64,
    /// Per-operand DRAM traffic.
    pub traffic: TrafficReport,
    /// Total energy under the default [`EnergyModel`].
    pub energy: f64,
}

/// Runs the full analytical model for one configuration.
///
/// # Errors
///
/// Returns [`SimError::ZeroBandwidth`] if `bandwidth` is zero.
pub fn simulate(
    workload: &GemmWorkload,
    array: ArrayConfig,
    dataflow: Dataflow,
    buffers: BufferConfig,
    bandwidth: u64,
) -> Result<SimReport, SimError> {
    let compute_cycles = compute::runtime_cycles(workload, array, dataflow);
    let stall_cycles = memory::stall_cycles(workload, array, dataflow, buffers, bandwidth)?;
    let traffic = memory::dram_traffic(workload, array, dataflow, buffers);
    let energy = EnergyModel::default().energy(workload, array, dataflow, buffers);
    Ok(SimReport {
        compute_cycles,
        stall_cycles,
        total_cycles: compute_cycles + stall_cycles,
        utilization: compute::utilization(workload, array, dataflow),
        traffic,
        energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_fields_are_consistent() {
        let wl = GemmWorkload::new(100, 200, 300).unwrap();
        let r = simulate(
            &wl,
            ArrayConfig::new(8, 16).unwrap(),
            Dataflow::Ws,
            BufferConfig::from_kb(300, 100, 200).unwrap(),
            8,
        )
        .unwrap();
        assert_eq!(r.total_cycles, r.compute_cycles + r.stall_cycles);
        assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        assert!(r.energy > 0.0);
        assert_eq!(
            r.traffic.total(),
            r.traffic.ifmap + r.traffic.filter + r.traffic.ofmap
        );
    }
}
