use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::SimError;

/// A true systolic dataflow: which operand stays pinned in the PEs.
///
/// Following the paper (and Eyeriss/SCALE-Sim terminology) only the three
/// dataflows that use exclusively neighbor-to-neighbor communication are
/// modeled:
///
/// * [`Dataflow::Os`] — **Output Stationary**: each PE accumulates one output
///   element; `A` and `B` stream through the array.
/// * [`Dataflow::Ws`] — **Weight Stationary**: a `K x N` tile of the filter is
///   pinned; IFMAP rows stream through and partial sums exit the columns.
/// * [`Dataflow::Is`] — **Input Stationary**: a `K x M` tile of the IFMAP is
///   pinned; filter columns stream through.
///
/// # Example
///
/// ```
/// use airchitect_sim::Dataflow;
///
/// let df: Dataflow = "WS".parse()?;
/// assert_eq!(df, Dataflow::Ws);
/// assert_eq!(df.to_string(), "WS");
/// # Ok::<(), airchitect_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dataflow {
    /// Output stationary.
    Os,
    /// Weight stationary.
    Ws,
    /// Input stationary.
    Is,
}

impl Dataflow {
    /// All dataflows in the paper's canonical order (OS, WS, IS).
    pub const ALL: [Dataflow; 3] = [Dataflow::Os, Dataflow::Ws, Dataflow::Is];

    /// Stable index of the dataflow in [`Dataflow::ALL`] (used by the label
    /// codecs in `airchitect-dse`).
    pub fn index(&self) -> usize {
        match self {
            Dataflow::Os => 0,
            Dataflow::Ws => 1,
            Dataflow::Is => 2,
        }
    }

    /// Inverse of [`Dataflow::index`]; returns `None` for indices >= 3.
    pub fn from_index(idx: usize) -> Option<Dataflow> {
        Dataflow::ALL.get(idx).copied()
    }
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dataflow::Os => "OS",
            Dataflow::Ws => "WS",
            Dataflow::Is => "IS",
        };
        f.write_str(s)
    }
}

impl FromStr for Dataflow {
    type Err = SimError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "OS" => Ok(Dataflow::Os),
            "WS" => Ok(Dataflow::Ws),
            "IS" => Ok(Dataflow::Is),
            _ => Err(SimError::ParseDataflow { input: s.into() }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for (i, df) in Dataflow::ALL.iter().enumerate() {
            assert_eq!(df.index(), i);
            assert_eq!(Dataflow::from_index(i), Some(*df));
        }
        assert_eq!(Dataflow::from_index(3), None);
    }

    #[test]
    fn parse_roundtrip_and_case_insensitivity() {
        for df in Dataflow::ALL {
            assert_eq!(df.to_string().parse::<Dataflow>().unwrap(), df);
            assert_eq!(
                df.to_string().to_lowercase().parse::<Dataflow>().unwrap(),
                df
            );
        }
        assert!(matches!(
            "XX".parse::<Dataflow>(),
            Err(SimError::ParseDataflow { .. })
        ));
    }
}
