//! Eyeriss-style per-access energy accounting.
//!
//! Energy is modeled as a weighted sum of three access classes with the
//! classic relative costs (MAC : SRAM : DRAM ≈ 1 : 2 : 100 per element):
//!
//! ```text
//! E = macs·e_mac + sram_accesses·e_sram + dram_bytes·e_dram
//! ```
//!
//! where `sram_accesses` is the operand volume streamed across the array
//! edges ([`crate::compute::array_io_elems`]) and `dram_bytes` comes from the
//! tiling-reuse traffic model ([`crate::memory::dram_traffic`]).

use airchitect_workload::GemmWorkload;
use serde::{Deserialize, Serialize};

use crate::memory::{self, BufferConfig};
use crate::{compute, ArrayConfig, Dataflow};

/// Relative energy costs per access class.
///
/// The absolute unit is arbitrary (think pJ); only ratios matter for the
/// optimizer, which compares configurations.
///
/// # Example
///
/// ```
/// use airchitect_sim::energy::EnergyModel;
///
/// let model = EnergyModel::default();
/// assert!(model.dram > model.sram && model.sram > model.mac);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per MAC operation.
    pub mac: f64,
    /// Energy per SRAM (array edge) element access.
    pub sram: f64,
    /// Energy per DRAM byte moved.
    pub dram: f64,
}

impl EnergyModel {
    /// The default Eyeriss-style relative costs (1 : 2 : 100).
    pub fn new() -> Self {
        Self {
            mac: 1.0,
            sram: 2.0,
            dram: 100.0,
        }
    }

    /// Total energy for one workload execution.
    pub fn energy(
        &self,
        workload: &GemmWorkload,
        array: ArrayConfig,
        dataflow: Dataflow,
        buffers: BufferConfig,
    ) -> f64 {
        let macs = workload.macs() as f64;
        let sram = compute::array_io_elems(workload, array, dataflow) as f64;
        let dram = memory::dram_traffic(workload, array, dataflow, buffers).total() as f64;
        macs * self.mac + sram * self.sram + dram * self.dram
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(m: u64, n: u64, k: u64) -> GemmWorkload {
        GemmWorkload::new(m, n, k).unwrap()
    }

    #[test]
    fn energy_is_positive_and_exceeds_mac_floor() {
        let model = EnergyModel::default();
        let w = wl(64, 64, 64);
        let a = ArrayConfig::new(8, 8).unwrap();
        let b = BufferConfig::from_kb(100, 100, 100).unwrap();
        for df in Dataflow::ALL {
            let e = model.energy(&w, a, df, b);
            assert!(e >= w.macs() as f64 * model.mac);
        }
    }

    #[test]
    fn bigger_buffers_do_not_increase_energy() {
        let model = EnergyModel::default();
        let w = wl(512, 256, 512);
        let a = ArrayConfig::new(16, 16).unwrap();
        let small = model.energy(
            &w,
            a,
            Dataflow::Os,
            BufferConfig::from_kb(100, 100, 100).unwrap(),
        );
        let big = model.energy(
            &w,
            a,
            Dataflow::Os,
            BufferConfig::from_kb(1000, 1000, 1000).unwrap(),
        );
        assert!(big <= small);
    }

    #[test]
    fn dram_dominates_for_thrashing_configs() {
        // With a tiny buffer and big reuse, DRAM traffic should dominate the
        // energy budget, as in every accelerator energy breakdown.
        let model = EnergyModel::default();
        let w = wl(2048, 2048, 2048);
        let a = ArrayConfig::new(8, 8).unwrap();
        let b = BufferConfig::from_kb(1, 1, 1).unwrap();
        let e = model.energy(&w, a, Dataflow::Os, b);
        let dram = memory::dram_traffic(&w, a, Dataflow::Os, b).total() as f64 * model.dram;
        assert!(dram / e > 0.5);
    }
}
