use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid simulator configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An array dimension was zero.
    ZeroArrayDim {
        /// Which dimension (`"rows"` or `"cols"`) was zero.
        which: &'static str,
    },
    /// A buffer capacity was zero.
    ZeroBuffer {
        /// Which buffer (`"ifmap"`, `"filter"`, `"ofmap"`) was zero.
        which: &'static str,
    },
    /// Interface bandwidth was zero.
    ZeroBandwidth,
    /// A multi-array system was configured with no arrays.
    EmptySystem,
    /// A schedule referenced more workloads than the system has arrays.
    ScheduleMismatch {
        /// Number of arrays in the system.
        arrays: usize,
        /// Number of workloads in the schedule.
        workloads: usize,
    },
    /// An unknown dataflow mnemonic was parsed.
    ParseDataflow {
        /// The rejected input string.
        input: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ZeroArrayDim { which } => {
                write!(f, "systolic array `{which}` must be non-zero")
            }
            SimError::ZeroBuffer { which } => {
                write!(f, "`{which}` buffer capacity must be non-zero")
            }
            SimError::ZeroBandwidth => write!(f, "interface bandwidth must be non-zero"),
            SimError::EmptySystem => write!(f, "multi-array system has no arrays"),
            SimError::ScheduleMismatch { arrays, workloads } => write!(
                f,
                "schedule maps {workloads} workloads onto {arrays} arrays"
            ),
            SimError::ParseDataflow { input } => {
                write!(f, "unknown dataflow `{input}` (expected OS, WS, or IS)")
            }
        }
    }
}

impl Error for SimError {}
