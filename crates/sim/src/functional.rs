//! Register-level functional simulation of the systolic array.
//!
//! The analytical model ([`crate::compute`]) is fast enough to label millions
//! of workloads, but its equations are only trustworthy if they describe a
//! machine that actually computes the right answer in that many cycles. This
//! module is that machine: a cycle-stepped PE grid with explicit operand
//! registers, skewed edge injection, and per-dataflow data movement —
//! the same dual analytical/simulated structure SCALE-Sim uses.
//!
//! For every dataflow, a fold executes in the phases the analytical model
//! charges for:
//!
//! | dataflow | fill | stream (pipelined) | drain | total per fold |
//! |----------|------|--------------------|-------|----------------|
//! | OS       | —    | `K + R + C − 2`    | `R`   | `2R + C + K − 2` |
//! | WS       | `R`  | `M + R + C − 2`    | —     | `2R + C + M − 2` |
//! | IS       | `R`  | `N + R + C − 2`    | —     | `2R + C + N − 2` |
//!
//! [`FunctionalArray::execute`] runs a full tiled GEMM: it slices the
//! operands into folds exactly as [`crate::compute::tiling`] prescribes,
//! steps every fold through the PE grid cycle by cycle, accumulates partial
//! results, and returns both the numerical output and the cycle count. Tests
//! assert the output equals the reference matrix product *and* the cycle
//! count equals [`crate::compute::runtime_cycles`] — tying the analytical
//! equations to executable hardware behaviour.

use airchitect_workload::GemmWorkload;

use crate::{ArrayConfig, Dataflow, SimError};

/// A dense row-major matrix of `f32` used by the functional simulator.
///
/// (Deliberately minimal and local: the ML stack's matrix lives in
/// `airchitect-tensor`; the simulator must not depend on the learning plane.)
#[derive(Debug, Clone, PartialEq)]
pub struct SimMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl SimMatrix {
    /// Creates a zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reference matrix product (golden model for the tests).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matmul_reference(&self, other: &SimMatrix) -> SimMatrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = SimMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in self.row(i).iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(k)) {
                    *o += a * b;
                }
            }
        }
        out
    }
}

/// Outcome of a functional execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionResult {
    /// The computed output matrix `C[M x N]`.
    pub output: SimMatrix,
    /// Total cycles across all folds (fill + stream + drain per fold).
    pub cycles: u64,
    /// Number of folds executed.
    pub folds: u64,
    /// MAC operations actually issued by PEs (equals `M·N·K`).
    pub macs_issued: u64,
}

/// One processing element of the grid.
#[derive(Debug, Clone, Copy, Default)]
struct Pe {
    /// Horizontally-moving operand register (valid flag + value).
    a: Option<f32>,
    /// Vertically-moving operand register.
    b: Option<f32>,
    /// Stationary operand (WS/IS) — `None` while unloaded.
    stationary: Option<f32>,
    /// Output-stationary accumulator (OS).
    acc: f32,
}

/// A register-level systolic array executing GEMMs fold by fold.
#[derive(Debug, Clone)]
pub struct FunctionalArray {
    config: ArrayConfig,
}

impl FunctionalArray {
    /// Creates a functional array of the given shape.
    ///
    /// The grid is materialized per fold, so arbitrarily large configured
    /// shapes are fine as long as individual folds fit in memory.
    pub fn new(config: ArrayConfig) -> Self {
        Self { config }
    }

    /// The array's shape.
    pub fn config(&self) -> ArrayConfig {
        self.config
    }

    /// Executes `C = A · B` under `dataflow`, tiling to the array shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleMismatch`] when the operand matrices'
    /// shapes disagree with `workload`.
    ///
    /// # Panics
    ///
    /// Panics if a fold's grid would not fit in memory (`rows·cols` over
    /// ~10^8 PEs).
    pub fn execute(
        &self,
        workload: &GemmWorkload,
        a: &SimMatrix,
        b: &SimMatrix,
        dataflow: Dataflow,
    ) -> Result<ExecutionResult, SimError> {
        let (m, n, k) = (
            workload.m() as usize,
            workload.n() as usize,
            workload.k() as usize,
        );
        if a.rows() != m || a.cols() != k || b.rows() != k || b.cols() != n {
            return Err(SimError::ScheduleMismatch {
                arrays: a.rows() * a.cols(),
                workloads: m * k,
            });
        }
        let r = self.config.rows() as usize;
        let c = self.config.cols() as usize;
        assert!(
            r.saturating_mul(c) <= 100_000_000,
            "fold grid too large to materialize"
        );

        let mut output = SimMatrix::zeros(m, n);
        let mut cycles = 0u64;
        let mut folds = 0u64;
        let mut macs = 0u64;

        match dataflow {
            Dataflow::Os => {
                // Spatial: M on rows, N on cols; temporal: K.
                for m0 in (0..m).step_by(r) {
                    let mh = (m - m0).min(r);
                    for n0 in (0..n).step_by(c) {
                        let nw = (n - n0).min(c);
                        let fold = self.run_os_fold(a, b, m0, mh, n0, nw, k, &mut output);
                        macs += fold;
                        // Stream K with skew, then drain the R-deep column.
                        cycles += (k + r + c - 2 + r) as u64;
                        folds += 1;
                    }
                }
            }
            Dataflow::Ws => {
                // Spatial: K on rows, N on cols; temporal: M. Partial sums
                // accumulate into `output` across the K folds.
                for k0 in (0..k).step_by(r) {
                    let kh = (k - k0).min(r);
                    for n0 in (0..n).step_by(c) {
                        let nw = (n - n0).min(c);
                        let fold = self.run_ws_fold(a, b, k0, kh, n0, nw, m, &mut output);
                        macs += fold;
                        // Fill R rows of weights, then stream M with skew.
                        cycles += (r + m + r + c - 2) as u64;
                        folds += 1;
                    }
                }
            }
            Dataflow::Is => {
                // Spatial: K on rows, M on cols; temporal: N.
                for k0 in (0..k).step_by(r) {
                    let kh = (k - k0).min(r);
                    for m0 in (0..m).step_by(c) {
                        let mw = (m - m0).min(c);
                        let fold = self.run_is_fold(a, b, k0, kh, m0, mw, n, &mut output);
                        macs += fold;
                        cycles += (r + n + r + c - 2) as u64;
                        folds += 1;
                    }
                }
            }
        }

        Ok(ExecutionResult {
            output,
            cycles,
            folds,
            macs_issued: macs,
        })
    }

    /// One OS fold: PEs accumulate `C[m0..m0+mh, n0..n0+nw]`; `A` slabs enter
    /// west skewed by row, `B` slabs enter north skewed by column.
    #[allow(clippy::too_many_arguments)]
    fn run_os_fold(
        &self,
        a: &SimMatrix,
        b: &SimMatrix,
        m0: usize,
        mh: usize,
        n0: usize,
        nw: usize,
        k: usize,
        output: &mut SimMatrix,
    ) -> u64 {
        let mut grid = vec![Pe::default(); mh * nw];
        let mut macs = 0u64;
        // The last operand enters the far corner at cycle (mh-1)+(nw-1)+k-1.
        let horizon = k + mh + nw - 2;
        for t in 0..horizon {
            // Step back-to-front so reads see the previous cycle's registers.
            for i in (0..mh).rev() {
                let a_row = a.row(m0 + i);
                for j in (0..nw).rev() {
                    let a_in = if j == 0 {
                        // West edge of row i: a[m0+i][t - i], skewed by i.
                        t.checked_sub(i).filter(|&kk| kk < k).map(|kk| a_row[kk])
                    } else {
                        grid[i * nw + (j - 1)].a
                    };
                    let b_in = if i == 0 {
                        // North edge of column j: b[t - j][n0+j], skewed by j.
                        t.checked_sub(j)
                            .filter(|&kk| kk < k)
                            .map(|kk| b.get(kk, n0 + j))
                    } else {
                        grid[(i - 1) * nw + j].b
                    };
                    let pe = &mut grid[i * nw + j];
                    if let (Some(av), Some(bv)) = (a_in, b_in) {
                        pe.acc += av * bv;
                        macs += 1;
                    }
                    pe.a = a_in;
                    pe.b = b_in;
                }
            }
        }
        // Drain: fold the accumulators into the output tile row by row.
        for (i, pe_row) in grid.chunks_exact(nw).enumerate() {
            let out_row = &mut output.row_mut(m0 + i)[n0..n0 + nw];
            for (o, pe) in out_row.iter_mut().zip(pe_row) {
                *o += pe.acc;
            }
        }
        macs
    }

    /// One WS fold: `B[k0..k0+kh, n0..n0+nw]` is pinned; `A` rows stream in
    /// west (skewed by PE row) and partial sums flow south, exiting into
    /// `output[ · , n0..n0+nw]`.
    #[allow(clippy::too_many_arguments)]
    fn run_ws_fold(
        &self,
        a: &SimMatrix,
        b: &SimMatrix,
        k0: usize,
        kh: usize,
        n0: usize,
        nw: usize,
        m: usize,
        output: &mut SimMatrix,
    ) -> u64 {
        let mut grid = vec![Pe::default(); kh * nw];
        // Fill phase: pin the weight tile (modeled as kh loads, charged as R
        // cycles by the caller to match shifting through the full array).
        for (i, pe_row) in grid.chunks_exact_mut(nw).enumerate() {
            let b_row = &b.row(k0 + i)[n0..n0 + nw];
            for (pe, &w) in pe_row.iter_mut().zip(b_row) {
                pe.stationary = Some(w);
            }
        }
        let mut macs = 0u64;
        // Per-column psum pipeline: psum[i][j] holds the value that PE(i,j)
        // will pass south next cycle, tagged with its A-row index.
        let mut psum: Vec<Option<(usize, f32)>> = vec![None; kh * nw];
        let horizon = m + kh + nw - 2;
        for t in 0..horizon {
            for i in (0..kh).rev() {
                for j in (0..nw).rev() {
                    // a values move west->east along PE row i, skewed so that
                    // row `mi` of A enters row i at cycle mi + i.
                    let a_in: Option<(usize, f32)> = if j == 0 {
                        t.checked_sub(i)
                            .filter(|&mi| mi < m)
                            .map(|mi| (mi, a.get(mi, k0 + i)))
                    } else {
                        grid[i * nw + (j - 1)].a.map(|v| {
                            // Recover the row index from the skew: a value at
                            // column j at cycle t belongs to A row t - i - j.
                            (t - i - j, v)
                        })
                    };
                    let psum_in: Option<(usize, f32)> = if i == 0 {
                        a_in.map(|(mi, _)| (mi, 0.0))
                    } else {
                        psum[(i - 1) * nw + j]
                    };
                    let pe_idx = i * nw + j;
                    let w = grid[pe_idx].stationary.unwrap_or(0.0);
                    let next = match (a_in, psum_in) {
                        (Some((mi, av)), Some((pmi, pv))) => {
                            debug_assert_eq!(mi, pmi, "psum and operand must stay in lockstep");
                            macs += 1;
                            Some((mi, pv + av * w))
                        }
                        _ => None,
                    };
                    // Bottom row writes the finished partial sum out.
                    if i == kh - 1 {
                        if let Some((mi, pv)) = next {
                            output.set(mi, n0 + j, output.get(mi, n0 + j) + pv);
                        }
                        psum[pe_idx] = None;
                    } else {
                        psum[pe_idx] = next;
                    }
                    grid[pe_idx].a = a_in.map(|(_, v)| v);
                }
            }
        }
        macs
    }

    /// One IS fold: `A^T[k0..k0+kh, m0..m0+mw]` is pinned (PE(k, m) holds
    /// `A[m][k]`); `B` columns stream in west and psums flow south into
    /// `output[m0..m0+mw, · ]`.
    #[allow(clippy::too_many_arguments)]
    fn run_is_fold(
        &self,
        a: &SimMatrix,
        b: &SimMatrix,
        k0: usize,
        kh: usize,
        m0: usize,
        mw: usize,
        n: usize,
        output: &mut SimMatrix,
    ) -> u64 {
        let mut grid = vec![Pe::default(); kh * mw];
        // Fill phase: PE(i, j) pins A[m0+j][k0+i] — walk A row-wise so each
        // source row is sliced once.
        for j in 0..mw {
            let a_row = a.row(m0 + j);
            for (i, pe_row) in grid.chunks_exact_mut(mw).enumerate() {
                pe_row[j].stationary = Some(a_row[k0 + i]);
            }
        }
        let mut macs = 0u64;
        let mut psum: Vec<Option<(usize, f32)>> = vec![None; kh * mw];
        let horizon = n + kh + mw - 2;
        for t in 0..horizon {
            for i in (0..kh).rev() {
                let b_row = b.row(k0 + i);
                for j in (0..mw).rev() {
                    let b_in: Option<(usize, f32)> = if j == 0 {
                        t.checked_sub(i)
                            .filter(|&ni| ni < n)
                            .map(|ni| (ni, b_row[ni]))
                    } else {
                        grid[i * mw + (j - 1)].b.map(|v| (t - i - j, v))
                    };
                    let psum_in: Option<(usize, f32)> = if i == 0 {
                        b_in.map(|(ni, _)| (ni, 0.0))
                    } else {
                        psum[(i - 1) * mw + j]
                    };
                    let pe_idx = i * mw + j;
                    let s = grid[pe_idx].stationary.unwrap_or(0.0);
                    let next = match (b_in, psum_in) {
                        (Some((ni, bv)), Some((pni, pv))) => {
                            debug_assert_eq!(ni, pni, "psum and operand must stay in lockstep");
                            macs += 1;
                            Some((ni, pv + bv * s))
                        }
                        _ => None,
                    };
                    if i == kh - 1 {
                        if let Some((ni, pv)) = next {
                            output.set(m0 + j, ni, output.get(m0 + j, ni) + pv);
                        }
                        psum[pe_idx] = None;
                    } else {
                        psum[pe_idx] = next;
                    }
                    grid[pe_idx].b = b_in.map(|(_, v)| v);
                }
            }
        }
        macs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute;

    fn matrix(rows: usize, cols: usize, seed: u64) -> SimMatrix {
        // Small integers keep f32 arithmetic exact.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 60) as i64 - 8) as f32
            })
            .collect();
        SimMatrix::from_vec(rows, cols, data)
    }

    fn check(m: u64, n: u64, k: u64, r: u64, c: u64, df: Dataflow) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = matrix(m as usize, k as usize, m * 31 + k);
        let b = matrix(k as usize, n as usize, n * 17 + k);
        let arr = FunctionalArray::new(ArrayConfig::new(r, c).unwrap());
        let result = arr.execute(&wl, &a, &b, df).unwrap();
        // Numerical correctness against the golden model.
        let golden = a.matmul_reference(&b);
        assert_eq!(
            result.output, golden,
            "{df} on {r}x{c}: wrong product for {m}x{n}x{k}"
        );
        // Every MAC was issued exactly once.
        assert_eq!(result.macs_issued, wl.macs(), "{df}: MAC count mismatch");
        // Cycle count matches the analytical model exactly.
        assert_eq!(
            result.cycles,
            compute::runtime_cycles(&wl, arr.config(), df),
            "{df} on {r}x{c}: cycle mismatch for {m}x{n}x{k}"
        );
    }

    #[test]
    fn os_single_fold_exact_fit() {
        check(4, 4, 6, 4, 4, Dataflow::Os);
    }

    #[test]
    fn ws_single_fold_exact_fit() {
        check(6, 4, 4, 4, 4, Dataflow::Ws);
    }

    #[test]
    fn is_single_fold_exact_fit() {
        check(4, 6, 4, 4, 4, Dataflow::Is);
    }

    #[test]
    fn os_multi_fold_with_ragged_edges() {
        check(9, 7, 5, 4, 4, Dataflow::Os);
        check(10, 3, 8, 4, 2, Dataflow::Os);
    }

    #[test]
    fn ws_multi_fold_accumulates_partial_sums() {
        // K > R forces cross-fold accumulation.
        check(5, 6, 11, 4, 4, Dataflow::Ws);
        check(7, 9, 13, 2, 4, Dataflow::Ws);
    }

    #[test]
    fn is_multi_fold_accumulates_partial_sums() {
        check(6, 5, 11, 4, 4, Dataflow::Is);
        check(9, 7, 13, 4, 2, Dataflow::Is);
    }

    #[test]
    fn degenerate_vectors_work() {
        // Matrix-vector and vector-matrix products.
        for df in Dataflow::ALL {
            check(1, 8, 8, 4, 4, df);
            check(8, 1, 8, 4, 4, df);
            check(8, 8, 1, 4, 4, df);
            check(1, 1, 1, 2, 2, df);
        }
    }

    #[test]
    fn workload_much_larger_than_array() {
        for df in Dataflow::ALL {
            check(17, 19, 23, 4, 4, df);
        }
    }

    #[test]
    fn mismatched_operands_rejected() {
        let wl = GemmWorkload::new(4, 4, 4).unwrap();
        let a = SimMatrix::zeros(4, 5); // wrong K
        let b = SimMatrix::zeros(4, 4);
        let arr = FunctionalArray::new(ArrayConfig::new(4, 4).unwrap());
        assert!(arr.execute(&wl, &a, &b, Dataflow::Os).is_err());
    }
}
