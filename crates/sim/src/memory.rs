//! SRAM buffer sizing model: DRAM traffic as a function of buffer capacity,
//! plus a double-buffering stall model.
//!
//! Each of the three operand buffers (IFMAP, Filter, OFMAP — paper Fig. 3)
//! filters DRAM traffic through tiling reuse:
//!
//! * every operand has a **minimum traffic** (its size — it must cross the
//!   interface at least once),
//! * a **reuse count** (how many times tiling would refetch it if nothing
//!   were buffered), and
//! * a **working set** (the buffer capacity at which refetches vanish).
//!
//! Traffic interpolates linearly in the buffered fraction of the working set:
//! `traffic = min · (1 + (reuse − 1) · (1 − min(1, buf / ws)))`.
//!
//! The *stationary* operand of a dataflow is pinned inside the PE array, so
//! its buffer only stages one array-sized tile — its working set is tiny and
//! tiny buffers are optimal for it. This reproduces the paper's Fig. 6(d-f):
//! IS wants a small IFMAP buffer, WS a small Filter buffer, and under a shared
//! capacity limit large workloads pull capacity away from the OFMAP buffer.
//!
//! Stalls: traffic whose operand has at least two per-fold tiles of buffer is
//! prefetched behind compute (double buffering) and only stalls if the
//! interface is oversubscribed; traffic without double-buffer room serializes.

use airchitect_workload::GemmWorkload;
use serde::{Deserialize, Serialize};

use crate::compute::{self, Tiling};
use crate::{ArrayConfig, Dataflow, SimError};

/// Bytes per operand element (int8 accelerator, as in SCALE-Sim's default).
pub const BYTES_PER_ELEM: u64 = 1;

/// Capacities of the three SRAM operand buffers, in bytes.
///
/// # Example
///
/// ```
/// use airchitect_sim::memory::BufferConfig;
///
/// let bufs = BufferConfig::from_kb(100, 200, 300)?;
/// assert_eq!(bufs.ifmap_bytes(), 100 * 1024);
/// assert_eq!(bufs.total_kb(), 600);
/// # Ok::<(), airchitect_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufferConfig {
    ifmap: u64,
    filter: u64,
    ofmap: u64,
}

impl BufferConfig {
    /// Creates a buffer configuration from capacities in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroBuffer`] if any capacity is zero.
    pub fn new(ifmap: u64, filter: u64, ofmap: u64) -> Result<Self, SimError> {
        for (v, which) in [(ifmap, "ifmap"), (filter, "filter"), (ofmap, "ofmap")] {
            if v == 0 {
                return Err(SimError::ZeroBuffer { which });
            }
        }
        Ok(Self {
            ifmap,
            filter,
            ofmap,
        })
    }

    /// Creates a buffer configuration from capacities in KB (1 KB = 1024 B).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroBuffer`] if any capacity is zero.
    pub fn from_kb(ifmap_kb: u64, filter_kb: u64, ofmap_kb: u64) -> Result<Self, SimError> {
        Self::new(ifmap_kb * 1024, filter_kb * 1024, ofmap_kb * 1024)
    }

    /// IFMAP buffer capacity in bytes.
    pub fn ifmap_bytes(&self) -> u64 {
        self.ifmap
    }

    /// Filter buffer capacity in bytes.
    pub fn filter_bytes(&self) -> u64 {
        self.filter
    }

    /// OFMAP buffer capacity in bytes.
    pub fn ofmap_bytes(&self) -> u64 {
        self.ofmap
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.ifmap + self.filter + self.ofmap
    }

    /// Total capacity in whole KB (rounded down).
    pub fn total_kb(&self) -> u64 {
        self.total_bytes() / 1024
    }
}

/// Reuse description of one operand under one dataflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperandReuse {
    /// Minimum possible DRAM traffic, in bytes (the operand's footprint, or
    /// read+write footprint for spilled partial sums).
    pub min_traffic: u64,
    /// Worst-case refetch multiplier when nothing is buffered.
    pub reuse: u64,
    /// Buffer bytes needed to eliminate all refetches.
    pub working_set: u64,
    /// Per-fold tile size in bytes (double-buffer unit).
    pub fold_tile: u64,
}

impl OperandReuse {
    /// DRAM traffic in bytes for a buffer of `buf` bytes.
    pub fn traffic(&self, buf: u64) -> u64 {
        if self.reuse <= 1 || self.working_set == 0 {
            return self.min_traffic;
        }
        let frac = (buf as f64 / self.working_set as f64).min(1.0);
        let extra = (self.reuse - 1) as f64 * (1.0 - frac);
        (self.min_traffic as f64 * (1.0 + extra)).round() as u64
    }

    /// Whether `buf` bytes leave room to double-buffer the per-fold tile.
    pub fn double_buffered(&self, buf: u64) -> bool {
        buf >= 2 * self.fold_tile
    }
}

/// Reuse descriptors for the three operands of `workload` on `array` under
/// `dataflow`. Order: `[ifmap, filter, ofmap]`.
pub fn operand_reuse(
    workload: &GemmWorkload,
    array: ArrayConfig,
    dataflow: Dataflow,
) -> [OperandReuse; 3] {
    let t: Tiling = compute::tiling(workload, array, dataflow);
    let (m, n, k) = workload.as_tuple();
    let (r, c) = (array.rows(), array.cols());
    let e = BYTES_PER_ELEM;
    let stage = (r.min(t.row_extent) * c.min(t.col_extent)) * e;

    match dataflow {
        Dataflow::Os => {
            // A row-band (R x K) is reused across the column folds; B column
            // tiles (K x C) are refetched once per row band unless the whole
            // filter fits; outputs leave once.
            let ifmap = OperandReuse {
                min_traffic: m * k * e,
                reuse: t.col_folds,
                working_set: r.min(m) * k * e,
                fold_tile: r.min(m) * k * e,
            };
            let filter = OperandReuse {
                min_traffic: k * n * e,
                reuse: t.row_folds,
                working_set: k * n * e,
                fold_tile: k * c.min(n) * e,
            };
            let ofmap = OperandReuse {
                min_traffic: m * n * e,
                reuse: 1,
                working_set: stage,
                fold_tile: stage,
            };
            [ifmap, filter, ofmap]
        }
        Dataflow::Ws => {
            // Filter is stationary: fetched exactly once, buffer only stages
            // one array tile. IFMAP slabs (M x R) are reused across column
            // folds. Partial sums spill unless an M x C slab fits.
            let ifmap = OperandReuse {
                min_traffic: m * k * e,
                reuse: t.col_folds,
                working_set: m * r.min(k) * e,
                fold_tile: m * r.min(k) * e,
            };
            let filter = OperandReuse {
                min_traffic: k * n * e,
                reuse: 1,
                working_set: stage,
                fold_tile: stage,
            };
            let ofmap = OperandReuse {
                min_traffic: m * n * e,
                reuse: 2 * t.row_folds - 1,
                working_set: m * c.min(n) * e,
                fold_tile: m * c.min(n) * e,
            };
            [ifmap, filter, ofmap]
        }
        Dataflow::Is => {
            // IFMAP is stationary; filter slabs (N x R) stream and are reused
            // across the M (column) folds; partial sums spill unless an
            // N x C slab fits.
            let ifmap = OperandReuse {
                min_traffic: m * k * e,
                reuse: 1,
                working_set: stage,
                fold_tile: stage,
            };
            let filter = OperandReuse {
                min_traffic: k * n * e,
                reuse: t.col_folds,
                working_set: n * r.min(k) * e,
                fold_tile: n * r.min(k) * e,
            };
            let ofmap = OperandReuse {
                min_traffic: m * n * e,
                reuse: 2 * t.row_folds - 1,
                working_set: n * c.min(m) * e,
                fold_tile: n * c.min(m) * e,
            };
            [ifmap, filter, ofmap]
        }
    }
}

/// Per-operand DRAM traffic, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// IFMAP operand bytes moved to/from DRAM.
    pub ifmap: u64,
    /// Filter operand bytes moved from DRAM.
    pub filter: u64,
    /// OFMAP bytes moved to/from DRAM (including partial-sum spills).
    pub ofmap: u64,
}

impl TrafficReport {
    /// Total bytes across all operands.
    pub fn total(&self) -> u64 {
        self.ifmap + self.filter + self.ofmap
    }
}

/// DRAM traffic for `workload` with the given buffers.
pub fn dram_traffic(
    workload: &GemmWorkload,
    array: ArrayConfig,
    dataflow: Dataflow,
    buffers: BufferConfig,
) -> TrafficReport {
    let [a, b, c] = operand_reuse(workload, array, dataflow);
    TrafficReport {
        ifmap: a.traffic(buffers.ifmap_bytes()),
        filter: b.traffic(buffers.filter_bytes()),
        ofmap: c.traffic(buffers.ofmap_bytes()),
    }
}

/// Stall cycles for `workload` given buffers and an interface bandwidth of
/// `bandwidth` bytes/cycle.
///
/// Traffic of double-buffered operands overlaps with compute and only stalls
/// when the interface is oversubscribed; traffic of operands without
/// double-buffer headroom serializes in full.
///
/// # Errors
///
/// Returns [`SimError::ZeroBandwidth`] if `bandwidth` is zero.
pub fn stall_cycles(
    workload: &GemmWorkload,
    array: ArrayConfig,
    dataflow: Dataflow,
    buffers: BufferConfig,
    bandwidth: u64,
) -> Result<u64, SimError> {
    if bandwidth == 0 {
        return Err(SimError::ZeroBandwidth);
    }
    let reuse = operand_reuse(workload, array, dataflow);
    let bufs = [
        buffers.ifmap_bytes(),
        buffers.filter_bytes(),
        buffers.ofmap_bytes(),
    ];
    let mut overlapped = 0u64;
    let mut serialized = 0u64;
    for (op, &buf) in reuse.iter().zip(&bufs) {
        let traffic = op.traffic(buf);
        if op.double_buffered(buf) {
            overlapped += traffic;
        } else {
            serialized += traffic;
        }
    }
    let compute = compute::runtime_cycles(workload, array, dataflow);
    // Overlapped traffic hides behind compute; whatever exceeds the
    // interface's compute-time budget spills into stall bytes, together with
    // all serialized traffic. A single final ceil keeps the model monotone
    // in buffer sizes and bandwidth.
    let hidden_bytes = compute.saturating_mul(bandwidth);
    let stall_bytes = overlapped.saturating_sub(hidden_bytes) + serialized;
    Ok(stall_bytes.div_ceil(bandwidth))
}

/// Total cycles (compute + stalls).
///
/// # Errors
///
/// Returns [`SimError::ZeroBandwidth`] if `bandwidth` is zero.
pub fn total_cycles(
    workload: &GemmWorkload,
    array: ArrayConfig,
    dataflow: Dataflow,
    buffers: BufferConfig,
    bandwidth: u64,
) -> Result<u64, SimError> {
    Ok(compute::runtime_cycles(workload, array, dataflow)
        + stall_cycles(workload, array, dataflow, buffers, bandwidth)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(m: u64, n: u64, k: u64) -> GemmWorkload {
        GemmWorkload::new(m, n, k).unwrap()
    }

    fn arr(r: u64, c: u64) -> ArrayConfig {
        ArrayConfig::new(r, c).unwrap()
    }

    fn kb(i: u64, f: u64, o: u64) -> BufferConfig {
        BufferConfig::from_kb(i, f, o).unwrap()
    }

    #[test]
    fn buffer_config_validation() {
        assert!(matches!(
            BufferConfig::new(0, 1, 1),
            Err(SimError::ZeroBuffer { which: "ifmap" })
        ));
        assert_eq!(kb(1, 2, 3).total_kb(), 6);
    }

    #[test]
    fn traffic_is_monotone_in_buffer_size() {
        let w = wl(512, 512, 512);
        let a = arr(16, 16);
        for df in Dataflow::ALL {
            let small = dram_traffic(&w, a, df, kb(100, 100, 100)).total();
            let big = dram_traffic(&w, a, df, kb(1000, 1000, 1000)).total();
            assert!(big <= small, "{df}: bigger buffers must not add traffic");
        }
    }

    #[test]
    fn traffic_never_below_operand_footprint() {
        let w = wl(300, 200, 100);
        let a = arr(8, 32);
        for df in Dataflow::ALL {
            let t = dram_traffic(&w, a, df, kb(1000, 1000, 1000));
            assert!(t.ifmap >= w.ifmap_elems());
            assert!(t.filter >= w.filter_elems());
            assert!(t.ofmap >= w.ofmap_elems());
        }
    }

    #[test]
    fn stationary_operand_has_tiny_working_set() {
        let w = wl(1024, 1024, 1024);
        let a = arr(32, 32);
        // WS: filter stationary => its working set is just the array tile.
        let [_, filt, _] = operand_reuse(&w, a, Dataflow::Ws);
        assert_eq!(filt.working_set, 32 * 32 * BYTES_PER_ELEM);
        assert_eq!(filt.reuse, 1);
        // IS: ifmap stationary.
        let [ifm, _, _] = operand_reuse(&w, a, Dataflow::Is);
        assert_eq!(ifm.working_set, 32 * 32 * BYTES_PER_ELEM);
        assert_eq!(ifm.reuse, 1);
    }

    #[test]
    fn stalls_decrease_with_bandwidth() {
        let w = wl(512, 512, 512);
        let a = arr(16, 16);
        let b = kb(200, 200, 200);
        let s1 = stall_cycles(&w, a, Dataflow::Os, b, 1).unwrap();
        let s10 = stall_cycles(&w, a, Dataflow::Os, b, 10).unwrap();
        let s100 = stall_cycles(&w, a, Dataflow::Os, b, 100).unwrap();
        assert!(s1 >= s10 && s10 >= s100);
    }

    #[test]
    fn zero_bandwidth_is_rejected() {
        let w = wl(8, 8, 8);
        assert_eq!(
            stall_cycles(&w, arr(4, 4), Dataflow::Os, kb(1, 1, 1), 0),
            Err(SimError::ZeroBandwidth)
        );
    }

    #[test]
    fn ample_bandwidth_and_buffers_hide_memory() {
        // A small workload with large buffers and bandwidth: no stalls.
        let w = wl(32, 32, 32);
        let a = arr(8, 8);
        let s = stall_cycles(&w, a, Dataflow::Os, kb(900, 900, 900), 100).unwrap();
        assert_eq!(s, 0);
    }

    #[test]
    fn total_cycles_is_compute_plus_stalls() {
        let w = wl(256, 128, 64);
        let a = arr(8, 16);
        let b = kb(100, 100, 100);
        let total = total_cycles(&w, a, Dataflow::Ws, b, 4).unwrap();
        let compute = compute::runtime_cycles(&w, a, Dataflow::Ws);
        let stalls = stall_cycles(&w, a, Dataflow::Ws, b, 4).unwrap();
        assert_eq!(total, compute + stalls);
    }

    #[test]
    fn partial_sum_spill_grows_ofmap_traffic() {
        // WS with many K folds and a tiny OFMAP buffer: partial sums spill.
        let w = wl(2048, 64, 4096);
        let a = arr(16, 16);
        let spilled = dram_traffic(&w, a, Dataflow::Ws, kb(100, 100, 1)).ofmap;
        let held = dram_traffic(&w, a, Dataflow::Ws, kb(100, 100, 900)).ofmap;
        assert!(spilled > held);
        assert!(spilled > w.ofmap_elems());
    }
}
