use serde::{Deserialize, Serialize};

use crate::SimError;

/// Physical shape of a monolithic systolic array: `rows x cols` MAC units.
///
/// # Example
///
/// ```
/// use airchitect_sim::ArrayConfig;
///
/// let a = ArrayConfig::new(16, 32)?;
/// assert_eq!(a.macs(), 512);
/// assert!((a.aspect_ratio() - 0.5).abs() < 1e-12);
/// # Ok::<(), airchitect_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArrayConfig {
    rows: u64,
    cols: u64,
}

impl ArrayConfig {
    /// Creates an array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroArrayDim`] if either dimension is zero.
    pub fn new(rows: u64, cols: u64) -> Result<Self, SimError> {
        if rows == 0 {
            return Err(SimError::ZeroArrayDim { which: "rows" });
        }
        if cols == 0 {
            return Err(SimError::ZeroArrayDim { which: "cols" });
        }
        Ok(Self { rows, cols })
    }

    /// Number of PE rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Number of PE columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Total MAC units (`rows · cols`).
    pub fn macs(&self) -> u64 {
        self.rows * self.cols
    }

    /// `rows / cols` — the paper plots optima in terms of this ratio
    /// (Fig. 5d, Fig. 6a-c y-axis).
    pub fn aspect_ratio(&self) -> f64 {
        self.rows as f64 / self.cols as f64
    }

    /// Enumerates every power-of-two shape `(2^a, 2^b)` with `a, b >= 1` and
    /// `2^(a+b) <= mac_budget`, in row-major order.
    ///
    /// For a budget of `2^18` this yields the paper's 153 shapes (Fig. 8b:
    /// 153 shapes × 3 dataflows = 459 output labels).
    pub fn enumerate_pow2(mac_budget: u64) -> Vec<ArrayConfig> {
        let mut out = Vec::new();
        let budget_log2 = 63 - mac_budget.max(1).leading_zeros() as u64;
        for a in 1..=budget_log2 {
            for b in 1..=budget_log2 {
                if a + b <= budget_log2 {
                    out.push(ArrayConfig {
                        rows: 1 << a,
                        cols: 1 << b,
                    });
                }
            }
        }
        out
    }
}

impl std::fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_dims_rejected() {
        assert_eq!(
            ArrayConfig::new(0, 4),
            Err(SimError::ZeroArrayDim { which: "rows" })
        );
        assert_eq!(
            ArrayConfig::new(4, 0),
            Err(SimError::ZeroArrayDim { which: "cols" })
        );
    }

    #[test]
    fn enumerate_pow2_matches_paper_output_space() {
        // a, b >= 1, a + b <= 18  =>  sum_{s=2}^{18} (s-1) = 153 shapes.
        assert_eq!(ArrayConfig::enumerate_pow2(1 << 18).len(), 153);
        // x3 dataflows = 459, the size of the paper's CS1 output space.
        assert_eq!(ArrayConfig::enumerate_pow2(1 << 18).len() * 3, 459);
    }

    #[test]
    fn enumerate_pow2_small_budgets() {
        // 2^2 budget: only 2x2.
        assert_eq!(
            ArrayConfig::enumerate_pow2(4),
            vec![ArrayConfig::new(2, 2).unwrap()]
        );
        // 2^3: 2x2, 2x4, 4x2.
        assert_eq!(ArrayConfig::enumerate_pow2(8).len(), 3);
        // Budget below 4 MACs: no legal shapes.
        assert!(ArrayConfig::enumerate_pow2(2).is_empty());
    }

    #[test]
    fn enumerate_respects_budget() {
        for cfg in ArrayConfig::enumerate_pow2(1 << 10) {
            assert!(cfg.macs() <= 1 << 10);
            assert!(cfg.rows().is_power_of_two() && cfg.rows() >= 2);
            assert!(cfg.cols().is_power_of_two() && cfg.cols() >= 2);
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(ArrayConfig::new(8, 64).unwrap().to_string(), "8x64");
    }
}
