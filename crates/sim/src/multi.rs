//! Multi-array concurrent execution (paper case study 3).
//!
//! The paper's third case study schedules independent GEMM workloads onto a
//! set of heterogeneous systolic arrays "each with different size and
//! memory" (Fig. 4), minimizing execution time and energy. This module models
//! that system: each [`ArrayInstance`] owns its shape, buffers, and interface
//! bandwidth; a [`Schedule`] assigns one workload and one dataflow per array;
//! evaluation returns the makespan (arrays run concurrently) and total energy.

use airchitect_workload::GemmWorkload;
use serde::{Deserialize, Serialize};

use crate::energy::EnergyModel;
use crate::memory::{self, BufferConfig};
use crate::{ArrayConfig, Dataflow, SimError};

/// One array of a multi-array system: shape plus its private memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayInstance {
    /// Physical shape of this array.
    pub config: ArrayConfig,
    /// Private SRAM buffer capacities.
    pub buffers: BufferConfig,
    /// DRAM interface bandwidth in bytes/cycle.
    pub bandwidth: u64,
}

impl ArrayInstance {
    /// Creates an array instance.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ZeroBandwidth`] if `bandwidth` is zero.
    pub fn new(
        config: ArrayConfig,
        buffers: BufferConfig,
        bandwidth: u64,
    ) -> Result<Self, SimError> {
        if bandwidth == 0 {
            return Err(SimError::ZeroBandwidth);
        }
        Ok(Self {
            config,
            buffers,
            bandwidth,
        })
    }

    /// Total cycles for `workload` under `dataflow` on this instance.
    pub fn cycles(&self, workload: &GemmWorkload, dataflow: Dataflow) -> u64 {
        memory::total_cycles(
            workload,
            self.config,
            dataflow,
            self.buffers,
            self.bandwidth,
        )
        .expect("bandwidth validated at construction")
    }
}

/// A heterogeneous collection of concurrently operating arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiArraySystem {
    instances: Vec<ArrayInstance>,
    energy_model: EnergyModel,
}

impl MultiArraySystem {
    /// Creates a system from its array instances.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptySystem`] if `instances` is empty.
    pub fn new(instances: Vec<ArrayInstance>) -> Result<Self, SimError> {
        if instances.is_empty() {
            return Err(SimError::EmptySystem);
        }
        Ok(Self {
            instances,
            energy_model: EnergyModel::default(),
        })
    }

    /// The 4-array heterogeneous system used for the case study 3 dataset:
    /// a monolithic square array, two rectangular arrays, and a skinny one,
    /// with graded memory systems (paper Fig. 4 shows the 3-array sketch;
    /// the dataset in Fig. 8d uses four arrays).
    pub fn heterogeneous_4() -> Self {
        let mk = |r, c, ikb, fkb, okb, bw| ArrayInstance {
            config: ArrayConfig::new(r, c).expect("static dims are non-zero"),
            buffers: BufferConfig::from_kb(ikb, fkb, okb).expect("static sizes are non-zero"),
            bandwidth: bw,
        };
        Self::new(vec![
            mk(32, 32, 400, 400, 200, 32),
            mk(64, 16, 300, 300, 100, 16),
            mk(16, 64, 300, 300, 100, 16),
            mk(128, 4, 100, 100, 50, 8),
        ])
        .expect("static system is non-empty")
    }

    /// A 3-array system in the spirit of the paper's Fig. 4 sketch (one
    /// monolithic square array plus two smaller distributed configurations);
    /// its schedule space has the paper's quoted 162 entries.
    pub fn heterogeneous_3() -> Self {
        let mk = |r, c, ikb, fkb, okb, bw| ArrayInstance {
            config: ArrayConfig::new(r, c).expect("static dims are non-zero"),
            buffers: BufferConfig::from_kb(ikb, fkb, okb).expect("static sizes are non-zero"),
            bandwidth: bw,
        };
        Self::new(vec![
            mk(32, 32, 400, 400, 200, 32),
            mk(8, 8, 200, 200, 100, 8),
            mk(2, 2, 100, 100, 50, 2),
        ])
        .expect("static system is non-empty")
    }

    /// The arrays of this system.
    pub fn instances(&self) -> &[ArrayInstance] {
        &self.instances
    }

    /// Number of arrays.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// Whether the system has no arrays (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Replaces the energy model used by [`MultiArraySystem::evaluate`].
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.energy_model = model;
        self
    }

    /// Evaluates a schedule: every array runs its assigned workload
    /// concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ScheduleMismatch`] if the schedule's length differs
    /// from the number of arrays.
    pub fn evaluate(
        &self,
        workloads: &[GemmWorkload],
        schedule: &Schedule,
    ) -> Result<ScheduleCost, SimError> {
        if schedule.assignments.len() != self.instances.len()
            || workloads.len() != self.instances.len()
        {
            return Err(SimError::ScheduleMismatch {
                arrays: self.instances.len(),
                workloads: workloads.len().max(schedule.assignments.len()),
            });
        }
        let mut makespan = 0u64;
        let mut energy = 0f64;
        for (inst, asn) in self.instances.iter().zip(&schedule.assignments) {
            let wl = workloads
                .get(asn.workload)
                .ok_or(SimError::ScheduleMismatch {
                    arrays: self.instances.len(),
                    workloads: workloads.len(),
                })?;
            makespan = makespan.max(inst.cycles(wl, asn.dataflow));
            energy += self
                .energy_model
                .energy(wl, inst.config, asn.dataflow, inst.buffers);
        }
        Ok(ScheduleCost { makespan, energy })
    }
}

/// Assignment of one workload (by index) and one dataflow to one array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index into the workload list.
    pub workload: usize,
    /// Dataflow the array uses for that workload.
    pub dataflow: Dataflow,
}

/// A complete schedule: one [`Assignment`] per array, in array order.
///
/// A valid schedule is a *permutation*: every workload appears exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Per-array assignments (index = array index).
    pub assignments: Vec<Assignment>,
}

impl Schedule {
    /// Builds a schedule from a workload permutation and per-array dataflows.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn new(permutation: &[usize], dataflows: &[Dataflow]) -> Self {
        assert_eq!(
            permutation.len(),
            dataflows.len(),
            "permutation and dataflow lists must have equal length"
        );
        Self {
            assignments: permutation
                .iter()
                .zip(dataflows)
                .map(|(&workload, &dataflow)| Assignment { workload, dataflow })
                .collect(),
        }
    }

    /// Whether the schedule assigns every workload index `0..len` exactly
    /// once.
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.assignments.len()];
        for a in &self.assignments {
            match seen.get_mut(a.workload) {
                Some(s) if !*s => *s = true,
                _ => return false,
            }
        }
        true
    }
}

/// Cost of a schedule: concurrent makespan and total energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleCost {
    /// Cycles until the slowest array finishes.
    pub makespan: u64,
    /// Sum of per-array energies.
    pub energy: f64,
}

impl ScheduleCost {
    /// Lexicographic comparison: makespan first, energy as tie-break —
    /// the paper's CS3 optimality criterion.
    pub fn better_than(&self, other: &ScheduleCost) -> bool {
        self.makespan < other.makespan
            || (self.makespan == other.makespan && self.energy < other.energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workloads_4() -> Vec<GemmWorkload> {
        vec![
            GemmWorkload::new(1024, 1024, 512).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(2048, 32, 256).unwrap(),
            GemmWorkload::new(128, 512, 128).unwrap(),
        ]
    }

    #[test]
    fn empty_system_rejected() {
        assert_eq!(MultiArraySystem::new(vec![]), Err(SimError::EmptySystem));
    }

    #[test]
    fn heterogeneous_4_has_four_distinct_arrays() {
        let sys = MultiArraySystem::heterogeneous_4();
        assert_eq!(sys.len(), 4);
        let mut shapes: Vec<_> = sys.instances().iter().map(|i| i.config).collect();
        shapes.sort();
        shapes.dedup();
        assert_eq!(shapes.len(), 4);
    }

    #[test]
    fn makespan_is_max_of_per_array_cycles() {
        let sys = MultiArraySystem::heterogeneous_4();
        let wls = workloads_4();
        let sched = Schedule::new(&[0, 1, 2, 3], &[Dataflow::Os; 4]);
        let cost = sys.evaluate(&wls, &sched).unwrap();
        let per_array: Vec<u64> = sys
            .instances()
            .iter()
            .zip(&sched.assignments)
            .map(|(inst, a)| inst.cycles(&wls[a.workload], a.dataflow))
            .collect();
        assert_eq!(cost.makespan, *per_array.iter().max().unwrap());
    }

    #[test]
    fn schedule_length_mismatch_rejected() {
        let sys = MultiArraySystem::heterogeneous_4();
        let wls = workloads_4();
        let bad = Schedule::new(&[0, 1], &[Dataflow::Os; 2]);
        assert!(matches!(
            sys.evaluate(&wls, &bad),
            Err(SimError::ScheduleMismatch { .. })
        ));
    }

    #[test]
    fn permutation_check() {
        assert!(Schedule::new(&[2, 0, 1, 3], &[Dataflow::Os; 4]).is_permutation());
        assert!(!Schedule::new(&[0, 0, 1, 3], &[Dataflow::Os; 4]).is_permutation());
        assert!(!Schedule::new(&[0, 1, 2, 7], &[Dataflow::Os; 4]).is_permutation());
    }

    #[test]
    fn assignment_matters() {
        // Putting the big workload on the big array should beat putting it
        // on the skinny one.
        let sys = MultiArraySystem::heterogeneous_4();
        let wls = workloads_4();
        let good = Schedule::new(&[0, 1, 2, 3], &[Dataflow::Os; 4]);
        let bad = Schedule::new(&[3, 1, 2, 0], &[Dataflow::Os; 4]);
        let cg = sys.evaluate(&wls, &good).unwrap();
        let cb = sys.evaluate(&wls, &bad).unwrap();
        assert!(cg.makespan < cb.makespan);
    }

    #[test]
    fn cost_ordering_is_lexicographic() {
        let a = ScheduleCost {
            makespan: 10,
            energy: 100.0,
        };
        let b = ScheduleCost {
            makespan: 10,
            energy: 50.0,
        };
        let c = ScheduleCost {
            makespan: 5,
            energy: 1e9,
        };
        assert!(b.better_than(&a));
        assert!(c.better_than(&b));
        assert!(!a.better_than(&a));
    }
}
