//! Property-based tests for the analytical simulator invariants.

use airchitect_sim::memory::{self, BufferConfig};
use airchitect_sim::{compute, ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = u64> {
    1u64..=4096
}

fn pow2_dim() -> impl Strategy<Value = u64> {
    (1u32..=9).prop_map(|e| 1u64 << e)
}

fn dataflow() -> impl Strategy<Value = Dataflow> {
    prop_oneof![Just(Dataflow::Os), Just(Dataflow::Ws), Just(Dataflow::Is)]
}

proptest! {
    /// Runtime never beats the roofline compute bound.
    #[test]
    fn runtime_at_least_lower_bound(
        m in dims(), n in dims(), k in dims(),
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
    ) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = ArrayConfig::new(r, c).unwrap();
        prop_assert!(
            compute::runtime_cycles(&wl, a, df) >= compute::compute_lower_bound(&wl, a)
        );
    }

    /// Utilization is a valid fraction.
    #[test]
    fn utilization_in_unit_interval(
        m in dims(), n in dims(), k in dims(),
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
    ) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = ArrayConfig::new(r, c).unwrap();
        let u = compute::utilization(&wl, a, df);
        prop_assert!(u > 0.0 && u <= 1.0 + 1e-12);
    }

    /// Growing any workload dimension never reduces runtime.
    #[test]
    fn runtime_monotone_in_workload(
        m in 1u64..=2048, n in 1u64..=2048, k in 1u64..=2048,
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
    ) {
        let a = ArrayConfig::new(r, c).unwrap();
        let base = compute::runtime_cycles(&GemmWorkload::new(m, n, k).unwrap(), a, df);
        let gm = compute::runtime_cycles(&GemmWorkload::new(m + 1, n, k).unwrap(), a, df);
        let gn = compute::runtime_cycles(&GemmWorkload::new(m, n + 1, k).unwrap(), a, df);
        let gk = compute::runtime_cycles(&GemmWorkload::new(m, n, k + 1).unwrap(), a, df);
        prop_assert!(gm >= base && gn >= base && gk >= base);
    }

    /// Growing any buffer never increases DRAM traffic or stalls.
    #[test]
    fn memory_monotone_in_buffers(
        m in dims(), n in dims(), k in dims(),
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
        ikb in 1u64..=500, fkb in 1u64..=500, okb in 1u64..=500,
        bw in 1u64..=100,
    ) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = ArrayConfig::new(r, c).unwrap();
        let small = BufferConfig::from_kb(ikb, fkb, okb).unwrap();
        let big = BufferConfig::from_kb(2 * ikb, 2 * fkb, 2 * okb).unwrap();
        let ts = memory::dram_traffic(&wl, a, df, small).total();
        let tb = memory::dram_traffic(&wl, a, df, big).total();
        prop_assert!(tb <= ts);
        let ss = memory::stall_cycles(&wl, a, df, small, bw).unwrap();
        let sb = memory::stall_cycles(&wl, a, df, big, bw).unwrap();
        prop_assert!(sb <= ss);
    }

    /// DRAM traffic never drops below the sum of operand footprints.
    #[test]
    fn traffic_at_least_footprints(
        m in dims(), n in dims(), k in dims(),
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
        ikb in 1u64..=1000, fkb in 1u64..=1000, okb in 1u64..=1000,
    ) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = ArrayConfig::new(r, c).unwrap();
        let b = BufferConfig::from_kb(ikb, fkb, okb).unwrap();
        let t = memory::dram_traffic(&wl, a, df, b);
        prop_assert!(t.ifmap >= wl.ifmap_elems());
        prop_assert!(t.filter >= wl.filter_elems());
        prop_assert!(t.ofmap >= wl.ofmap_elems());
    }

    /// Doubling bandwidth never increases stalls.
    #[test]
    fn stalls_monotone_in_bandwidth(
        m in dims(), n in dims(), k in dims(),
        r in pow2_dim(), c in pow2_dim(), df in dataflow(),
        bw in 1u64..=64,
    ) {
        let wl = GemmWorkload::new(m, n, k).unwrap();
        let a = ArrayConfig::new(r, c).unwrap();
        let b = BufferConfig::from_kb(200, 200, 200).unwrap();
        let s1 = memory::stall_cycles(&wl, a, df, b, bw).unwrap();
        let s2 = memory::stall_cycles(&wl, a, df, b, 2 * bw).unwrap();
        prop_assert!(s2 <= s1);
    }
}

mod functional_equivalence {
    use airchitect_sim::functional::{FunctionalArray, SimMatrix};
    use airchitect_sim::{compute, ArrayConfig, Dataflow};
    use airchitect_workload::GemmWorkload;
    use proptest::prelude::*;

    /// Deterministic small-integer matrix from a seed (exact in f32).
    fn small_int_matrix(rows: usize, cols: usize, seed: u64) -> SimMatrix {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 60) as i64 - 8) as f32
            })
            .collect();
        SimMatrix::from_vec(rows, cols, data)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The register-level machine computes the exact matrix product and
        /// takes exactly the cycles the analytical model charges, for every
        /// dataflow and ragged tiling.
        #[test]
        fn functional_matches_analytical(
            m in 1u64..=10, n in 1u64..=10, k in 1u64..=10,
            r in 1u32..=3, c in 1u32..=3,
            df_idx in 0usize..3,
            seed in 0u64..1000,
        ) {
            let df = Dataflow::from_index(df_idx).expect("index < 3");
            let wl = GemmWorkload::new(m, n, k).expect("dims >= 1");
            let array = ArrayConfig::new(1 << r, 1 << c).expect("pow2 dims");
            let a = small_int_matrix(m as usize, k as usize, seed);
            let b = small_int_matrix(k as usize, n as usize, seed ^ 0xABCD);
            let result = FunctionalArray::new(array)
                .execute(&wl, &a, &b, df)
                .expect("matching shapes");
            prop_assert_eq!(result.output, a.matmul_reference(&b));
            prop_assert_eq!(result.macs_issued, wl.macs());
            prop_assert_eq!(result.cycles, compute::runtime_cycles(&wl, array, df));
        }
    }
}
