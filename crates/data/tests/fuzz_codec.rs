//! Failure injection: the dataset codec must reject arbitrary and mutated
//! bytes with an error — never panic, never mis-parse silently.

use airchitect_data::{codec, Dataset};
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = codec::from_bytes(&bytes);
    }

    /// Single-byte corruptions of a valid buffer either fail cleanly or
    /// decode to a structurally valid dataset (flipping a feature byte is
    /// legitimately undetectable — but labels and headers must stay sound).
    #[test]
    fn mutated_buffers_fail_cleanly(
        flip_at in 0usize..200,
        xor in 1u8..=255,
    ) {
        let mut ds = Dataset::new(3, 7).expect("valid dims");
        for i in 0..10 {
            ds.push(&[i as f32, 2.0 * i as f32, -1.0], (i % 7) as u32)
                .expect("valid row");
        }
        let mut bytes = codec::to_bytes(&ds).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] ^= xor;
        match codec::from_bytes(&bytes) {
            Err(_) => {} // clean rejection
            Ok(decoded) => {
                // Structural invariants must hold even for accepted mutants.
                prop_assert_eq!(decoded.feature_dim(), 3);
                prop_assert!(decoded.num_classes() >= 1);
                for i in 0..decoded.len() {
                    prop_assert!(decoded.label(i) < decoded.num_classes());
                }
            }
        }
    }

    /// Truncations at every length fail cleanly.
    #[test]
    fn every_truncation_fails_cleanly(keep_frac in 0.0f64..1.0) {
        let mut ds = Dataset::new(2, 3).expect("valid dims");
        for i in 0..5 {
            ds.push(&[i as f32, 1.0], i % 3).expect("valid row");
        }
        let bytes = codec::to_bytes(&ds);
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        prop_assert!(codec::from_bytes(&bytes[..keep]).is_err());
    }
}
