//! Property-based tests for dataset plumbing: codec roundtrips, split
//! integrity, quantizer monotonicity.

use airchitect_data::quantize::{Log2Binner, Normalizer};
use airchitect_data::{codec, split, Dataset};
use proptest::prelude::*;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..=6, 2u32..=20, 0usize..=80).prop_flat_map(|(dim, classes, rows)| {
        (
            proptest::collection::vec(
                (proptest::collection::vec(-1e6f32..1e6, dim), 0..classes),
                rows,
            ),
            Just(dim),
            Just(classes),
        )
            .prop_map(|(data, dim, classes)| {
                let mut ds = Dataset::new(dim, classes).expect("valid dims");
                for (row, label) in data {
                    ds.push(&row, label).expect("valid row");
                }
                ds
            })
    })
}

proptest! {
    /// Serialize/deserialize is the identity.
    #[test]
    fn codec_roundtrip(ds in arb_dataset()) {
        let back = codec::from_bytes(&codec::to_bytes(&ds)).expect("well-formed");
        prop_assert_eq!(ds, back);
    }

    /// Any truncation of a valid buffer is rejected, never mis-parsed.
    #[test]
    fn codec_rejects_truncations(ds in arb_dataset(), cut in 1usize..=32) {
        let bytes = codec::to_bytes(&ds);
        prop_assume!(bytes.len() > cut);
        prop_assert!(codec::from_bytes(&bytes[..bytes.len() - cut]).is_err());
    }

    /// Splits partition the rows: sizes add up and every (row, label) pair
    /// appears exactly as often as in the source.
    #[test]
    fn split_partitions_rows(ds in arb_dataset(), seed in 0u64..1000) {
        prop_assume!(ds.len() >= 3);
        let s = split::train_val_test(&ds, 0.6, 0.2, 0.2, seed).expect("valid fractions");
        prop_assert_eq!(
            s.train.len() + s.validation.len() + s.test.len(),
            ds.len()
        );
        let collect = |d: &Dataset, out: &mut Vec<(Vec<u32>, u32)>| {
            for i in 0..d.len() {
                out.push((d.row(i).iter().map(|f| f.to_bits()).collect(), d.label(i)));
            }
        };
        let mut original = Vec::new();
        collect(&ds, &mut original);
        let mut recombined = Vec::new();
        collect(&s.train, &mut recombined);
        collect(&s.validation, &mut recombined);
        collect(&s.test, &mut recombined);
        original.sort();
        recombined.sort();
        prop_assert_eq!(original, recombined);
    }

    /// Log2 binning is monotone and stays inside the vocabulary.
    #[test]
    fn binner_monotone_and_bounded(
        a in 0f32..1e9, b in 0f32..1e9,
        bins in 1u32..=8, vocab in 1u32..=128,
    ) {
        let q = Log2Binner::new(bins, vocab);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.bin(lo) <= q.bin(hi));
        prop_assert!(q.bin(hi) < vocab);
    }

    /// Normalized columns have |mean| ~ 0 (when the column varies).
    #[test]
    fn normalizer_centers_columns(values in proptest::collection::vec(-1e3f32..1e3, 4..60)) {
        let mut ds = Dataset::new(1, 2).expect("valid dims");
        for &v in &values {
            ds.push(&[v], 0).expect("valid row");
        }
        let nz = Normalizer::fit(&ds);
        nz.apply(&mut ds);
        let mean: f64 = ds.features().iter().map(|&v| v as f64).sum::<f64>()
            / ds.len() as f64;
        prop_assert!(mean.abs() < 1e-2, "mean {mean}");
    }
}
