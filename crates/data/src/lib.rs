//! Labeled-dataset plumbing shared by the DSE generators and the ML stack.
//!
//! The paper converts DSE into a classification problem: inputs are small
//! integer vectors (workload dimensions plus design constraints), outputs are
//! config-ID labels in a quantized output space. This crate provides the
//! containers and feature transforms both sides agree on:
//!
//! * [`Dataset`] — row-major feature matrix + labels + class count,
//! * [`split`] — seeded train/validation/test splits (the paper's 80:10:10),
//! * [`quantize`] — per-feature transforms: log2 binning for the embedding
//!   front-end and z-score normalization for the raw-feature baselines,
//! * [`codec`] — a compact self-describing binary format so generated
//!   datasets can be cached on disk (no serde_json dependency needed).
//!
//! # Example
//!
//! ```
//! use airchitect_data::Dataset;
//!
//! let mut ds = Dataset::new(2, 3)?;
//! ds.push(&[1.0, 2.0], 0)?;
//! ds.push(&[3.0, 4.0], 2)?;
//! assert_eq!(ds.len(), 2);
//! assert_eq!(ds.row(1), &[3.0, 4.0]);
//! # Ok::<(), airchitect_data::DataError>(())
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;

pub mod codec;
pub mod integrity;
pub mod quantize;
pub mod split;

pub use dataset::Dataset;
pub use error::DataError;
pub use integrity::Integrity;
