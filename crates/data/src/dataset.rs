use crate::DataError;

/// A labeled classification dataset: row-major `f32` features plus `u32`
/// class labels.
///
/// Rows are appended with [`Dataset::push`]; the container validates feature
/// width and label range eagerly so downstream training code can index
/// without checks.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<u32>,
    feature_dim: usize,
    num_classes: u32,
}

impl Dataset {
    /// Creates an empty dataset with `feature_dim` features per row and
    /// `num_classes` output classes.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadFeatureDim`] if `feature_dim` is zero and
    /// [`DataError::BadLabel`] if `num_classes` is zero.
    pub fn new(feature_dim: usize, num_classes: u32) -> Result<Self, DataError> {
        if feature_dim == 0 {
            return Err(DataError::BadFeatureDim {
                expected: 1,
                got: 0,
            });
        }
        if num_classes == 0 {
            return Err(DataError::BadLabel {
                classes: 0,
                label: 0,
            });
        }
        Ok(Self {
            features: Vec::new(),
            labels: Vec::new(),
            feature_dim,
            num_classes,
        })
    }

    /// Appends one labeled row.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::BadFeatureDim`] on width mismatch and
    /// [`DataError::BadLabel`] if `label >= num_classes`.
    pub fn push(&mut self, row: &[f32], label: u32) -> Result<(), DataError> {
        if row.len() != self.feature_dim {
            return Err(DataError::BadFeatureDim {
                expected: self.feature_dim,
                got: row.len(),
            });
        }
        if label >= self.num_classes {
            return Err(DataError::BadLabel {
                classes: self.num_classes,
                label,
            });
        }
        self.features.extend_from_slice(row);
        self.labels.push(label);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Features per row.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> u32 {
        self.num_classes
    }

    /// The `i`-th feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// The `i`-th label.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> u32 {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The full row-major feature buffer.
    pub fn features(&self) -> &[f32] {
        &self.features
    }

    /// Builds a new dataset from the rows at `indices` (used by the
    /// splitters).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset {
            features: Vec::with_capacity(indices.len() * self.feature_dim),
            labels: Vec::with_capacity(indices.len()),
            feature_dim: self.feature_dim,
            num_classes: self.num_classes,
        };
        for &i in indices {
            out.features.extend_from_slice(self.row(i));
            out.labels.push(self.labels[i]);
        }
        out
    }

    /// Per-class label counts (histogram of the output space, paper
    /// Fig. 10d-f).
    pub fn label_histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.num_classes as usize];
        for &l in &self.labels {
            h[l as usize] += 1;
        }
        h
    }

    /// Applies a transform to every feature column in place.
    pub fn map_features<F: FnMut(usize, f32) -> f32>(&mut self, mut f: F) {
        let dim = self.feature_dim;
        for (i, v) in self.features.iter_mut().enumerate() {
            *v = f(i % dim, *v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(Dataset::new(0, 3).is_err());
        assert!(Dataset::new(3, 0).is_err());
        assert!(Dataset::new(3, 3).is_ok());
    }

    #[test]
    fn push_validates_width_and_label() {
        let mut ds = Dataset::new(2, 3).unwrap();
        assert!(matches!(
            ds.push(&[1.0], 0),
            Err(DataError::BadFeatureDim {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            ds.push(&[1.0, 2.0], 3),
            Err(DataError::BadLabel {
                classes: 3,
                label: 3
            })
        ));
        ds.push(&[1.0, 2.0], 2).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    fn row_and_label_access() {
        let mut ds = Dataset::new(3, 10).unwrap();
        ds.push(&[1.0, 2.0, 3.0], 7).unwrap();
        ds.push(&[4.0, 5.0, 6.0], 1).unwrap();
        assert_eq!(ds.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(ds.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(ds.label(0), 7);
        assert_eq!(ds.label(1), 1);
    }

    #[test]
    fn select_reorders_rows() {
        let mut ds = Dataset::new(1, 5).unwrap();
        for i in 0..5 {
            ds.push(&[i as f32], i).unwrap();
        }
        let sub = ds.select(&[4, 0, 2]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.row(0), &[4.0]);
        assert_eq!(sub.label(1), 0);
        assert_eq!(sub.label(2), 2);
    }

    #[test]
    fn histogram_counts_labels() {
        let mut ds = Dataset::new(1, 3).unwrap();
        for l in [0, 1, 1, 2, 2, 2] {
            ds.push(&[0.0], l).unwrap();
        }
        assert_eq!(ds.label_histogram(), vec![1, 2, 3]);
    }

    #[test]
    fn map_features_sees_column_index() {
        let mut ds = Dataset::new(2, 2).unwrap();
        ds.push(&[1.0, 10.0], 0).unwrap();
        ds.push(&[2.0, 20.0], 1).unwrap();
        ds.map_features(|col, v| if col == 1 { v / 10.0 } else { v });
        assert_eq!(ds.row(0), &[1.0, 1.0]);
        assert_eq!(ds.row(1), &[2.0, 2.0]);
    }
}
