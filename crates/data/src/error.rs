use std::error::Error;
use std::fmt;

/// Error produced by dataset construction, splitting, or (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// Feature dimension was zero or a row had the wrong width.
    BadFeatureDim {
        /// Expected feature count.
        expected: usize,
        /// Provided feature count.
        got: usize,
    },
    /// Class count was zero or a label was out of range.
    BadLabel {
        /// Number of classes in the dataset.
        classes: u32,
        /// The offending label.
        label: u32,
    },
    /// A split ratio set did not sum to 1 (within tolerance) or contained
    /// a non-positive entry.
    BadSplit,
    /// The binary codec encountered a malformed buffer.
    Corrupt {
        /// Human readable description of what failed to parse.
        what: &'static str,
    },
    /// A version-2 artifact's CRC32 footer did not match its contents.
    ChecksumMismatch {
        /// CRC stored in the file footer.
        stored: u32,
        /// CRC computed over the file body.
        computed: u32,
    },
    /// An I/O error wrapped as a string (keeps the type `Clone + Eq`).
    Io(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::BadFeatureDim { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            DataError::BadLabel { classes, label } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            DataError::BadSplit => write!(f, "split fractions must be positive and sum to 1"),
            DataError::Corrupt { what } => write!(f, "corrupt dataset buffer: {what}"),
            DataError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: file says {stored:#010x}, contents hash to {computed:#010x}"
            ),
            DataError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}
