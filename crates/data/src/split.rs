//! Seeded dataset splits (the paper trains with an 80:10:10
//! train/validation/test split).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{DataError, Dataset};

/// A three-way split of a dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training partition.
    pub train: Dataset,
    /// Validation partition.
    pub validation: Dataset,
    /// Held-out test partition.
    pub test: Dataset,
}

/// Splits `dataset` into train/validation/test partitions with the given
/// fractions, shuffling with a seeded RNG for reproducibility.
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] if any fraction is negative or the
/// fractions do not sum to 1 (±1e-6).
///
/// # Example
///
/// ```
/// use airchitect_data::{split, Dataset};
///
/// let mut ds = Dataset::new(1, 2)?;
/// for i in 0..100 {
///     ds.push(&[i as f32], (i % 2) as u32)?;
/// }
/// let s = split::train_val_test(&ds, 0.8, 0.1, 0.1, 42)?;
/// assert_eq!(s.train.len(), 80);
/// assert_eq!(s.validation.len(), 10);
/// assert_eq!(s.test.len(), 10);
/// # Ok::<(), airchitect_data::DataError>(())
/// ```
pub fn train_val_test(
    dataset: &Dataset,
    train: f64,
    validation: f64,
    test: f64,
    seed: u64,
) -> Result<Split, DataError> {
    if train < 0.0 || validation < 0.0 || test < 0.0 {
        return Err(DataError::BadSplit);
    }
    if (train + validation + test - 1.0).abs() > 1e-6 {
        return Err(DataError::BadSplit);
    }
    let n = dataset.len();
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);

    let n_train = (n as f64 * train).round() as usize;
    let n_val = (n as f64 * validation).round() as usize;
    let n_train = n_train.min(n);
    let n_val = n_val.min(n - n_train);

    Ok(Split {
        train: dataset.select(&idx[..n_train]),
        validation: dataset.select(&idx[n_train..n_train + n_val]),
        test: dataset.select(&idx[n_train + n_val..]),
    })
}

/// Convenience: the paper's 80:10:10 split.
///
/// # Errors
///
/// Propagates [`DataError::BadSplit`] (cannot occur for these constants).
pub fn paper_split(dataset: &Dataset, seed: u64) -> Result<Split, DataError> {
    train_val_test(dataset, 0.8, 0.1, 0.1, seed)
}

/// Stratified three-way split: each class's rows are shuffled and divided by
/// the given fractions independently, so rare classes keep (approximate)
/// representation in every partition.
///
/// For the long-tailed label distributions of case studies 2 and 3 (most
/// config IDs appear a handful of times), a plain random split can leave
/// whole classes absent from validation/test; stratification removes that
/// source of evaluation noise.
///
/// Any class with at least 3 rows is guaranteed at least one row in each
/// partition (when all three fractions are nonzero) — rounding alone would
/// starve small classes, e.g. 3 rows at 80:10:10 rounds to `(2, 0, 1)`.
///
/// # Errors
///
/// Returns [`DataError::BadSplit`] under the same conditions as
/// [`train_val_test`].
pub fn stratified(
    dataset: &Dataset,
    train: f64,
    validation: f64,
    test: f64,
    seed: u64,
) -> Result<Split, DataError> {
    if train < 0.0 || validation < 0.0 || test < 0.0 {
        return Err(DataError::BadSplit);
    }
    if (train + validation + test - 1.0).abs() > 1e-6 {
        return Err(DataError::BadSplit);
    }
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes() as usize];
    for i in 0..dataset.len() {
        by_class[dataset.label(i) as usize].push(i);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut tr, mut va, mut te) = (Vec::new(), Vec::new(), Vec::new());
    for rows in by_class.iter_mut() {
        rows.shuffle(&mut rng);
        let n = rows.len();
        let n_train = ((n as f64 * train).round() as usize).min(n);
        let n_val = ((n as f64 * validation).round() as usize).min(n - n_train);
        let mut counts = [n_train, n_val, n - n_train - n_val];
        // Rounding can starve a partition even when the class could cover
        // all three; rebalance one row at a time from the largest.
        if n >= 3 && train > 0.0 && validation > 0.0 && test > 0.0 {
            while let Some(empty) = counts.iter().position(|&c| c == 0) {
                let largest = (0..3).max_by_key(|&i| counts[i]).expect("three partitions");
                counts[largest] -= 1;
                counts[empty] += 1;
            }
        }
        let [n_train, n_val, _] = counts;
        tr.extend_from_slice(&rows[..n_train]);
        va.extend_from_slice(&rows[n_train..n_train + n_val]);
        te.extend_from_slice(&rows[n_train + n_val..]);
    }
    // Shuffle partitions so per-class blocks don't survive into batching.
    tr.shuffle(&mut rng);
    va.shuffle(&mut rng);
    te.shuffle(&mut rng);
    Ok(Split {
        train: dataset.select(&tr),
        validation: dataset.select(&va),
        test: dataset.select(&te),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let mut ds = Dataset::new(1, 10).unwrap();
        for i in 0..n {
            ds.push(&[i as f32], (i % 10) as u32).unwrap();
        }
        ds
    }

    #[test]
    fn partitions_cover_everything_once() {
        let ds = toy(103);
        let s = paper_split(&ds, 1).unwrap();
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 103);
        // Recover the multiset of features.
        let mut all: Vec<i64> = s
            .train
            .features()
            .iter()
            .chain(s.validation.features())
            .chain(s.test.features())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..103).collect::<Vec<i64>>());
    }

    #[test]
    fn same_seed_same_split() {
        let ds = toy(50);
        let a = paper_split(&ds, 7).unwrap();
        let b = paper_split(&ds, 7).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn different_seed_different_split() {
        let ds = toy(50);
        let a = paper_split(&ds, 7).unwrap();
        let b = paper_split(&ds, 8).unwrap();
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn bad_fractions_rejected() {
        let ds = toy(10);
        assert!(matches!(
            train_val_test(&ds, 0.5, 0.5, 0.5, 0),
            Err(DataError::BadSplit)
        ));
        assert!(matches!(
            train_val_test(&ds, -0.1, 0.6, 0.5, 0),
            Err(DataError::BadSplit)
        ));
    }

    #[test]
    fn stratified_preserves_class_representation() {
        // 4 classes with 20 rows each: an 80:10:10 stratified split must put
        // every class into every partition.
        let mut ds = Dataset::new(1, 4).unwrap();
        for i in 0..80 {
            ds.push(&[i as f32], (i % 4) as u32).unwrap();
        }
        let s = stratified(&ds, 0.8, 0.1, 0.1, 5).unwrap();
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), 80);
        for part in [&s.train, &s.validation, &s.test] {
            let hist = part.label_histogram();
            assert!(
                hist.iter().all(|&c| c > 0),
                "a class is missing from a partition: {hist:?}"
            );
        }
        // Train is balanced exactly (16 per class).
        assert_eq!(s.train.label_histogram(), vec![16; 4]);
    }

    #[test]
    fn stratified_small_classes_reach_every_partition() {
        // One class per size 1..=10: every class with >= 3 rows must land in
        // all three partitions, and no row may be lost or duplicated.
        let mut ds = Dataset::new(1, 10).unwrap();
        let mut row = 0u32;
        for class in 0..10u32 {
            for _ in 0..=class {
                ds.push(&[row as f32], class).unwrap();
                row += 1;
            }
        }
        let total = row as usize;
        for seed in 0..5 {
            let s = stratified(&ds, 0.8, 0.1, 0.1, seed).unwrap();
            assert_eq!(s.train.len() + s.validation.len() + s.test.len(), total);
            let mut all: Vec<i64> = s
                .train
                .features()
                .iter()
                .chain(s.validation.features())
                .chain(s.test.features())
                .map(|&v| v as i64)
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..total as i64).collect::<Vec<i64>>());
            for part in [&s.train, &s.validation, &s.test] {
                let hist = part.label_histogram();
                for class in 2..10 {
                    // class index c holds c+1 rows, so classes 2..=9 have >= 3.
                    assert!(
                        hist[class] > 0,
                        "class {class} ({} rows) missing from a partition (seed {seed}): {hist:?}",
                        class + 1
                    );
                }
            }
        }
    }

    #[test]
    fn stratified_covers_everything_once() {
        let ds = toy(57);
        let s = stratified(&ds, 0.6, 0.2, 0.2, 9).unwrap();
        let mut all: Vec<i64> = s
            .train
            .features()
            .iter()
            .chain(s.validation.features())
            .chain(s.test.features())
            .map(|&v| v as i64)
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..57).collect::<Vec<i64>>());
    }

    #[test]
    fn stratified_is_deterministic() {
        let ds = toy(40);
        let a = stratified(&ds, 0.8, 0.1, 0.1, 3).unwrap();
        let b = stratified(&ds, 0.8, 0.1, 0.1, 3).unwrap();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn split_shuffles() {
        let ds = toy(100);
        let s = paper_split(&ds, 3).unwrap();
        // The first 80 rows in order would be 0..80; a shuffle makes that
        // astronomically unlikely.
        let first: Vec<i64> = s.train.features().iter().map(|&v| v as i64).collect();
        assert_ne!(first, (0..80).collect::<Vec<i64>>());
    }
}
