//! Artifact integrity primitives shared by every on-disk codec: CRC32
//! checksums and crash-safe atomic file writes.
//!
//! Both the dataset codec (`AIDS`, [`crate::codec`]) and the model codec
//! (`AIRM`, in `airchitect-core`) append a [`crc32`] footer to version-2
//! files and verify it on load, so a truncated or bit-flipped artifact is
//! reported as a typed checksum error instead of being half-parsed.
//! [`atomic_write`] guarantees a reader never observes a partially written
//! file: writes go to a temporary file in the target directory, are
//! fsync'ed, and only then renamed over the destination.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Whether a loaded artifact's checksum was actually verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrity {
    /// A version-2 file whose CRC32 footer matched.
    Verified,
    /// A legacy version-1 file with no checksum footer; parsed structurally
    /// but not integrity-checked.
    UnverifiedLegacy,
}

/// The 4-byte trailer magic preceding nothing — the CRC is the last word of
/// the file, computed over every preceding byte.
pub const CRC_FOOTER_LEN: usize = 4;

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends the CRC32 footer over `buf`'s current contents.
pub fn append_crc_footer(buf: &mut Vec<u8>) {
    let crc = crc32(buf);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Splits a version-2 buffer into `(body, stored_crc)`.
///
/// Returns `None` if the buffer is too short to carry a footer.
pub fn split_crc_footer(buf: &[u8]) -> Option<(&[u8], u32)> {
    if buf.len() < CRC_FOOTER_LEN {
        return None;
    }
    let (body, tail) = buf.split_at(buf.len() - CRC_FOOTER_LEN);
    let stored = u32::from_le_bytes(tail.try_into().expect("footer is 4 bytes"));
    Some((body, stored))
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `bytes` to `path` atomically: temp file in the same directory →
/// flush + fsync → rename over the destination.
///
/// A process killed at any point leaves either the old file (or nothing)
/// or the complete new file — never a torn write. The temp name embeds the
/// pid and a counter so concurrent writers in the same directory cannot
/// collide.
///
/// # Errors
///
/// Any underlying filesystem error; the temp file is removed on failure.
pub fn atomic_write(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    );
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => Path::new(&tmp_name).to_path_buf(),
    };

    let result = (|| {
        let mut f = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&tmp_path)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp_path, path)?;
        // Persist the rename itself where the platform allows opening
        // directories; failure to fsync the directory is not fatal.
        if let Some(d) = dir {
            if let Ok(dirf) = File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp_path);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn footer_roundtrip_detects_flips() {
        let mut buf = b"payload bytes".to_vec();
        append_crc_footer(&mut buf);
        let (body, stored) = split_crc_footer(&buf).expect("long enough");
        assert_eq!(crc32(body), stored);
        // Any single-bit flip anywhere breaks the match.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            let (body, stored) = split_crc_footer(&bad).expect("long enough");
            assert_ne!(crc32(body), stored, "flip at {i} went undetected");
        }
    }

    #[test]
    fn split_rejects_short_buffers() {
        assert!(split_crc_footer(&[1, 2, 3]).is_none());
        assert!(split_crc_footer(&[]).is_none());
    }

    #[test]
    fn atomic_write_replaces_and_survives_failure() {
        let dir = std::env::temp_dir().join(format!("airchitect-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        // No temp litter left behind.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(litter.is_empty(), "temp files left: {litter:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_bare_directory_path() {
        assert!(atomic_write("/", b"x").is_err());
    }
}
