//! Compact binary on-disk format for datasets.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : [u8; 4] = b"AIDS"   (AIrchitect DataSet)
//! version : u32     = 2
//! rows    : u64
//! dim     : u32
//! classes : u32
//! features: rows * dim * f32
//! labels  : rows * u32
//! crc32   : u32                 (IEEE, over all preceding bytes; v2 only)
//! ```
//!
//! Version-1 files (no checksum footer) still load, reported as
//! [`Integrity::UnverifiedLegacy`]. Writers always emit version 2 and go
//! through [`crate::integrity::atomic_write`], so a crash mid-save can
//! never leave a torn dataset behind.

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::integrity::{append_crc_footer, atomic_write, crc32, split_crc_footer, Integrity};
use crate::{DataError, Dataset};

const MAGIC: &[u8; 4] = b"AIDS";
const VERSION: u32 = 2;
const LEGACY_VERSION: u32 = 1;

/// Serializes a dataset to an in-memory buffer (version 2, checksummed).
pub fn to_bytes(dataset: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(28 + dataset.len() * (dataset.feature_dim() * 4 + 4));
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(dataset.len() as u64);
    buf.put_u32_le(dataset.feature_dim() as u32);
    buf.put_u32_le(dataset.num_classes());
    for &v in dataset.features() {
        buf.put_f32_le(v);
    }
    for &l in dataset.labels() {
        buf.put_u32_le(l);
    }
    let mut out = buf.freeze().to_vec();
    append_crc_footer(&mut out);
    Bytes::from(out)
}

/// Deserializes a dataset from a buffer produced by [`to_bytes`],
/// reporting whether its checksum was verified.
///
/// Version-2 buffers have their CRC32 footer checked before any payload
/// parsing; version-1 buffers (pre-checksum) parse structurally and come
/// back as [`Integrity::UnverifiedLegacy`].
///
/// # Errors
///
/// Returns [`DataError::Corrupt`] on any malformed input and
/// [`DataError::ChecksumMismatch`] when a v2 footer disagrees with the
/// body.
pub fn from_bytes_integrity(buf: &[u8]) -> Result<(Dataset, Integrity), DataError> {
    // Header: 4 magic + 4 version + 8 rows + 4 dim + 4 classes = 24 bytes.
    if buf.len() < 24 {
        return Err(DataError::Corrupt {
            what: "truncated header",
        });
    }
    if &buf[..4] != MAGIC {
        return Err(DataError::Corrupt { what: "bad magic" });
    }
    let version = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    let (body, integrity) = match version {
        LEGACY_VERSION => (buf, Integrity::UnverifiedLegacy),
        VERSION => {
            let (body, stored) = split_crc_footer(buf).ok_or(DataError::Corrupt {
                what: "truncated header",
            })?;
            let computed = crc32(body);
            if computed != stored {
                return Err(DataError::ChecksumMismatch { stored, computed });
            }
            (body, Integrity::Verified)
        }
        _ => {
            return Err(DataError::Corrupt {
                what: "unsupported version",
            })
        }
    };
    parse_body(body).map(|ds| (ds, integrity))
}

/// Deserializes a dataset from a buffer produced by [`to_bytes`].
///
/// Convenience wrapper over [`from_bytes_integrity`] that discards the
/// integrity flag.
///
/// # Errors
///
/// Returns [`DataError::Corrupt`] or [`DataError::ChecksumMismatch`] on
/// any malformed input.
pub fn from_bytes(buf: &[u8]) -> Result<Dataset, DataError> {
    from_bytes_integrity(buf).map(|(ds, _)| ds)
}

/// Parses the checksum-free body (header + payload) shared by v1 and v2.
fn parse_body(mut buf: &[u8]) -> Result<Dataset, DataError> {
    if buf.remaining() < 24 {
        return Err(DataError::Corrupt {
            what: "truncated header",
        });
    }
    buf.advance(8); // magic + version, validated by the caller
    let rows = buf.get_u64_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let classes = buf.get_u32_le();
    let need = rows
        .checked_mul(dim)
        .and_then(|f| f.checked_mul(4))
        .and_then(|f| f.checked_add(rows * 4))
        .ok_or(DataError::Corrupt {
            what: "size overflow",
        })?;
    if buf.remaining() != need {
        return Err(DataError::Corrupt {
            what: "payload size mismatch",
        });
    }
    if dim == 0 || classes == 0 {
        return Err(DataError::Corrupt {
            what: "zero dim or classes",
        });
    }
    let mut features = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        features.push(buf.get_f32_le());
    }
    let mut out = Dataset::new(dim, classes)?;
    for r in 0..rows {
        let label = buf.get_u32_le();
        if label >= classes {
            return Err(DataError::Corrupt {
                what: "label out of range",
            });
        }
        out.push(&features[r * dim..(r + 1) * dim], label)?;
    }
    Ok(out)
}

/// Writes a dataset to a file atomically (temp file + fsync + rename).
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors.
pub fn save(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    atomic_write(path, &to_bytes(dataset))?;
    Ok(())
}

/// Reads a dataset from a file written by [`save`], with its integrity
/// status.
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors,
/// [`DataError::Corrupt`] on malformed content, and
/// [`DataError::ChecksumMismatch`] when the stored CRC32 disagrees.
pub fn load_integrity(path: impl AsRef<Path>) -> Result<(Dataset, Integrity), DataError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes_integrity(&buf)
}

/// Reads a dataset from a file written by [`save`].
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors and
/// [`DataError::Corrupt`] / [`DataError::ChecksumMismatch`] on malformed
/// content.
pub fn load(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    load_integrity(path).map(|(ds, _)| ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(3, 5).unwrap();
        ds.push(&[1.5, -2.0, 3.25], 4).unwrap();
        ds.push(&[0.0, 0.5, -0.5], 0).unwrap();
        ds
    }

    /// Strips the v2 footer and patches the version field back to 1,
    /// producing the byte stream a legacy writer would have emitted.
    fn downgrade_to_v1(bytes: &[u8]) -> Vec<u8> {
        let (body, _) = split_crc_footer(bytes).unwrap();
        let mut v1 = body.to_vec();
        v1[4..8].copy_from_slice(&LEGACY_VERSION.to_le_bytes());
        v1
    }

    #[test]
    fn roundtrip_in_memory() {
        let ds = toy();
        let bytes = to_bytes(&ds);
        let (back, integrity) = from_bytes_integrity(&bytes).unwrap();
        assert_eq!(ds, back);
        assert_eq!(integrity, Integrity::Verified);
    }

    #[test]
    fn roundtrip_empty_dataset() {
        let ds = Dataset::new(4, 9).unwrap();
        let back = from_bytes(&to_bytes(&ds)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.feature_dim(), 4);
        assert_eq!(back.num_classes(), 9);
    }

    #[test]
    fn legacy_v1_loads_unverified() {
        let ds = toy();
        let v1 = downgrade_to_v1(&to_bytes(&ds));
        let (back, integrity) = from_bytes_integrity(&v1).unwrap();
        assert_eq!(ds, back);
        assert_eq!(integrity, Integrity::UnverifiedLegacy);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&toy()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(DataError::Corrupt { what: "bad magic" })
        ));
    }

    #[test]
    fn bit_flip_fails_checksum() {
        let bytes = to_bytes(&toy()).to_vec();
        // Flip one bit in the payload (past the header).
        let mut bad = bytes.clone();
        bad[30] ^= 0x01;
        assert!(matches!(
            from_bytes(&bad),
            Err(DataError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&toy());
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
        assert!(from_bytes(&[]).is_err());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let ds = toy();
        let v1 = {
            // Use a v1 buffer so the patched label is not masked by the
            // checksum check — the structural validation must catch it.
            let mut v1 = downgrade_to_v1(&to_bytes(&ds));
            let label_off = 24 + ds.len() * ds.feature_dim() * 4;
            v1[label_off..label_off + 4].copy_from_slice(&99u32.to_le_bytes());
            v1
        };
        assert!(matches!(
            from_bytes(&v1),
            Err(DataError::Corrupt {
                what: "label out of range"
            })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("airchitect-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.aids");
        let ds = toy();
        save(&ds, &path).unwrap();
        let (back, integrity) = load_integrity(&path).unwrap();
        assert_eq!(ds, back);
        assert_eq!(integrity, Integrity::Verified);
        std::fs::remove_file(&path).ok();
    }
}
