//! Compact binary on-disk format for datasets.
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   : [u8; 4] = b"AIDS"   (AIrchitect DataSet)
//! version : u32     = 1
//! rows    : u64
//! dim     : u32
//! classes : u32
//! features: rows * dim * f32
//! labels  : rows * u32
//! ```
//!
//! Kept deliberately simple: generated datasets are caches, not archives.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::{DataError, Dataset};

const MAGIC: &[u8; 4] = b"AIDS";
const VERSION: u32 = 1;

/// Serializes a dataset to an in-memory buffer.
pub fn to_bytes(dataset: &Dataset) -> Bytes {
    let mut buf = BytesMut::with_capacity(
        20 + dataset.len() * (dataset.feature_dim() * 4 + 4),
    );
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(dataset.len() as u64);
    buf.put_u32_le(dataset.feature_dim() as u32);
    buf.put_u32_le(dataset.num_classes());
    for &v in dataset.features() {
        buf.put_f32_le(v);
    }
    for &l in dataset.labels() {
        buf.put_u32_le(l);
    }
    buf.freeze()
}

/// Deserializes a dataset from a buffer produced by [`to_bytes`].
///
/// # Errors
///
/// Returns [`DataError::Corrupt`] on any malformed input.
pub fn from_bytes(mut buf: &[u8]) -> Result<Dataset, DataError> {
    // Header: 4 magic + 4 version + 8 rows + 4 dim + 4 classes = 24 bytes.
    if buf.remaining() < 24 {
        return Err(DataError::Corrupt { what: "truncated header" });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DataError::Corrupt { what: "bad magic" });
    }
    if buf.get_u32_le() != VERSION {
        return Err(DataError::Corrupt { what: "unsupported version" });
    }
    let rows = buf.get_u64_le() as usize;
    let dim = buf.get_u32_le() as usize;
    let classes = buf.get_u32_le();
    let need = rows
        .checked_mul(dim)
        .and_then(|f| f.checked_mul(4))
        .and_then(|f| f.checked_add(rows * 4))
        .ok_or(DataError::Corrupt { what: "size overflow" })?;
    if buf.remaining() != need {
        return Err(DataError::Corrupt { what: "payload size mismatch" });
    }
    if dim == 0 || classes == 0 {
        return Err(DataError::Corrupt { what: "zero dim or classes" });
    }
    let mut features = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        features.push(buf.get_f32_le());
    }
    let mut out = Dataset::new(dim, classes)?;
    for r in 0..rows {
        let label = buf.get_u32_le();
        if label >= classes {
            return Err(DataError::Corrupt { what: "label out of range" });
        }
        out.push(&features[r * dim..(r + 1) * dim], label)?;
    }
    Ok(out)
}

/// Writes a dataset to a file.
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors.
pub fn save(dataset: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(&to_bytes(dataset))?;
    w.flush()?;
    Ok(())
}

/// Reads a dataset from a file written by [`save`].
///
/// # Errors
///
/// Returns [`DataError::Io`] on filesystem errors and
/// [`DataError::Corrupt`] on malformed content.
pub fn load(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(3, 5).unwrap();
        ds.push(&[1.5, -2.0, 3.25], 4).unwrap();
        ds.push(&[0.0, 0.5, -0.5], 0).unwrap();
        ds
    }

    #[test]
    fn roundtrip_in_memory() {
        let ds = toy();
        let bytes = to_bytes(&ds);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn roundtrip_empty_dataset() {
        let ds = Dataset::new(4, 9).unwrap();
        let back = from_bytes(&to_bytes(&ds)).unwrap();
        assert_eq!(back.len(), 0);
        assert_eq!(back.feature_dim(), 4);
        assert_eq!(back.num_classes(), 9);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&toy()).to_vec();
        bytes[0] = b'X';
        assert!(matches!(
            from_bytes(&bytes),
            Err(DataError::Corrupt { what: "bad magic" })
        ));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = to_bytes(&toy());
        assert!(from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn rejects_out_of_range_label() {
        let ds = toy();
        let mut bytes = to_bytes(&ds).to_vec();
        // Patch the first label (immediately after the feature block).
        let label_off = 24 + ds.len() * ds.feature_dim() * 4;
        bytes[label_off..label_off + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            from_bytes(&bytes),
            Err(DataError::Corrupt { what: "label out of range" })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("airchitect-data-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.aids");
        let ds = toy();
        save(&ds, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(ds, back);
        std::fs::remove_file(&path).ok();
    }
}
