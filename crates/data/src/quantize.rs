//! Per-feature transforms.
//!
//! Two front-ends feed the classifiers:
//!
//! * [`Log2Binner`] quantizes raw integer features into a small vocabulary of
//!   log2 bins — this is the "quantizing the optimization space" step
//!   (paper Sec. IV) that lets AIrchitect learn an embedding per bin,
//! * [`Normalizer`] computes per-column z-scores for the raw-feature
//!   baselines (SVC, GBDT, plain MLPs).

use serde::{Deserialize, Serialize};

use crate::Dataset;

/// Quantizes positive values into `bins_per_octave` bins per power of two.
///
/// Bin index: `round(log2(max(v, 1)) · bins_per_octave)`, clamped to the
/// vocabulary size. With the default 2 bins/octave, dimensions up to 2^31
/// map into a 64-entry vocabulary.
///
/// # Example
///
/// ```
/// use airchitect_data::quantize::Log2Binner;
///
/// let q = Log2Binner::new(2, 64);
/// assert_eq!(q.bin(1.0), 0);
/// assert_eq!(q.bin(2.0), 2);
/// assert_eq!(q.bin(4.0), 4);
/// assert!(q.bin(1e12) < 64); // clamped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Binner {
    bins_per_octave: u32,
    vocab: u32,
}

impl Log2Binner {
    /// Creates a binner with `bins_per_octave` resolution and a vocabulary
    /// of `vocab` bins.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(bins_per_octave: u32, vocab: u32) -> Self {
        assert!(bins_per_octave > 0, "bins_per_octave must be positive");
        assert!(vocab > 0, "vocab must be positive");
        Self {
            bins_per_octave,
            vocab,
        }
    }

    /// The vocabulary size (number of distinct bins).
    pub fn vocab(&self) -> u32 {
        self.vocab
    }

    /// Quantizes one value.
    ///
    /// Non-finite and sub-unit inputs are clamped to bin 0: `NaN`,
    /// `-inf`, negative values, and anything in `[0, 1)` all map to the
    /// first bin, and `+inf` maps to the last. This is a contract, not an
    /// accident — untrusted feature rows (e.g. a serve request that
    /// divided by zero upstream) must land on a valid embedding row
    /// rather than poison the lookup index.
    pub fn bin(&self, v: f32) -> u32 {
        if v.is_nan() || v < 1.0 {
            return 0;
        }
        let lg = (v as f64).log2();
        let b = (lg * self.bins_per_octave as f64).round() as u32;
        b.min(self.vocab - 1)
    }

    /// Quantizes a whole dataset in place (every column).
    pub fn apply(&self, dataset: &mut Dataset) {
        dataset.map_features(|_, v| self.bin(v) as f32);
    }
}

impl Default for Log2Binner {
    /// 2 bins per octave, 64-bin vocabulary.
    fn default() -> Self {
        Self::new(2, 64)
    }
}

/// Maximum number of bins [`pack_bins`] can pack into one `u128` key.
pub const MAX_PACKED_BINS: usize = 16;

/// Packs a tuple of per-feature bin indices into a single `u128` key,
/// 8 bits per feature, feature 0 in the low byte.
///
/// This is the memo-cache key for the quantized inference path: because
/// every feature is already a small discrete vocabulary (≤ 256 bins), the
/// entire quantized input of up to [`MAX_PACKED_BINS`] features fits in
/// one integer compare.
///
/// # Panics
///
/// Panics if `bins.len() > MAX_PACKED_BINS`.
#[inline]
pub fn pack_bins(bins: &[u8]) -> u128 {
    assert!(
        bins.len() <= MAX_PACKED_BINS,
        "pack_bins: at most {MAX_PACKED_BINS} features fit in one key"
    );
    let mut key = 0u128;
    for (i, &b) in bins.iter().enumerate() {
        key |= u128::from(b) << (8 * i);
    }
    key
}

/// Per-column z-score normalizer fit on a training set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Normalizer {
    means: Vec<f32>,
    stds: Vec<f32>,
}

impl Normalizer {
    /// Fits means and standard deviations per column.
    ///
    /// Columns with zero variance get `std = 1` so they normalize to zero
    /// rather than NaN.
    pub fn fit(dataset: &Dataset) -> Self {
        let dim = dataset.feature_dim();
        let n = dataset.len().max(1) as f64;
        let mut means = vec![0f64; dim];
        for i in 0..dataset.len() {
            for (m, &v) in means.iter_mut().zip(dataset.row(i)) {
                *m += v as f64;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0f64; dim];
        for i in 0..dataset.len() {
            for ((var, &v), &m) in vars.iter_mut().zip(dataset.row(i)).zip(&means) {
                let d = v as f64 - m;
                *var += d * d;
            }
        }
        let stds: Vec<f32> = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s as f32
                } else {
                    1.0
                }
            })
            .collect();
        Self {
            means: means.into_iter().map(|m| m as f32).collect(),
            stds,
        }
    }

    /// Normalizes a dataset in place using the fitted statistics.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature width differs from the fit width.
    pub fn apply(&self, dataset: &mut Dataset) {
        assert_eq!(
            dataset.feature_dim(),
            self.means.len(),
            "normalizer fit on a different feature width"
        );
        dataset.map_features(|col, v| (v - self.means[col]) / self.stds[col]);
    }

    /// Normalizes a single row out of place.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binner_is_monotone() {
        let q = Log2Binner::default();
        let mut prev = 0;
        for v in [1.0f32, 2.0, 3.0, 8.0, 100.0, 4096.0] {
            let b = q.bin(v);
            assert!(b >= prev, "binning must be monotone");
            prev = b;
        }
    }

    #[test]
    fn binner_clamps_to_vocab() {
        let q = Log2Binner::new(4, 8);
        assert_eq!(q.bin(f32::MAX), 7);
        assert_eq!(q.bin(0.0), 0); // values below 1 clamp to bin 0
        assert_eq!(q.bin(-5.0), 0);
    }

    #[test]
    fn binner_guards_non_finite_and_negative_inputs() {
        // The clamped-to-bin-0 contract: garbage in, a *valid* index out.
        let q = Log2Binner::new(2, 64);
        assert_eq!(q.bin(f32::NAN), 0);
        assert_eq!(q.bin(-f32::NAN), 0);
        assert_eq!(q.bin(f32::NEG_INFINITY), 0);
        assert_eq!(q.bin(-1e30), 0);
        assert_eq!(q.bin(-0.0), 0);
        assert_eq!(q.bin(0.5), 0);
        assert_eq!(q.bin(f32::MIN_POSITIVE), 0);
        // +inf clamps to the *last* bin, still in-vocabulary.
        assert_eq!(q.bin(f32::INFINITY), 63);
        // The guard does not disturb ordinary values.
        assert_eq!(q.bin(1.0), 0);
        assert_eq!(q.bin(4.0), 4);
    }

    #[test]
    fn pack_bins_is_positional_and_injective_per_slot() {
        assert_eq!(pack_bins(&[]), 0);
        assert_eq!(pack_bins(&[7]), 7);
        assert_eq!(pack_bins(&[1, 2]), 0x0201);
        assert_eq!(pack_bins(&[0, 0, 255]), 0xFF0000);
        // Distinct tuples of the same arity get distinct keys.
        assert_ne!(pack_bins(&[1, 2, 3]), pack_bins(&[3, 2, 1]));
        // 16 features (the CS3 case is 12) fill the key exactly.
        let full = [0xABu8; 16];
        assert_eq!(pack_bins(&full), u128::from_le_bytes(full));
    }

    #[test]
    #[should_panic(expected = "at most 16 features")]
    fn pack_bins_rejects_oversized_tuples() {
        let _ = pack_bins(&[0u8; 17]);
    }

    #[test]
    fn binner_applies_to_dataset() {
        let mut ds = Dataset::new(2, 2).unwrap();
        ds.push(&[1.0, 1024.0], 0).unwrap();
        let q = Log2Binner::new(1, 32);
        q.apply(&mut ds);
        assert_eq!(ds.row(0), &[0.0, 10.0]);
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let mut ds = Dataset::new(1, 2).unwrap();
        for v in [2.0f32, 4.0, 6.0, 8.0] {
            ds.push(&[v], 0).unwrap();
        }
        let nz = Normalizer::fit(&ds);
        nz.apply(&mut ds);
        let mean: f32 = ds.features().iter().sum::<f32>() / 4.0;
        let var: f32 = ds.features().iter().map(|v| v * v).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-5);
    }

    #[test]
    fn normalizer_handles_constant_column() {
        let mut ds = Dataset::new(1, 2).unwrap();
        for _ in 0..3 {
            ds.push(&[5.0], 0).unwrap();
        }
        let nz = Normalizer::fit(&ds);
        nz.apply(&mut ds);
        assert!(ds.features().iter().all(|v| v.abs() < 1e-6));
    }

    #[test]
    fn transform_row_matches_apply() {
        let mut ds = Dataset::new(2, 2).unwrap();
        ds.push(&[1.0, 10.0], 0).unwrap();
        ds.push(&[3.0, 30.0], 1).unwrap();
        let nz = Normalizer::fit(&ds);
        let row = nz.transform_row(&[1.0, 10.0]);
        let mut copy = ds.clone();
        nz.apply(&mut copy);
        assert_eq!(row.as_slice(), copy.row(0));
    }
}
