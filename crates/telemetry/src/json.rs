//! Minimal JSON support: string escaping for the writer side and a
//! recursive-descent parser for the `report` side.
//!
//! The workspace deliberately carries no serde_json; telemetry lines are a
//! flat, known schema, so ~200 lines of hand-rolled JSON keep the crate
//! dependency-free.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers as f64; telemetry counters stay below 2^53.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object-member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Append `s` to `out` as a quoted, escaped JSON string.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON-legal float (`null` for non-finite values).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Parse one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_telemetry_line() {
        let v = parse(r#"{"v":1,"type":"span","name":"train.epoch","dur_us":42,"fields":{"loss":0.5,"tag":"a\nb"},"buckets":[1,2,3],"ok":true,"none":null}"#)
            .unwrap();
        assert_eq!(v.get("v").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("name").and_then(Value::as_str), Some("train.epoch"));
        assert_eq!(
            v.get("fields").and_then(|f| f.get("loss")).and_then(Value::as_f64),
            Some(0.5)
        );
        assert_eq!(
            v.get("fields").and_then(|f| f.get("tag")).and_then(Value::as_str),
            Some("a\nb")
        );
        assert_eq!(v.get("buckets").and_then(Value::as_arr).unwrap().len(), 3);
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trip() {
        let original = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode✓";
        let mut line = String::from("{\"s\":");
        write_escaped(&mut line, original);
        line.push('}');
        let v = parse(&line).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut s = String::new();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
    }
}
