//! RAII wall-clock spans with per-thread nesting and global aggregation.
//!
//! A [`Span`] is cheap enough for coarse phases (data generation, epochs,
//! evaluation, checkpoints) but deliberately not for per-batch work: its
//! close path takes a mutex and may format a JSONL event. Per-batch timing
//! belongs in a [`crate::metrics::Histogram`].
//!
//! When telemetry is disabled, [`Span::enter`] reads one atomic and
//! constructs an inert guard — no clock read, no thread-local access, no
//! allocation (`Vec::new` does not allocate).

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{enabled, sink};

/// A field value attached to a span event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Field {
    U64(u64),
    F64(f64),
    Str(&'static str),
}

/// Aggregate wall-clock statistics for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanAggregate {
    pub count: u64,
    pub total_us: u64,
    pub min_us: u64,
    pub max_us: u64,
}

/// Global span-aggregate table. Span names are a small closed set, so a
/// linear scan under a mutex beats hashing; the lock is only taken on span
/// close, never per batch.
static AGGREGATES: Mutex<Vec<(&'static str, SpanAggregate)>> = Mutex::new(Vec::new());

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Current nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Small dense id for event attribution (`ThreadId` has no stable
    /// integer accessor).
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// An open span. Closes (aggregates + emits) on drop.
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
    fields: Vec<(&'static str, Field)>,
}

impl Span {
    /// Open a span. Inert (and free) when telemetry is disabled.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span {
                name,
                start: None,
                depth: 0,
                fields: Vec::new(),
            };
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            name,
            start: Some(Instant::now()),
            depth,
            fields: Vec::new(),
        }
    }

    /// Attach an integer field to the closing event.
    pub fn field_u64(&mut self, key: &'static str, v: u64) {
        if self.start.is_some() {
            self.fields.push((key, Field::U64(v)));
        }
    }

    /// Attach a float field to the closing event.
    pub fn field_f64(&mut self, key: &'static str, v: f64) {
        if self.start.is_some() {
            self.fields.push((key, Field::F64(v)));
        }
    }

    /// Attach a static string field to the closing event.
    pub fn field_str(&mut self, key: &'static str, v: &'static str) {
        if self.start.is_some() {
            self.fields.push((key, Field::Str(v)));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start.take() else {
            return;
        };
        let dur_us = start.elapsed().as_micros() as u64;
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));

        {
            let mut table = AGGREGATES.lock().unwrap_or_else(|e| e.into_inner());
            match table.iter_mut().find(|(n, _)| *n == self.name) {
                Some((_, agg)) => {
                    agg.count += 1;
                    agg.total_us += dur_us;
                    agg.min_us = agg.min_us.min(dur_us);
                    agg.max_us = agg.max_us.max(dur_us);
                }
                None => table.push((
                    self.name,
                    SpanAggregate {
                        count: 1,
                        total_us: dur_us,
                        min_us: dur_us,
                        max_us: dur_us,
                    },
                )),
            }
        }

        let tid = THREAD_ID.with(|t| *t);
        sink::emit_span(self.name, start, dur_us, self.depth, tid, &self.fields);
    }
}

/// Copy of the aggregate table, sorted by span name for determinism.
pub fn aggregates() -> Vec<(&'static str, SpanAggregate)> {
    let mut v = AGGREGATES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    v.sort_by_key(|(n, _)| *n);
    v
}

pub(crate) fn reset_aggregates() {
    AGGREGATES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_aggregate() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        {
            let _outer = Span::enter("test.outer");
            let _inner = Span::enter("test.inner");
        }
        {
            let _outer = Span::enter("test.outer");
        }
        let aggs = aggregates();
        let outer = aggs.iter().find(|(n, _)| *n == "test.outer").unwrap().1;
        let inner = aggs.iter().find(|(n, _)| *n == "test.inner").unwrap().1;
        assert_eq!(outer.count, 2);
        assert_eq!(inner.count, 1);
        assert!(outer.min_us <= outer.max_us);
        assert_eq!(DEPTH.with(|d| d.get()), 0, "depth must unwind to zero");
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _g = crate::test_guard();
        crate::disable();
        crate::reset();
        {
            let mut s = Span::enter("test.disabled");
            s.field_u64("k", 1);
        }
        assert!(aggregates().is_empty());
    }
}
