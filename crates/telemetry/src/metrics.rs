//! Atomic metric primitives and the fixed registry of well-known metrics.
//!
//! All metrics are `static` instances declared here so that (a) every crate
//! records into the same cells without registration plumbing and (b) the
//! registry is a constant list that [`snapshot`] can walk without locking.
//! Recording is a relaxed-load enabled check followed by at most a couple
//! of relaxed RMW operations: lock-free, allocation-free, and a no-op when
//! telemetry is disabled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::enabled;

/// Number of power-of-two latency buckets kept per histogram.
pub const HIST_BUCKETS: usize = 32;

/// Monotonic event counter.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Add `n` events. Free when telemetry is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-write-wins scalar. Stores `f64` bits in an `AtomicU64`; `NaN`
/// means "never set" and is skipped by [`snapshot`].
pub struct Gauge {
    name: &'static str,
    bits: AtomicU64,
}

const GAUGE_UNSET: u64 = f64::NAN.to_bits();

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            bits: AtomicU64::new(GAUGE_UNSET),
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Record the latest value. Free when telemetry is disabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// `None` until the first `set` while enabled.
    pub fn get(&self) -> Option<f64> {
        let v = f64::from_bits(self.bits.load(Ordering::Relaxed));
        if v.is_nan() {
            None
        } else {
            Some(v)
        }
    }

    fn reset(&self) {
        self.bits.store(GAUGE_UNSET, Ordering::Relaxed);
    }
}

/// Lock-free histogram over `u64` samples (microseconds by convention).
///
/// Tracks count/sum/min/max plus power-of-two buckets: bucket `i` counts
/// samples whose bit length is `i` (bucket 0 holds zeros, the last bucket
/// absorbs everything ≥ 2^30).
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [ZERO; HIST_BUCKETS],
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Index of the power-of-two bucket for `v`.
    #[inline]
    fn bucket(v: u64) -> usize {
        ((u64::BITS - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }

    /// Record one sample. Free when telemetry is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Start a wall-clock timer whose drop records elapsed microseconds.
    ///
    /// When telemetry is disabled the guard holds no timestamp and drop is
    /// a no-op — no clock read, no atomics.
    #[inline]
    pub fn start_timer(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: if enabled() { Some(Instant::now()) } else { None },
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// RAII timer from [`Histogram::start_timer`].
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for HistTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.hist.record(start.elapsed().as_micros() as u64);
        }
    }
}

/// Point-in-time copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Well-known metrics. Declared centrally so the registry is a const list.
// ---------------------------------------------------------------------------

/// Analytical simulator evaluations (`runtime_cycles` calls).
pub static SIM_EVALS: Counter = Counter::new("sim.evals");
/// Exhaustive/heuristic searches launched.
pub static DSE_SEARCHES: Counter = Counter::new("dse.searches");
/// Design points visited across all searches.
pub static DSE_SEARCH_POINTS: Counter = Counter::new("dse.search_points");
/// Dataset-generation shards completed (fresh or retried).
pub static DSE_SHARDS_COMPLETED: Counter = Counter::new("dse.shards_completed");
/// Panic-isolated shard retries.
pub static DSE_SHARD_RETRIES: Counter = Counter::new("dse.shard_retries");
/// Shards skipped because a checkpointed artifact was reused.
pub static DSE_SHARDS_RESUMED: Counter = Counter::new("dse.shards_resumed");
/// Mini-batches processed by the trainer.
pub static TRAIN_BATCHES: Counter = Counter::new("train.batches");
/// Epochs completed by the trainer.
pub static TRAIN_EPOCHS: Counter = Counter::new("train.epochs");
/// Single-row inference queries answered.
pub static INFER_QUERIES: Counter = Counter::new("infer.queries");
/// Checkpoints written.
pub static CHECKPOINT_SAVES: Counter = Counter::new("checkpoint.saves");
/// GEMM micro-kernel blocks dispatched to the AVX2+FMA path.
pub static GEMM_DISPATCH_AVX2: Counter = Counter::new("gemm.kernel_dispatch.avx2");
/// GEMM micro-kernel blocks dispatched to the portable scalar path.
pub static GEMM_DISPATCH_SCALAR: Counter = Counter::new("gemm.kernel_dispatch.scalar");
/// HTTP requests accepted by the inference server (any route).
pub static SERVE_REQUESTS: Counter = Counter::new("serve.requests");
/// Recommendation requests rejected with 429 because the queue was full.
pub static SERVE_REJECTED: Counter = Counter::new("serve.rejected");
/// Recommendation responses served from the LRU cache.
pub static SERVE_CACHE_HITS: Counter = Counter::new("serve.cache_hits");
/// Recommendation requests that missed the cache and ran inference.
pub static SERVE_CACHE_MISSES: Counter = Counter::new("serve.cache_misses");
/// Micro-batches drained from the server queue by the worker pool.
pub static SERVE_BATCHES: Counter = Counter::new("serve.batches");
/// Jobs executed inside those micro-batches.
pub static SERVE_BATCHED_JOBS: Counter = Counter::new("serve.batched_jobs");
/// Successful model hot-reloads.
pub static SERVE_RELOADS: Counter = Counter::new("serve.reloads");
/// Requests answered 504 because their end-to-end deadline expired.
pub static SERVE_DEADLINE_EXCEEDED: Counter = Counter::new("serve.deadline_exceeded");
/// Circuit-breaker transitions into the open state (any breaker).
pub static SERVE_BREAKER_OPENS: Counter = Counter::new("serve.breaker_opens");
/// Recommendations served by the exhaustive-search fallback oracle.
pub static SERVE_FALLBACKS: Counter = Counter::new("serve.fallbacks");
/// Inference executions that failed server-side (5xx-class outcomes).
pub static SERVE_INFER_FAILURES: Counter = Counter::new("serve.infer_failures");
/// Transient artifact-read errors retried by `core::persist`.
pub static PERSIST_READ_RETRIES: Counter = Counter::new("persist.read_retries");
/// Recommendation requests routed by the cluster proxy.
pub static CLUSTER_PROXY_REQUESTS: Counter = Counter::new("cluster.proxy_requests");
/// Requests retried on another replica after a failure or skip.
pub static CLUSTER_FAILOVERS: Counter = Counter::new("cluster.failovers");
/// Hedged duplicates fired after the p99-derived delay.
pub static CLUSTER_HEDGES_FIRED: Counter = Counter::new("cluster.hedges_fired");
/// Hedged requests where the duplicate answered first.
pub static CLUSTER_HEDGE_WINS: Counter = Counter::new("cluster.hedge_wins");
/// Replica child processes (re)started by the supervisor after a crash.
pub static CLUSTER_RESTARTS: Counter = Counter::new("cluster.restarts");
/// Health probes issued by the supervisor.
pub static CLUSTER_PROBES: Counter = Counter::new("cluster.probes");
/// Health probes that failed (unreachable, non-200, or injected fault).
pub static CLUSTER_PROBE_FAILURES: Counter = Counter::new("cluster.probe_failures");
/// Replicas ejected from the routing ring (degraded, unreachable, or dead).
pub static CLUSTER_EJECTIONS: Counter = Counter::new("cluster.ejections");
/// Previously ejected replicas re-admitted after consecutive healthy probes.
pub static CLUSTER_READMISSIONS: Counter = Counter::new("cluster.readmissions");
/// Int8 GEMV calls dispatched to the AVX2 kernel.
pub static QGEMV_DISPATCH_AVX2: Counter = Counter::new("qgemv.dispatch.avx2");
/// Int8 GEMV calls dispatched to the portable scalar kernel.
pub static QGEMV_DISPATCH_SCALAR: Counter = Counter::new("qgemv.dispatch.scalar");
/// Embedding-concat memo hits on the quantized inference path.
pub static QUANT_MEMO_HITS: Counter = Counter::new("quant.memo_hits");
/// Embedding-concat memo misses on the quantized inference path.
pub static QUANT_MEMO_MISSES: Counter = Counter::new("quant.memo_misses");
/// Recommendations answered inline on the single-query bypass (no queue).
pub static SERVE_BYPASS: Counter = Counter::new("serve.bypass");
/// Event-loop wakeups issued by batch workers delivering completions to
/// the evented listener (one eventfd write per empty→non-empty queue
/// transition, not one per completion).
pub static SERVE_WAKEUPS: Counter = Counter::new("serve.wakeups");
/// Admitted requests sampled into the shadow-oracle queue.
pub static SERVE_SHADOW_SAMPLED: Counter = Counter::new("serve.shadow.sampled");
/// Sampled requests dropped because the shadow queue was full (the
/// backpressure signal for shadow-pool starvation).
pub static SERVE_SHADOW_DROPPED: Counter = Counter::new("serve.shadow.dropped");
/// Misprediction-log records written by the shadow pool.
pub static SERVE_SHADOW_RECORDS: Counter = Counter::new("serve.shadow.records");
/// Shadow-scored requests where the model's top-1 disagreed with the
/// exact DSE oracle.
pub static SERVE_SHADOW_DISAGREEMENTS: Counter =
    Counter::new("serve.shadow.disagreements");
/// Candidate models staged as canaries by `/v1/reload`.
pub static SERVE_CANARY_STAGED: Counter = Counter::new("serve.canary.staged");
/// Single-query requests answered by the canary candidate (the exposure
/// counter the rollout gate bounds against the configured split).
pub static SERVE_CANARY_SAMPLES: Counter = Counter::new("serve.canary.samples");
/// Canary samples where candidate and incumbent agreed on the answer.
pub static SERVE_CANARY_AGREEMENTS: Counter = Counter::new("serve.canary.agreements");
/// Canary samples where the candidate returned a 5xx-class outcome (the
/// incumbent's answer was served instead; any such failure rolls back).
pub static SERVE_CANARY_CANDIDATE_FAILURES: Counter =
    Counter::new("serve.canary.candidate_failures");
/// Candidates promoted to incumbent after passing the canary gates.
pub static SERVE_CANARY_PROMOTIONS: Counter = Counter::new("serve.canary.promotions");
/// Candidates rolled back (gate failure, candidate error, or explicit
/// `/v1/rollback`), quarantined in the registry when one is attached.
pub static SERVE_CANARY_ROLLBACKS: Counter = Counter::new("serve.canary.rollbacks");
/// Half-open connections reaped by the header-phase deadline (slowloris
/// defense: dribbled header bytes no longer reset the clock).
pub static SERVE_SLOWLORIS_REAPED: Counter = Counter::new("serve.slowloris_reaped");
/// Rolling cluster reloads started by the router.
pub static CLUSTER_ROLLOUT_STARTED: Counter = Counter::new("cluster.rollout.started");
/// Rolling reloads where every replica promoted its canary.
pub static CLUSTER_ROLLOUT_PROMOTED: Counter = Counter::new("cluster.rollout.promoted");
/// Fleet-wide rollbacks (a replica's canary failed mid-rollout, so every
/// replica was reverted to the incumbent).
pub static CLUSTER_ROLLOUT_ROLLBACKS: Counter =
    Counter::new("cluster.rollout.rollbacks");
/// Per-replica reload attempts issued during rolling reloads.
pub static CLUSTER_ROLLOUT_REPLICA_RELOADS: Counter =
    Counter::new("cluster.rollout.replica_reloads");

/// Latest training loss.
pub static TRAIN_LOSS: Gauge = Gauge::new("train.loss");
/// Latest training accuracy.
pub static TRAIN_ACCURACY: Gauge = Gauge::new("train.accuracy");
/// CS1 inference breaker state (0 closed, 1 open, 2 half-open).
pub static SERVE_BREAKER_ARRAY: Gauge = Gauge::new("serve.breaker_state.array");
/// CS2 inference breaker state (0 closed, 1 open, 2 half-open).
pub static SERVE_BREAKER_BUFFERS: Gauge = Gauge::new("serve.breaker_state.buffers");
/// CS3 inference breaker state (0 closed, 1 open, 2 half-open).
pub static SERVE_BREAKER_SCHEDULE: Gauge = Gauge::new("serve.breaker_state.schedule");
/// Hot-reload breaker state (0 closed, 1 open, 2 half-open).
pub static SERVE_BREAKER_RELOAD: Gauge = Gauge::new("serve.breaker_state.reload");
/// Replicas currently admitted to the cluster routing ring.
pub static CLUSTER_HEALTHY_REPLICAS: Gauge = Gauge::new("cluster.healthy_replicas");
/// Live connection-thread handles held by the threaded listener (updated
/// by its timer-based reaper; absent in evented mode).
pub static SERVE_CONN_THREADS: Gauge = Gauge::new("serve.conn_threads");
/// Rolling top-1 agreement between the served model and the shadow DSE
/// oracle, in `[0, 1]` over the drift monitor's window.
pub static SERVE_SHADOW_AGREEMENT: Gauge = Gauge::new("serve.shadow.agreement");
/// Rolling mean shadow-oracle search latency, microseconds.
pub static SERVE_SHADOW_ORACLE_MEAN_US: Gauge =
    Gauge::new("serve.shadow.oracle_mean_us");
/// Whether a canary candidate is currently staged (1) or not (0).
pub static SERVE_CANARY_ACTIVE: Gauge = Gauge::new("serve.canary.active");
/// Candidate-vs-incumbent agreement over the current canary's samples.
pub static SERVE_CANARY_AGREEMENT: Gauge = Gauge::new("serve.canary.agreement");
/// Candidate p99 latency divided by incumbent p99 over the current
/// canary's samples (the latency gate compares this to the threshold).
pub static SERVE_CANARY_P99_RATIO: Gauge = Gauge::new("serve.canary.p99_ratio");
/// Replicas that have promoted the candidate in the in-flight rolling
/// reload (reset to 0 when no rollout is in progress).
pub static CLUSTER_ROLLOUT_REPLICAS_DONE: Gauge =
    Gauge::new("cluster.rollout.replicas_done");

/// Per-mini-batch wall time, microseconds.
pub static TRAIN_BATCH_US: Histogram = Histogram::new("train.batch_us");
/// Per-query inference latency, microseconds.
pub static INFER_QUERY_US: Histogram = Histogram::new("infer.query_us");
/// Checkpoint persistence latency, microseconds.
pub static CHECKPOINT_SAVE_US: Histogram = Histogram::new("checkpoint.save_us");
/// End-to-end server request latency (parse to response write), microseconds.
pub static SERVE_REQUEST_US: Histogram = Histogram::new("serve.request_us");
/// Jobs per drained micro-batch (a size distribution, not a latency).
pub static SERVE_BATCH_JOBS: Histogram = Histogram::new("serve.batch_jobs");
/// Router-observed backend round-trip latency, microseconds.
pub static CLUSTER_BACKEND_US: Histogram = Histogram::new("cluster.backend_us");
/// Exact DSE-oracle search latency per shadow-sampled request,
/// microseconds (the shadow pool's cost, never on the serving path).
pub static SERVE_SHADOW_ORACLE_US: Histogram =
    Histogram::new("serve.shadow.oracle_us");

static COUNTERS: [&Counter; 54] = [
    &SIM_EVALS,
    &DSE_SEARCHES,
    &DSE_SEARCH_POINTS,
    &DSE_SHARDS_COMPLETED,
    &DSE_SHARD_RETRIES,
    &DSE_SHARDS_RESUMED,
    &TRAIN_BATCHES,
    &TRAIN_EPOCHS,
    &INFER_QUERIES,
    &CHECKPOINT_SAVES,
    &GEMM_DISPATCH_AVX2,
    &GEMM_DISPATCH_SCALAR,
    &SERVE_REQUESTS,
    &SERVE_REJECTED,
    &SERVE_CACHE_HITS,
    &SERVE_CACHE_MISSES,
    &SERVE_BATCHES,
    &SERVE_BATCHED_JOBS,
    &SERVE_RELOADS,
    &SERVE_DEADLINE_EXCEEDED,
    &SERVE_BREAKER_OPENS,
    &SERVE_FALLBACKS,
    &SERVE_INFER_FAILURES,
    &PERSIST_READ_RETRIES,
    &CLUSTER_PROXY_REQUESTS,
    &CLUSTER_FAILOVERS,
    &CLUSTER_HEDGES_FIRED,
    &CLUSTER_HEDGE_WINS,
    &CLUSTER_RESTARTS,
    &CLUSTER_PROBES,
    &CLUSTER_PROBE_FAILURES,
    &CLUSTER_EJECTIONS,
    &CLUSTER_READMISSIONS,
    &QGEMV_DISPATCH_AVX2,
    &QGEMV_DISPATCH_SCALAR,
    &QUANT_MEMO_HITS,
    &QUANT_MEMO_MISSES,
    &SERVE_BYPASS,
    &SERVE_WAKEUPS,
    &SERVE_SHADOW_SAMPLED,
    &SERVE_SHADOW_DROPPED,
    &SERVE_SHADOW_RECORDS,
    &SERVE_SHADOW_DISAGREEMENTS,
    &SERVE_CANARY_STAGED,
    &SERVE_CANARY_SAMPLES,
    &SERVE_CANARY_AGREEMENTS,
    &SERVE_CANARY_CANDIDATE_FAILURES,
    &SERVE_CANARY_PROMOTIONS,
    &SERVE_CANARY_ROLLBACKS,
    &SERVE_SLOWLORIS_REAPED,
    &CLUSTER_ROLLOUT_STARTED,
    &CLUSTER_ROLLOUT_PROMOTED,
    &CLUSTER_ROLLOUT_ROLLBACKS,
    &CLUSTER_ROLLOUT_REPLICA_RELOADS,
];
static GAUGES: [&Gauge; 14] = [
    &TRAIN_LOSS,
    &TRAIN_ACCURACY,
    &SERVE_BREAKER_ARRAY,
    &SERVE_BREAKER_BUFFERS,
    &SERVE_BREAKER_SCHEDULE,
    &SERVE_BREAKER_RELOAD,
    &CLUSTER_HEALTHY_REPLICAS,
    &SERVE_CONN_THREADS,
    &SERVE_SHADOW_AGREEMENT,
    &SERVE_SHADOW_ORACLE_MEAN_US,
    &SERVE_CANARY_ACTIVE,
    &SERVE_CANARY_AGREEMENT,
    &SERVE_CANARY_P99_RATIO,
    &CLUSTER_ROLLOUT_REPLICAS_DONE,
];
static HISTOGRAMS: [&Histogram; 7] = [
    &TRAIN_BATCH_US,
    &INFER_QUERY_US,
    &CHECKPOINT_SAVE_US,
    &SERVE_REQUEST_US,
    &SERVE_BATCH_JOBS,
    &CLUSTER_BACKEND_US,
    &SERVE_SHADOW_ORACLE_US,
];

/// Every registered counter.
pub fn counters() -> &'static [&'static Counter] {
    &COUNTERS
}

/// Every registered gauge.
pub fn gauges() -> &'static [&'static Gauge] {
    &GAUGES
}

/// Every registered histogram.
pub fn histograms() -> &'static [&'static Histogram] {
    &HISTOGRAMS
}

/// Point-in-time copy of every *touched* metric (untouched metrics are
/// omitted so telemetry files only carry what the run exercised).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Collect the current value of every touched metric.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: counters()
            .iter()
            .filter(|c| c.get() > 0)
            .map(|c| (c.name().to_string(), c.get()))
            .collect(),
        gauges: gauges()
            .iter()
            .filter_map(|g| g.get().map(|v| (g.name().to_string(), v)))
            .collect(),
        histograms: histograms()
            .iter()
            .map(|h| (h.name(), h.snapshot()))
            .filter(|(_, s)| s.count > 0)
            .map(|(n, s)| (n.to_string(), s))
            .collect(),
    }
}

/// Zero every registered metric.
pub(crate) fn reset_all() {
    for c in counters() {
        c.reset();
    }
    for g in gauges() {
        g.reset();
    }
    for h in histograms() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_metrics_do_not_move() {
        let _g = crate::test_guard();
        crate::disable();
        crate::reset();
        SIM_EVALS.add(5);
        TRAIN_LOSS.set(1.0);
        TRAIN_BATCH_US.record(10);
        assert_eq!(SIM_EVALS.get(), 0);
        assert_eq!(TRAIN_LOSS.get(), None);
        assert_eq!(TRAIN_BATCH_US.snapshot().count, 0);
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn histogram_bucketing_and_stats() {
        let _g = crate::test_guard();
        crate::enable();
        crate::reset();
        for v in [0u64, 1, 2, 3, 900, 1 << 40] {
            INFER_QUERY_US.record(v);
        }
        let s = INFER_QUERY_US.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1 << 40);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 900
        assert_eq!(s.buckets[HIST_BUCKETS - 1], 1); // overflow bucket
        crate::disable();
        crate::reset();
    }

    #[test]
    fn timer_records_when_enabled_only() {
        let _g = crate::test_guard();
        crate::disable();
        crate::reset();
        drop(TRAIN_BATCH_US.start_timer());
        assert_eq!(TRAIN_BATCH_US.snapshot().count, 0);
        crate::enable();
        drop(TRAIN_BATCH_US.start_timer());
        assert_eq!(TRAIN_BATCH_US.snapshot().count, 1);
        crate::disable();
        crate::reset();
    }
}
