//! Size/age-based rotation for JSONL files.
//!
//! [`RotatingWriter`] owns a sequence of `<prefix>.<seq>.jsonl` segments in
//! one directory and appends whole lines to the active segment. Rotation is
//! *explicit*: callers ask [`RotatingWriter::should_rotate`] before a write
//! and call [`RotatingWriter::rotate`] themselves, which lets a wrapping log
//! append a footer line to the outgoing segment and a header line to the new
//! one (the misprediction log keeps every segment a self-contained,
//! schema-valid telemetry file this way).
//!
//! [`read_lines_tolerant`] is the matching reader: it yields only complete
//! (newline-terminated) lines and reports a torn trailing fragment — the
//! normal end state of a segment whose writer was killed mid-append —
//! instead of failing.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// When to cut over to a new segment. Zero / `None` disables that trigger.
#[derive(Debug, Clone, Copy)]
pub struct RotateConfig {
    /// Rotate before a write that would push the segment past this size.
    pub max_bytes: u64,
    /// Rotate once the active segment has been open this long.
    pub max_age: Option<Duration>,
}

impl Default for RotateConfig {
    fn default() -> Self {
        RotateConfig {
            max_bytes: 64 * 1024 * 1024,
            max_age: None,
        }
    }
}

/// Line-oriented writer over a rotating sequence of segment files.
#[derive(Debug)]
pub struct RotatingWriter {
    dir: PathBuf,
    prefix: String,
    config: RotateConfig,
    out: BufWriter<File>,
    path: PathBuf,
    seq: u64,
    written: u64,
    opened: Instant,
}

impl RotatingWriter {
    /// Open segment `<prefix>.0.jsonl` in `dir` (created if missing),
    /// truncating any stale file with the same name.
    pub fn create(
        dir: &Path,
        prefix: &str,
        config: RotateConfig,
    ) -> std::io::Result<RotatingWriter> {
        std::fs::create_dir_all(dir)?;
        let seq = 0;
        let path = segment_path(dir, prefix, seq);
        let out = BufWriter::new(open_segment(&path)?);
        Ok(RotatingWriter {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            config,
            out,
            path,
            seq,
            written: 0,
            opened: Instant::now(),
        })
    }

    /// Path of the active segment.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number of the active segment.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Bytes written to the active segment so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Would appending `next_len` more bytes cross a rotation boundary?
    ///
    /// The size trigger fires only when the active segment already holds at
    /// least one line, so a single oversized record still lands somewhere
    /// instead of rotating forever.
    pub fn should_rotate(&self, next_len: usize) -> bool {
        if self.config.max_bytes > 0
            && self.written > 0
            && self.written + next_len as u64 > self.config.max_bytes
        {
            return true;
        }
        if let Some(age) = self.config.max_age {
            if self.opened.elapsed() >= age {
                return true;
            }
        }
        false
    }

    /// Append one line (a trailing newline is added) and flush it to disk.
    pub fn write_line(&mut self, line: &str) -> std::io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.written += line.len() as u64 + 1;
        Ok(())
    }

    /// Flush and close the active segment, then open the next one.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        self.out.flush()?;
        self.seq += 1;
        self.path = segment_path(&self.dir, &self.prefix, self.seq);
        self.out = BufWriter::new(open_segment(&self.path)?);
        self.written = 0;
        self.opened = Instant::now();
        Ok(())
    }

    /// Flush buffered bytes without rotating.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.out.flush()
    }
}

fn segment_path(dir: &Path, prefix: &str, seq: u64) -> PathBuf {
    dir.join(format!("{prefix}.{seq}.jsonl"))
}

fn open_segment(path: &Path) -> std::io::Result<File> {
    OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(path)
}

/// Complete lines of `path`, plus whether a torn (newline-less) trailing
/// fragment was discarded.
pub fn read_lines_tolerant(path: &Path) -> std::io::Result<(Vec<String>, bool)> {
    let mut text = String::new();
    File::open(path)?.read_to_string(&mut text)?;
    let torn = !text.is_empty() && !text.ends_with('\n');
    let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
    if torn {
        lines.pop();
    }
    Ok((lines, torn))
}

/// All `<prefix>.<seq>.jsonl` segments under `dir`, sorted by sequence
/// number. Files that do not match the naming scheme are ignored.
pub fn segments(dir: &Path, prefix: &str) -> std::io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(prefix) else {
            continue;
        };
        let Some(mid) = rest.strip_prefix('.') else {
            continue;
        };
        let Some(seq_str) = mid.strip_suffix(".jsonl") else {
            continue;
        };
        let Ok(seq) = seq_str.parse::<u64>() else {
            continue;
        };
        found.push((seq, entry.path()));
    }
    found.sort_by_key(|(seq, _)| *seq);
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "airchitect-rotate-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn rotates_on_size_boundary() {
        let dir = temp_dir("size");
        let config = RotateConfig {
            max_bytes: 32,
            max_age: None,
        };
        let mut w = RotatingWriter::create(&dir, "log", config).unwrap();
        // Each line is 10 bytes + newline = 11 on disk.
        let line = "0123456789";
        for _ in 0..5 {
            if w.should_rotate(line.len() + 1) {
                w.rotate().unwrap();
            }
            w.write_line(line).unwrap();
        }
        // 32-byte budget holds 2 lines (22B); 3rd would hit 33 > 32.
        // 5 lines → segments of 2, 2, 1.
        let segs = segments(&dir, "log").unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[0].file_name().unwrap().to_str().unwrap(), "log.0.jsonl");
        let (lines0, torn0) = read_lines_tolerant(&segs[0]).unwrap();
        assert_eq!((lines0.len(), torn0), (2, false));
        let (lines2, _) = read_lines_tolerant(&segs[2]).unwrap();
        assert_eq!(lines2.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exact_fit_does_not_rotate() {
        let dir = temp_dir("fit");
        let config = RotateConfig {
            max_bytes: 22,
            max_age: None,
        };
        let mut w = RotatingWriter::create(&dir, "log", config).unwrap();
        let line = "0123456789";
        // Two 11-byte writes land exactly on the 22-byte budget.
        assert!(!w.should_rotate(line.len() + 1));
        w.write_line(line).unwrap();
        assert!(!w.should_rotate(line.len() + 1));
        w.write_line(line).unwrap();
        // The next write would overflow.
        assert!(w.should_rotate(line.len() + 1));
        assert_eq!(segments(&dir, "log").unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_first_line_still_lands() {
        let dir = temp_dir("oversize");
        let config = RotateConfig {
            max_bytes: 4,
            max_age: None,
        };
        let mut w = RotatingWriter::create(&dir, "log", config).unwrap();
        // An empty segment never asks for rotation, however large the line.
        assert!(!w.should_rotate(100));
        w.write_line("way-over-budget").unwrap();
        assert!(w.should_rotate(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotates_on_age() {
        let dir = temp_dir("age");
        let config = RotateConfig {
            max_bytes: 0,
            max_age: Some(Duration::from_millis(0)),
        };
        let mut w = RotatingWriter::create(&dir, "log", config).unwrap();
        w.write_line("a").unwrap();
        assert!(w.should_rotate(2));
        w.rotate().unwrap();
        assert_eq!(w.seq(), 1);
        w.write_line("b").unwrap();
        assert_eq!(segments(&dir, "log").unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tolerant_reader_flags_torn_final_line() {
        let dir = temp_dir("torn");
        let path = dir.join("log.0.jsonl");
        std::fs::write(&path, "complete line 1\ncomplete line 2\ntorn frag").unwrap();
        let (lines, torn) = read_lines_tolerant(&path).unwrap();
        assert!(torn);
        assert_eq!(lines, vec!["complete line 1", "complete line 2"]);

        std::fs::write(&path, "complete line 1\n").unwrap();
        let (lines, torn) = read_lines_tolerant(&path).unwrap();
        assert!(!torn);
        assert_eq!(lines, vec!["complete line 1"]);

        std::fs::write(&path, "").unwrap();
        let (lines, torn) = read_lines_tolerant(&path).unwrap();
        assert!(!torn);
        assert!(lines.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_listing_ignores_foreign_files() {
        let dir = temp_dir("listing");
        std::fs::write(dir.join("log.0.jsonl"), "").unwrap();
        std::fs::write(dir.join("log.10.jsonl"), "").unwrap();
        std::fs::write(dir.join("log.2.jsonl"), "").unwrap();
        std::fs::write(dir.join("other.1.jsonl"), "").unwrap();
        std::fs::write(dir.join("log.x.jsonl"), "").unwrap();
        std::fs::write(dir.join("log.3.txt"), "").unwrap();
        let segs = segments(&dir, "log").unwrap();
        let names: Vec<&str> = segs
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap())
            .collect();
        assert_eq!(names, vec!["log.0.jsonl", "log.2.jsonl", "log.10.jsonl"]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
