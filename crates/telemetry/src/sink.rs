//! Global JSON-lines sink with a versioned schema.
//!
//! One sink per process, guarded by a mutex that is only contended at
//! span/event granularity (coarse phases), never per batch. The file is a
//! sequence of self-describing lines:
//!
//! ```text
//! {"v":1,"type":"meta","schema":"airchitect.telemetry","schema_version":1,"command":"train"}
//! {"v":1,"type":"span","name":"train.epoch","t_us":1201,"dur_us":833,"depth":1,"tid":0,"fields":{"epoch":0,"loss":1.2}}
//! {"v":1,"type":"event","name":"dse.shard_retry","t_us":90,"fields":{"shard":3,"attempt":1}}
//! {"v":1,"type":"counter","name":"sim.evals","value":4096}
//! {"v":1,"type":"gauge","name":"train.loss","value":0.12}
//! {"v":1,"type":"hist","name":"train.batch_us","count":10,"sum":950,"min":80,"max":120,"buckets":[...]}
//! {"v":1,"type":"end","events":14}
//! ```
//!
//! [`close`] appends a snapshot of every touched metric, so the file alone
//! reconstructs the run's registry.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{write_escaped, write_f64};
use crate::metrics;
use crate::span::Field;
use crate::{SCHEMA_NAME, SCHEMA_VERSION};

struct SinkInner {
    out: BufWriter<File>,
    path: PathBuf,
    epoch: Instant,
    events: u64,
}

static SINK: Mutex<Option<SinkInner>> = Mutex::new(None);

/// Open the process-wide sink, truncating `path`, and write the meta line.
/// Replaces any previously open sink without closing it.
pub fn open(path: &Path, command: &str) -> io::Result<()> {
    let mut out = BufWriter::new(File::create(path)?);
    let mut line = String::with_capacity(128);
    let _ = write!(
        line,
        r#"{{"v":{SCHEMA_VERSION},"type":"meta","schema":"{SCHEMA_NAME}","schema_version":{SCHEMA_VERSION},"command":"#
    );
    write_escaped(&mut line, command);
    line.push('}');
    writeln!(out, "{line}")?;
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = Some(SinkInner {
        out,
        path: path.to_path_buf(),
        epoch: Instant::now(),
        events: 0,
    });
    Ok(())
}

/// Whether a sink is currently open.
pub fn is_open() -> bool {
    SINK.lock().unwrap_or_else(|e| e.into_inner()).is_some()
}

/// Flush the sink: append a snapshot of every touched metric plus the end
/// line, then close the file. Returns the sink path, or `None` if no sink
/// was open.
pub fn close() -> io::Result<Option<PathBuf>> {
    let Some(mut inner) = SINK.lock().unwrap_or_else(|e| e.into_inner()).take() else {
        return Ok(None);
    };
    let snap = metrics::snapshot();
    let mut line = String::with_capacity(256);
    for (name, value) in &snap.counters {
        line.clear();
        let _ = write!(line, r#"{{"v":{SCHEMA_VERSION},"type":"counter","name":"#);
        write_escaped(&mut line, name);
        let _ = write!(line, r#","value":{value}}}"#);
        writeln!(inner.out, "{line}")?;
    }
    for (name, value) in &snap.gauges {
        line.clear();
        let _ = write!(line, r#"{{"v":{SCHEMA_VERSION},"type":"gauge","name":"#);
        write_escaped(&mut line, name);
        line.push_str(",\"value\":");
        write_f64(&mut line, *value);
        line.push('}');
        writeln!(inner.out, "{line}")?;
    }
    for (name, h) in &snap.histograms {
        line.clear();
        let _ = write!(line, r#"{{"v":{SCHEMA_VERSION},"type":"hist","name":"#);
        write_escaped(&mut line, name);
        let _ = write!(
            line,
            r#","count":{},"sum":{},"min":{},"max":{},"buckets":["#,
            h.count, h.sum, h.min, h.max
        );
        for (i, b) in h.buckets.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{b}");
        }
        line.push_str("]}");
        writeln!(inner.out, "{line}")?;
    }
    writeln!(
        inner.out,
        r#"{{"v":{SCHEMA_VERSION},"type":"end","events":{}}}"#,
        inner.events
    )?;
    inner.out.flush()?;
    Ok(Some(inner.path))
}

fn write_fields(line: &mut String, fields: &[(&'static str, Field)]) {
    if fields.is_empty() {
        return;
    }
    line.push_str(",\"fields\":{");
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        write_escaped(line, key);
        line.push(':');
        match value {
            Field::U64(v) => {
                let _ = write!(line, "{v}");
            }
            Field::F64(v) => write_f64(line, *v),
            Field::Str(s) => write_escaped(line, s),
        }
    }
    line.push('}');
}

/// Emit one span-close line. Called from `Span::drop`; a no-op without an
/// open sink.
pub(crate) fn emit_span(
    name: &'static str,
    start: Instant,
    dur_us: u64,
    depth: u32,
    tid: u64,
    fields: &[(&'static str, Field)],
) {
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let Some(inner) = guard.as_mut() else {
        return;
    };
    let t_us = start
        .checked_duration_since(inner.epoch)
        .map_or(0, |d| d.as_micros() as u64);
    let mut line = String::with_capacity(160);
    let _ = write!(line, r#"{{"v":{SCHEMA_VERSION},"type":"span","name":"#);
    write_escaped(&mut line, name);
    let _ = write!(
        line,
        r#","t_us":{t_us},"dur_us":{dur_us},"depth":{depth},"tid":{tid}"#
    );
    write_fields(&mut line, fields);
    line.push('}');
    if writeln!(inner.out, "{line}").is_ok() {
        inner.events += 1;
    }
}

/// Emit a point-in-time event (e.g. a shard retry after a panic). A no-op
/// when telemetry is disabled or no sink is open.
pub fn event(name: &'static str, fields: &[(&'static str, Field)]) {
    if !crate::enabled() {
        return;
    }
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    let Some(inner) = guard.as_mut() else {
        return;
    };
    let t_us = inner.epoch.elapsed().as_micros() as u64;
    let mut line = String::with_capacity(128);
    let _ = write!(line, r#"{{"v":{SCHEMA_VERSION},"type":"event","name":"#);
    write_escaped(&mut line, name);
    let _ = write!(line, r#","t_us":{t_us}"#);
    write_fields(&mut line, fields);
    line.push('}');
    if writeln!(inner.out, "{line}").is_ok() {
        inner.events += 1;
    }
}
