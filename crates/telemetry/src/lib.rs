//! Zero-dependency observability for the AIrchitect pipeline.
//!
//! Three layers, all off by default and free when disabled:
//!
//! * **Metrics** ([`metrics`]) — a fixed registry of named counters,
//!   gauges, and histograms backed by atomics. Recording is lock-free and
//!   allocation-free, so the training hot loop can be instrumented without
//!   violating its zero-allocation guarantee.
//! * **Spans** ([`span`]) — RAII wall-clock timers with per-thread nesting
//!   depth. Every span aggregates into a thread-safe table and, when a sink
//!   is open, emits one JSONL event. Spans are for coarse phases (data
//!   generation, epochs, evaluation, checkpoints) — per-batch timing goes
//!   through a [`metrics::Histogram`] instead.
//! * **Sink** ([`sink`]) — a JSON-lines file with a versioned schema
//!   (`SCHEMA_VERSION`). [`sink::close`] appends a snapshot of every
//!   touched metric so the file alone reconstructs the run.
//!
//! The global switch is a single relaxed [`AtomicBool`]: every recording
//! site loads it first and returns immediately when telemetry is disabled.
//! No atomics are written, no locks taken, and nothing is allocated on the
//! disabled path.

pub mod json;
pub mod metrics;
pub mod report;
pub mod rotate;
pub mod sink;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};

/// Version stamped into every JSONL line as `"v"`.
pub const SCHEMA_VERSION: u64 = 1;

/// Schema identifier stamped into the meta line.
pub const SCHEMA_NAME: &str = "airchitect.telemetry";

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry is currently recording.
///
/// This is the fast path consulted by every instrumentation site; a single
/// relaxed load that the branch predictor learns immediately.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn recording off. Metric values and span aggregates are retained
/// until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Zero every metric and drop all span aggregates. Test/CLI helper; not
/// intended for use while other threads are recording.
pub fn reset() {
    metrics::reset_all();
    span::reset_aggregates();
}

/// Serialises unit tests that flip the global enabled flag or reset the
/// registry; every such test must hold this guard.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
