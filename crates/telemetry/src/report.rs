//! Parse, validate, and pretty-print a telemetry JSONL file.
//!
//! [`parse_report`] is strict: every line must match the versioned schema
//! emitted by [`crate::sink`] (unknown line types, missing fields, or a
//! version mismatch are errors), so it doubles as the schema validator used
//! by tests and CI.

use std::fmt::Write as _;

use crate::json::{self, Value};
use crate::metrics::{HistogramSnapshot, HIST_BUCKETS};
use crate::span::SpanAggregate;
use crate::{SCHEMA_NAME, SCHEMA_VERSION};

/// Version of the shadow-oracle misprediction record, stamped as `"rv"` on
/// every `"type":"shadow"` line. The serve-side shadow pool writes records
/// at this version; the validator below rejects any other.
pub const SHADOW_RECORD_VERSION: u64 = 1;

/// Case names a shadow record may carry (mirroring the serve routes).
pub const SHADOW_CASES: [&str; 3] = ["array", "buffers", "schedule"];

/// Fully parsed and aggregated telemetry file.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    pub command: String,
    pub schema_version: u64,
    /// Span statistics aggregated from `span` lines, sorted by name.
    pub spans: Vec<(String, SpanAggregate)>,
    /// `event` line counts by name, sorted by name.
    pub events: Vec<(String, u64)>,
    /// Counter snapshot lines, in file order.
    pub counters: Vec<(String, u64)>,
    /// Gauge snapshot lines, in file order.
    pub gauges: Vec<(String, f64)>,
    /// Histogram snapshot lines, in file order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Shadow-oracle misprediction records seen, and how many of those
    /// disagreed with the model's answer.
    pub shadow_records: u64,
    pub shadow_disagreements: u64,
}

fn req_u64(v: &Value, key: &str, line_no: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {line_no}: missing or non-integer \"{key}\""))
}

fn req_str<'a>(v: &'a Value, key: &str, line_no: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line_no}: missing or non-string \"{key}\""))
}

/// Parse and schema-validate a telemetry file's contents.
pub fn parse_report(text: &str) -> Result<Report, String> {
    let mut command = None;
    let mut schema_version = 0;
    let mut spans: Vec<(String, SpanAggregate)> = Vec::new();
    let mut events: Vec<(String, u64)> = Vec::new();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    let mut emitted = 0u64;
    let mut shadow_records = 0u64;
    let mut shadow_disagreements = 0u64;
    let mut end: Option<u64> = None;

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        if raw.trim().is_empty() {
            continue;
        }
        if end.is_some() {
            return Err(format!("line {line_no}: content after the end line"));
        }
        let v = json::parse(raw).map_err(|e| format!("line {line_no}: {e}"))?;
        if req_u64(&v, "v", line_no)? != SCHEMA_VERSION {
            return Err(format!("line {line_no}: unsupported schema version"));
        }
        let kind = req_str(&v, "type", line_no)?;
        if kind != "meta" && command.is_none() {
            return Err(format!("line {line_no}: first line must be \"meta\""));
        }
        match kind {
            "meta" => {
                if command.is_some() {
                    return Err(format!("line {line_no}: duplicate meta line"));
                }
                if req_str(&v, "schema", line_no)? != SCHEMA_NAME {
                    return Err(format!("line {line_no}: unknown schema identifier"));
                }
                schema_version = req_u64(&v, "schema_version", line_no)?;
                command = Some(req_str(&v, "command", line_no)?.to_string());
            }
            "span" => {
                let name = req_str(&v, "name", line_no)?.to_string();
                req_u64(&v, "t_us", line_no)?;
                req_u64(&v, "depth", line_no)?;
                req_u64(&v, "tid", line_no)?;
                let dur = req_u64(&v, "dur_us", line_no)?;
                emitted += 1;
                match spans.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, agg)) => {
                        agg.count += 1;
                        agg.total_us += dur;
                        agg.min_us = agg.min_us.min(dur);
                        agg.max_us = agg.max_us.max(dur);
                    }
                    None => spans.push((
                        name,
                        SpanAggregate {
                            count: 1,
                            total_us: dur,
                            min_us: dur,
                            max_us: dur,
                        },
                    )),
                }
            }
            "event" => {
                let name = req_str(&v, "name", line_no)?.to_string();
                req_u64(&v, "t_us", line_no)?;
                emitted += 1;
                match events.iter_mut().find(|(n, _)| *n == name) {
                    Some((_, n)) => *n += 1,
                    None => events.push((name, 1)),
                }
            }
            "counter" => {
                let name = req_str(&v, "name", line_no)?.to_string();
                counters.push((name, req_u64(&v, "value", line_no)?));
            }
            "gauge" => {
                let name = req_str(&v, "name", line_no)?.to_string();
                let value = v
                    .get("value")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("line {line_no}: missing gauge value"))?;
                gauges.push((name, value));
            }
            "hist" => {
                let name = req_str(&v, "name", line_no)?.to_string();
                let buckets: Vec<u64> = v
                    .get("buckets")
                    .and_then(Value::as_arr)
                    .map(|items| items.iter().filter_map(Value::as_u64).collect())
                    .ok_or_else(|| format!("line {line_no}: missing histogram buckets"))?;
                if buckets.len() != HIST_BUCKETS {
                    return Err(format!(
                        "line {line_no}: expected {HIST_BUCKETS} buckets, got {}",
                        buckets.len()
                    ));
                }
                histograms.push((
                    name,
                    HistogramSnapshot {
                        count: req_u64(&v, "count", line_no)?,
                        sum: req_u64(&v, "sum", line_no)?,
                        min: req_u64(&v, "min", line_no)?,
                        max: req_u64(&v, "max", line_no)?,
                        buckets,
                    },
                ));
            }
            "shadow" => {
                if req_u64(&v, "rv", line_no)? != SHADOW_RECORD_VERSION {
                    return Err(format!(
                        "line {line_no}: unsupported shadow record version"
                    ));
                }
                let case = req_str(&v, "case", line_no)?;
                if !SHADOW_CASES.contains(&case) {
                    return Err(format!(
                        "line {line_no}: unknown shadow case \"{case}\""
                    ));
                }
                req_u64(&v, "model_version", line_no)?;
                let model_label = req_u64(&v, "model_label", line_no)?;
                let oracle_label = req_u64(&v, "oracle_label", line_no)?;
                req_u64(&v, "oracle_us", line_no)?;
                let features = v
                    .get("features")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| {
                        format!("line {line_no}: missing shadow features array")
                    })?;
                if features.is_empty() || features.iter().any(|f| f.as_f64().is_none())
                {
                    return Err(format!(
                        "line {line_no}: shadow features must be a non-empty \
                         numeric array"
                    ));
                }
                emitted += 1;
                shadow_records += 1;
                if model_label != oracle_label {
                    shadow_disagreements += 1;
                }
            }
            "end" => {
                let declared = req_u64(&v, "events", line_no)?;
                if declared != emitted {
                    return Err(format!(
                        "line {line_no}: end line declares {declared} events, file has {emitted}"
                    ));
                }
                end = Some(declared);
            }
            other => return Err(format!("line {line_no}: unknown line type \"{other}\"")),
        }
    }

    let command = command.ok_or("empty file: missing meta line")?;
    if end.is_none() {
        return Err("truncated file: missing end line".to_string());
    }
    // Rollout-series consistency: tallies that violate their definitional
    // invariants cannot have come from the canary state machine, so the
    // file is rejected rather than rendered.
    {
        let counter =
            |name: &str| -> Option<u64> { counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v) };
        let bounded = [
            ("serve.canary.agreements", "serve.canary.samples"),
            ("serve.canary.candidate_failures", "serve.canary.samples"),
            ("cluster.rollout.promoted", "cluster.rollout.started"),
        ];
        for (part, whole) in bounded {
            if let (Some(p), Some(w)) = (counter(part), counter(whole)) {
                if p > w {
                    return Err(format!("{part} ({p}) exceeds {whole} ({w})"));
                }
            }
        }
        for (name, value) in &gauges {
            let bad = match name.as_str() {
                "serve.canary.active" => *value != 0.0 && *value != 1.0,
                "serve.canary.agreement" => !(0.0..=1.0).contains(value),
                _ => false,
            };
            if bad {
                return Err(format!("gauge {name} out of range: {value}"));
            }
        }
    }
    spans.sort_by(|a, b| a.0.cmp(&b.0));
    events.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Report {
        command,
        schema_version,
        spans,
        events,
        counters,
        gauges,
        histograms,
        shadow_records,
        shadow_disagreements,
    })
}

/// Schema-validate a telemetry file's contents without keeping the report.
pub fn validate(text: &str) -> Result<(), String> {
    parse_report(text).map(|_| ())
}

impl Report {
    /// Human-readable rendering for the `report` subcommand.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "telemetry report — command `{}` (schema v{})",
            self.command, self.schema_version
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\nspans:");
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>12} {:>12} {:>12}",
                "name", "count", "total ms", "mean ms", "max ms"
            );
            for (name, s) in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>7} {:>12.3} {:>12.3} {:>12.3}",
                    name,
                    s.count,
                    s.total_us as f64 / 1e3,
                    s.total_us as f64 / 1e3 / s.count.max(1) as f64,
                    s.max_us as f64 / 1e3,
                );
            }
        }
        if !self.events.is_empty() {
            let _ = writeln!(out, "\nevents:");
            for (name, n) in &self.events {
                let _ = writeln!(out, "  {name:<24} {n:>7}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<24} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "\ngauges:");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<24} {v:>12.6}");
            }
        }
        if self.shadow_records > 0 {
            let _ = writeln!(
                out,
                "\nshadow oracle: {} records, {} disagreements",
                self.shadow_records, self.shadow_disagreements
            );
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms (µs):");
            let _ = writeln!(
                out,
                "  {:<24} {:>7} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "min", "max"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {:<24} {:>7} {:>10.1} {:>10} {:>10}",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let buckets: Vec<String> = (0..HIST_BUCKETS).map(|i| (i as u64 % 2).to_string()).collect();
        format!(
            concat!(
                "{{\"v\":1,\"type\":\"meta\",\"schema\":\"airchitect.telemetry\",",
                "\"schema_version\":1,\"command\":\"train\"}}\n",
                "{{\"v\":1,\"type\":\"span\",\"name\":\"train.epoch\",\"t_us\":5,",
                "\"dur_us\":100,\"depth\":1,\"tid\":0,\"fields\":{{\"epoch\":0}}}}\n",
                "{{\"v\":1,\"type\":\"span\",\"name\":\"train.epoch\",\"t_us\":110,",
                "\"dur_us\":50,\"depth\":1,\"tid\":0}}\n",
                "{{\"v\":1,\"type\":\"event\",\"name\":\"dse.shard_retry\",\"t_us\":7}}\n",
                "{{\"v\":1,\"type\":\"counter\",\"name\":\"sim.evals\",\"value\":42}}\n",
                "{{\"v\":1,\"type\":\"gauge\",\"name\":\"train.loss\",\"value\":0.25}}\n",
                "{{\"v\":1,\"type\":\"hist\",\"name\":\"train.batch_us\",\"count\":16,",
                "\"sum\":160,\"min\":1,\"max\":31,\"buckets\":[{buckets}]}}\n",
                "{{\"v\":1,\"type\":\"end\",\"events\":3}}\n",
            ),
            buckets = buckets.join(",")
        )
    }

    #[test]
    fn parses_and_aggregates_sample() {
        let r = parse_report(&sample()).unwrap();
        assert_eq!(r.command, "train");
        assert_eq!(r.spans.len(), 1);
        let (name, agg) = &r.spans[0];
        assert_eq!(name, "train.epoch");
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total_us, 150);
        assert_eq!(agg.min_us, 50);
        assert_eq!(agg.max_us, 100);
        assert_eq!(r.events, vec![("dse.shard_retry".to_string(), 1)]);
        assert_eq!(r.counters, vec![("sim.evals".to_string(), 42)]);
        assert_eq!(r.histograms[0].1.count, 16);
        let text = r.render();
        assert!(text.contains("train.epoch"));
        assert!(text.contains("sim.evals"));
    }

    fn shadow_line(extra: &str) -> String {
        format!(
            concat!(
                "{{\"v\":1,\"type\":\"shadow\",\"rv\":1,\"case\":\"array\",",
                "\"model_version\":2,\"model_label\":17,\"oracle_label\":4,",
                "\"oracle_us\":135,\"features\":[15.0,64,64,3]{extra}}}\n",
            ),
            extra = extra
        )
    }

    #[test]
    fn parses_shadow_records() {
        let meta = concat!(
            "{\"v\":1,\"type\":\"meta\",\"schema\":\"airchitect.telemetry\",",
            "\"schema_version\":1,\"command\":\"serve\"}\n",
        );
        let agree = shadow_line("").replace("\"oracle_label\":4", "\"oracle_label\":17");
        let text = format!(
            "{meta}{}{}{}",
            shadow_line(""),
            agree,
            "{\"v\":1,\"type\":\"end\",\"events\":2}\n"
        );
        let r = parse_report(&text).unwrap();
        assert_eq!(r.shadow_records, 2);
        assert_eq!(r.shadow_disagreements, 1);
        assert!(r.render().contains("shadow oracle: 2 records, 1 disagreements"));

        // Wrong record version.
        let bad = text.replace("\"rv\":1", "\"rv\":9");
        assert!(validate(&bad).unwrap_err().contains("shadow record version"));
        // Unknown case.
        let bad = text.replace("\"case\":\"array\"", "\"case\":\"mesh\"");
        assert!(validate(&bad).unwrap_err().contains("unknown shadow case"));
        // Missing field.
        let bad = text.replace("\"oracle_us\":135,", "");
        assert!(validate(&bad).is_err());
        // Non-numeric feature.
        let bad = text.replace("[15.0,64,64,3]", "[15.0,\"x\"]");
        assert!(validate(&bad).unwrap_err().contains("numeric array"));
        // Shadow lines count toward the end-line event total.
        let bad = text.replace("\"events\":2", "\"events\":0");
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn validates_rollout_series_consistency() {
        let meta = concat!(
            "{\"v\":1,\"type\":\"meta\",\"schema\":\"airchitect.telemetry\",",
            "\"schema_version\":1,\"command\":\"serve\"}\n",
        );
        let counter = |name: &str, value: u64| {
            format!("{{\"v\":1,\"type\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}\n")
        };
        let gauge = |name: &str, value: f64| {
            format!("{{\"v\":1,\"type\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}\n")
        };
        let end = "{\"v\":1,\"type\":\"end\",\"events\":0}\n";

        // A consistent canary snapshot passes.
        let good = format!(
            "{meta}{}{}{}{}{}{}{}{end}",
            counter("serve.canary.samples", 10),
            counter("serve.canary.agreements", 9),
            counter("serve.canary.candidate_failures", 1),
            counter("cluster.rollout.started", 2),
            counter("cluster.rollout.promoted", 2),
            gauge("serve.canary.active", 1.0),
            gauge("serve.canary.agreement", 0.9),
        );
        validate(&good).unwrap();

        // Agreements cannot exceed samples.
        let bad = format!(
            "{meta}{}{}{end}",
            counter("serve.canary.samples", 3),
            counter("serve.canary.agreements", 4),
        );
        assert!(validate(&bad).unwrap_err().contains("serve.canary.agreements"));

        // Candidate failures cannot exceed samples.
        let bad = format!(
            "{meta}{}{}{end}",
            counter("serve.canary.samples", 3),
            counter("serve.canary.candidate_failures", 5),
        );
        assert!(validate(&bad)
            .unwrap_err()
            .contains("serve.canary.candidate_failures"));

        // A fleet cannot promote more rollouts than it started.
        let bad = format!(
            "{meta}{}{}{end}",
            counter("cluster.rollout.started", 1),
            counter("cluster.rollout.promoted", 2),
        );
        assert!(validate(&bad).unwrap_err().contains("cluster.rollout.promoted"));

        // The canary-active gauge is boolean.
        let bad = format!("{meta}{}{end}", gauge("serve.canary.active", 0.5));
        assert!(validate(&bad).unwrap_err().contains("serve.canary.active"));

        // The agreement gauge is a rate.
        let bad = format!("{meta}{}{end}", gauge("serve.canary.agreement", 1.5));
        assert!(validate(&bad).unwrap_err().contains("serve.canary.agreement"));

        // A counter appearing without its bounding partner is fine — the
        // invariants only fire when both sides of the pair are present.
        let partial = format!("{meta}{}{end}", counter("serve.canary.agreements", 7));
        validate(&partial).unwrap();
    }

    #[test]
    fn rejects_schema_violations() {
        // Wrong version.
        assert!(validate("{\"v\":2,\"type\":\"end\",\"events\":0}").is_err());
        // Missing meta.
        assert!(validate(
            "{\"v\":1,\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n"
        )
        .is_err());
        // Unknown type.
        let bad = sample().replace("\"type\":\"event\"", "\"type\":\"mystery\"");
        assert!(validate(&bad).is_err());
        // Truncated (no end line).
        let truncated: String = sample()
            .lines()
            .take(3)
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(validate(&truncated).is_err());
        // Event count mismatch.
        let bad = sample().replace("\"events\":3", "\"events\":7");
        assert!(validate(&bad).is_err());
        // Full sample passes.
        validate(&sample()).unwrap();
    }
}
