//! Schema round-trip: everything recorded in-process must survive
//! emit → parse → aggregate and come back equal to the in-memory registry.

use std::fs;

use airchitect_telemetry as telemetry;
use telemetry::span::{Field, Span};
use telemetry::{metrics, report, sink, span};

#[test]
fn emitted_file_reconstructs_the_registry() {
    let dir = std::env::temp_dir().join(format!("airchitect-telemetry-rt-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.jsonl");

    telemetry::enable();
    telemetry::reset();
    sink::open(&path, "roundtrip-test").unwrap();

    // Exercise every metric kind plus spans and events.
    metrics::SIM_EVALS.add(1234);
    metrics::DSE_SEARCH_POINTS.add(77);
    metrics::TRAIN_LOSS.set(0.125);
    for v in [3u64, 9, 90, 1500] {
        metrics::TRAIN_BATCH_US.record(v);
    }
    {
        let mut outer = Span::enter("rt.pipeline");
        outer.field_str("case", "cs1");
        for epoch in 0..3u64 {
            let mut s = Span::enter("rt.epoch");
            s.field_u64("epoch", epoch);
            s.field_f64("loss", 1.0 / (epoch + 1) as f64);
        }
    }
    sink::event("rt.retry", &[(("shard"), Field::U64(2)), ("attempt", Field::U64(1))]);

    let in_memory_metrics = metrics::snapshot();
    let in_memory_spans = span::aggregates();
    let closed = sink::close().unwrap();
    telemetry::disable();
    assert_eq!(closed.as_deref(), Some(path.as_path()));

    let text = fs::read_to_string(&path).unwrap();
    let parsed = report::parse_report(&text).unwrap_or_else(|e| panic!("schema violation: {e}"));

    // Metric snapshot lines reconstruct the registry exactly.
    assert_eq!(parsed.command, "roundtrip-test");
    assert_eq!(parsed.schema_version, telemetry::SCHEMA_VERSION);
    assert_eq!(parsed.counters, in_memory_metrics.counters);
    assert_eq!(parsed.gauges, in_memory_metrics.gauges);
    assert_eq!(parsed.histograms, in_memory_metrics.histograms);

    // Span events aggregate back to the in-memory span table.
    let parsed_spans: Vec<(&str, _)> = parsed
        .spans
        .iter()
        .map(|(n, a)| (n.as_str(), *a))
        .collect();
    assert_eq!(parsed_spans, in_memory_spans);
    assert_eq!(parsed.events, vec![("rt.retry".to_string(), 1)]);

    fs::remove_dir_all(&dir).ok();
}
