//! RBF-kernel SVM approximated with Random Fourier Features (the paper's
//! "SVC RBF").
//!
//! Rahimi & Recht (2007): the Gaussian kernel `k(x, y) = exp(−γ‖x−y‖²)` is
//! the expectation of `cos(wᵀx + b)·cos(wᵀy + b)` under `w ~ N(0, 2γI)`,
//! `b ~ U(0, 2π)`. Mapping inputs through `D` such random features and
//! fitting a *linear* model reproduces kernel-SVC behaviour in linear time —
//! the substitution DESIGN.md documents for scikit-learn's O(n²) SVC.

use airchitect_data::quantize::Normalizer;
use airchitect_data::Dataset;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::linear_svc::{LinearSvc, LinearSvcConfig};
use crate::Classifier;

/// Hyper-parameters for [`RffSvc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RffSvcConfig {
    /// Number of random Fourier features.
    pub num_features: usize,
    /// RBF kernel width γ.
    pub gamma: f32,
    /// Linear head configuration.
    pub head: LinearSvcConfig,
    /// Feature-sampling seed.
    pub seed: u64,
}

impl Default for RffSvcConfig {
    fn default() -> Self {
        Self {
            num_features: 256,
            gamma: 0.5,
            head: LinearSvcConfig::default(),
            seed: 0,
        }
    }
}

/// RBF SVC via random Fourier features + a linear multiclass SVM head.
#[derive(Debug, Clone)]
pub struct RffSvc {
    config: RffSvcConfig,
    /// `num_features x dim` projection.
    projection: Vec<Vec<f32>>,
    /// Per-feature phase offsets.
    phases: Vec<f32>,
    head: LinearSvc,
    normalizer: Option<Normalizer>,
}

impl RffSvc {
    /// Creates an unfitted model.
    pub fn new(config: RffSvcConfig) -> Self {
        Self {
            config,
            projection: Vec::new(),
            phases: Vec::new(),
            head: LinearSvc::new(config.head),
            normalizer: None,
        }
    }

    /// Box-Muller standard normal sample.
    fn normal(rng: &mut StdRng) -> f32 {
        let u1: f32 = rng.random::<f32>().max(1e-12);
        let u2: f32 = rng.random::<f32>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    fn lift(&self, row: &[f32]) -> Vec<f32> {
        let scale = (2.0 / self.config.num_features as f32).sqrt();
        self.projection
            .iter()
            .zip(&self.phases)
            .map(|(w, &b)| {
                let mut dot = b;
                for (wi, xi) in w.iter().zip(row) {
                    dot += wi * xi;
                }
                scale * dot.cos()
            })
            .collect()
    }
}

impl Classifier for RffSvc {
    fn name(&self) -> &str {
        "SVC RBF"
    }

    fn fit(&mut self, train: &Dataset) {
        let dim = train.feature_dim();
        let normalizer = Normalizer::fit(train);
        let mut data = train.clone();
        normalizer.apply(&mut data);
        self.normalizer = Some(normalizer);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sigma = (2.0 * self.config.gamma).sqrt();
        self.projection = (0..self.config.num_features)
            .map(|_| (0..dim).map(|_| sigma * Self::normal(&mut rng)).collect())
            .collect();
        self.phases = (0..self.config.num_features)
            .map(|_| rng.random::<f32>() * 2.0 * std::f32::consts::PI)
            .collect();

        // Lift the training set and fit the linear head on it.
        let mut lifted =
            Dataset::new(self.config.num_features, data.num_classes()).expect("num_features > 0");
        for i in 0..data.len() {
            lifted
                .push(&self.lift(data.row(i)), data.label(i))
                .expect("lifted rows have the configured width");
        }
        self.head = LinearSvc::new(self.config.head);
        self.head.fit(&lifted);
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        assert!(!self.projection.is_empty(), "predict before fit");
        let row = self
            .normalizer
            .as_ref()
            .expect("fitted model has a normalizer")
            .transform_row(row);
        self.head.predict_row(&self.lift(&row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn learns_separable_blobs() {
        let ds = testutil::blobs3(300);
        let mut svc = RffSvc::new(RffSvcConfig::default());
        svc.fit(&ds);
        assert!(svc.accuracy(&ds) > 0.9, "got {}", svc.accuracy(&ds));
    }

    #[test]
    fn learns_circles_where_linear_fails() {
        // The whole point of the kernel: non-linear decision boundaries.
        let ds = testutil::circles(300);
        let mut rbf = RffSvc::new(RffSvcConfig {
            gamma: 1.0,
            head: LinearSvcConfig {
                epochs: 30,
                ..Default::default()
            },
            ..Default::default()
        });
        rbf.fit(&ds);
        assert!(rbf.accuracy(&ds) > 0.9, "rbf got {}", rbf.accuracy(&ds));
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = testutil::blobs3(60);
        let mut a = RffSvc::new(RffSvcConfig::default());
        let mut b = RffSvc::new(RffSvcConfig::default());
        a.fit(&ds);
        b.fit(&ds);
        assert_eq!(a.predict(&ds), b.predict(&ds));
    }
}
