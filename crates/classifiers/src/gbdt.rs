//! Gradient-boosted decision trees with a softmax objective (the paper's
//! "XGBoost" baseline).
//!
//! Standard multiclass boosting: each round fits one regression tree per
//! class on the softmax gradients `g = p − onehot(y)` with hessians
//! `h = p(1 − p)`, and adds its (shrunken) scores to the class margin.

use airchitect_data::Dataset;

use crate::tree::{RegressionTree, TreeConfig};
use crate::Classifier;

/// Hyper-parameters for [`Gbdt`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbdtConfig {
    /// Boosting rounds (each round fits `num_classes` trees).
    pub rounds: usize,
    /// Shrinkage (learning rate) applied to every tree's output.
    pub shrinkage: f32,
    /// Per-tree configuration.
    pub tree: TreeConfig,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        Self {
            rounds: 5,
            shrinkage: 0.3,
            tree: TreeConfig::default(),
        }
    }
}

/// Multiclass gradient-boosted trees.
#[derive(Debug, Clone)]
pub struct Gbdt {
    config: GbdtConfig,
    /// `trees[round][class]`.
    trees: Vec<Vec<RegressionTree>>,
    /// Log class priors used as the base score (so even zero rounds predict
    /// the empirical class distribution, as in xgboost's `base_score`).
    log_priors: Vec<f32>,
    num_classes: usize,
}

impl Gbdt {
    /// Creates an unfitted model.
    pub fn new(config: GbdtConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            log_priors: Vec::new(),
            num_classes: 0,
        }
    }

    /// Total number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.iter().map(|r| r.len()).sum()
    }

    fn margins(&self, row: &[f32]) -> Vec<f32> {
        let mut m = self.log_priors.clone();
        for round in &self.trees {
            for (k, tree) in round.iter().enumerate() {
                m[k] += self.config.shrinkage * tree.predict_row(row);
            }
        }
        m
    }
}

impl Classifier for Gbdt {
    fn name(&self) -> &str {
        "XGBoost"
    }

    fn fit(&mut self, train: &Dataset) {
        let n = train.len();
        let k = train.num_classes() as usize;
        self.num_classes = k;
        self.trees.clear();

        // Base score: log of the (smoothed) empirical class distribution.
        let mut counts = vec![1.0f64; k];
        for i in 0..n {
            counts[train.label(i) as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        self.log_priors = counts.iter().map(|&c| (c / total).ln() as f32).collect();

        // Running margins, n x k, updated as trees are added.
        let mut scores = vec![0.0f32; n * k];
        for i in 0..n {
            scores[i * k..(i + 1) * k].copy_from_slice(&self.log_priors);
        }
        let mut probs = vec![0.0f32; k];
        let mut grads = vec![0.0f32; n];
        let mut hessians = vec![0.0f32; n];

        for _ in 0..self.config.rounds {
            let mut round_trees = Vec::with_capacity(k);
            // Softmax probabilities for every sample under current margins.
            let mut all_probs = vec![0.0f32; n * k];
            for i in 0..n {
                let row = &scores[i * k..(i + 1) * k];
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let mut sum = 0.0f32;
                for (p, &s) in probs.iter_mut().zip(row) {
                    *p = (s - max).exp();
                    sum += *p;
                }
                for (dst, &p) in all_probs[i * k..(i + 1) * k].iter_mut().zip(&probs) {
                    *dst = p / sum;
                }
            }
            for class in 0..k {
                for i in 0..n {
                    let p = all_probs[i * k + class];
                    let y = (train.label(i) as usize == class) as u8 as f32;
                    grads[i] = p - y;
                    hessians[i] = (p * (1.0 - p)).max(1e-6);
                }
                let tree = RegressionTree::fit(train, &grads, &hessians, &self.config.tree);
                for i in 0..n {
                    scores[i * k + class] += self.config.shrinkage * tree.predict_row(train.row(i));
                }
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        assert!(!self.trees.is_empty(), "predict before fit");
        let m = self.margins(row);
        let mut best = 0usize;
        for (j, &s) in m.iter().enumerate() {
            if s > m[best] {
                best = j;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn learns_separable_blobs() {
        let ds = testutil::blobs3(300);
        let mut gbdt = Gbdt::new(GbdtConfig::default());
        gbdt.fit(&ds);
        assert!(gbdt.accuracy(&ds) > 0.95, "got {}", gbdt.accuracy(&ds));
        assert_eq!(gbdt.num_trees(), 5 * 3);
    }

    #[test]
    fn learns_circles() {
        // Trees handle non-linear boundaries natively.
        let ds = testutil::circles(300);
        let mut gbdt = Gbdt::new(GbdtConfig::default());
        gbdt.fit(&ds);
        assert!(gbdt.accuracy(&ds) > 0.9, "got {}", gbdt.accuracy(&ds));
    }

    #[test]
    fn more_rounds_do_not_hurt_train_accuracy() {
        let ds = testutil::circles(200);
        let mut small = Gbdt::new(GbdtConfig {
            rounds: 1,
            ..Default::default()
        });
        let mut large = Gbdt::new(GbdtConfig {
            rounds: 8,
            ..Default::default()
        });
        small.fit(&ds);
        large.fit(&ds);
        assert!(large.accuracy(&ds) >= small.accuracy(&ds) - 0.02);
    }

    #[test]
    fn prior_init_predicts_majority_class_with_zero_signal() {
        // Features carry no signal; labels are 80/20. With log-prior base
        // scores the model must fall back to the majority class, never worse.
        let mut ds = airchitect_data::Dataset::new(1, 2).unwrap();
        for i in 0..100 {
            ds.push(&[0.0], u32::from(i % 5 == 0)).unwrap();
        }
        let mut gbdt = Gbdt::new(GbdtConfig {
            rounds: 1,
            ..Default::default()
        });
        gbdt.fit(&ds);
        assert_eq!(gbdt.predict_row(&[0.0]), 0);
        assert!(gbdt.accuracy(&ds) >= 0.8);
    }

    #[test]
    fn deterministic() {
        let ds = testutil::blobs3(90);
        let mut a = Gbdt::new(GbdtConfig::default());
        let mut b = Gbdt::new(GbdtConfig::default());
        a.fit(&ds);
        b.fit(&ds);
        assert_eq!(a.predict(&ds), b.predict(&ds));
    }
}
