//! Baseline classifiers for the AIrchitect comparison (paper Fig. 9).
//!
//! The paper benchmarks off-the-shelf scikit-learn / xgboost / Keras models
//! against its recommendation network. This crate re-implements that model
//! zoo from scratch:
//!
//! * [`LinearSvc`] — multiclass linear SVM (Weston-Watkins hinge, SGD) —
//!   "SVC Linear",
//! * [`RffSvc`] — RBF-kernel SVM approximated with Random Fourier Features
//!   plus a linear head — "SVC RBF" (see DESIGN.md for the substitution),
//! * [`Gbdt`] — second-order gradient-boosted decision trees with a softmax
//!   objective — "XGBoost",
//! * [`mlp_zoo`] — the MLP-A/B/C/D baselines on z-scored raw features.
//!
//! All models implement the common [`Classifier`] trait so the Fig. 9
//! harness can sweep them uniformly.

#![warn(missing_docs)]

mod gbdt;
mod linear_svc;
mod rff_svc;
mod tree;

pub mod mlp_zoo;

pub use gbdt::{Gbdt, GbdtConfig};
pub use linear_svc::{LinearSvc, LinearSvcConfig};
pub use rff_svc::{RffSvc, RffSvcConfig};
pub use tree::{RegressionTree, TreeConfig};

use airchitect_data::Dataset;

/// A trainable multiclass classifier.
///
/// The trait is object-safe so harnesses can hold `Vec<Box<dyn Classifier>>`.
pub trait Classifier {
    /// A short display name (matches the paper's Fig. 9 labels).
    fn name(&self) -> &str;

    /// Fits the model to a labeled dataset.
    fn fit(&mut self, train: &Dataset);

    /// Predicts the label of one feature row.
    fn predict_row(&self, row: &[f32]) -> u32;

    /// Predicts labels for every row of a dataset.
    fn predict(&self, dataset: &Dataset) -> Vec<u32> {
        (0..dataset.len())
            .map(|i| self.predict_row(dataset.row(i)))
            .collect()
    }

    /// Classification accuracy on a labeled dataset.
    fn accuracy(&self, dataset: &Dataset) -> f64 {
        airchitect_nn::metrics::accuracy(&self.predict(dataset), dataset.labels())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use airchitect_data::Dataset;

    /// Three well-separated 2-D blobs; any sane classifier reaches ~100%.
    pub fn blobs3(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, 3).unwrap();
        let centers = [(0.0f32, 0.0f32), (5.0, 5.0), (-5.0, 5.0)];
        for i in 0..n {
            let c = i % 3;
            let (cx, cy) = centers[c];
            let jx = ((i * 7919) % 100) as f32 / 100.0 - 0.5;
            let jy = ((i * 104729) % 100) as f32 / 100.0 - 0.5;
            ds.push(&[cx + jx, cy + jy], c as u32).unwrap();
        }
        ds
    }

    /// A concentric-circles dataset: NOT linearly separable.
    pub fn circles(n: usize) -> Dataset {
        let mut ds = Dataset::new(2, 2).unwrap();
        for i in 0..n {
            let angle = i as f32 * 0.7;
            let (label, radius) = if i % 2 == 0 { (0u32, 1.0f32) } else { (1, 3.0) };
            ds.push(&[radius * angle.cos(), radius * angle.sin()], label)
                .unwrap();
        }
        ds
    }
}
