//! Multiclass linear SVM trained with SGD (the paper's "SVC Linear").
//!
//! Uses the Weston-Watkins multiclass hinge loss: for a sample with true
//! class `y`, every class `j != y` whose score violates the unit margin
//! (`s_j > s_y − 1`) pushes `w_j` away from and `w_y` toward the sample.
//! L2 regularization is applied as weight decay.

use airchitect_data::quantize::Normalizer;
use airchitect_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::Classifier;

/// Hyper-parameters for [`LinearSvc`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSvcConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 weight-decay coefficient.
    pub l2: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for LinearSvcConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 0.01,
            l2: 1e-5,
            seed: 0,
        }
    }
}

/// Multiclass linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvc {
    config: LinearSvcConfig,
    /// `num_classes x (dim + 1)` weights (last column is the bias).
    weights: Vec<Vec<f32>>,
    normalizer: Option<Normalizer>,
}

impl LinearSvc {
    /// Creates an unfitted model.
    pub fn new(config: LinearSvcConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            normalizer: None,
        }
    }

    fn scores(&self, row: &[f32]) -> Vec<f32> {
        self.weights
            .iter()
            .map(|w| {
                let mut s = w[row.len()]; // bias
                for (wi, xi) in w.iter().zip(row) {
                    s += wi * xi;
                }
                s
            })
            .collect()
    }
}

impl Classifier for LinearSvc {
    fn name(&self) -> &str {
        "SVC Linear"
    }

    fn fit(&mut self, train: &Dataset) {
        let dim = train.feature_dim();
        let classes = train.num_classes() as usize;
        let normalizer = Normalizer::fit(train);
        let mut data = train.clone();
        normalizer.apply(&mut data);
        self.normalizer = Some(normalizer);
        self.weights = vec![vec![0.0; dim + 1]; classes];

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let row = data.row(i);
                let y = data.label(i) as usize;
                let scores = self.scores(row);
                let decay = 1.0 - self.config.lr * self.config.l2;
                // Accumulate the update for the true class from every
                // violating class.
                let mut true_push = 0.0f32;
                for (j, &s) in scores.iter().enumerate() {
                    if j == y {
                        continue;
                    }
                    if s > scores[y] - 1.0 {
                        true_push += 1.0;
                        let wj = &mut self.weights[j];
                        for (w, &x) in wj.iter_mut().zip(row) {
                            *w = *w * decay - self.config.lr * x;
                        }
                        wj[dim] -= self.config.lr;
                    }
                }
                if true_push > 0.0 {
                    let wy = &mut self.weights[y];
                    for (w, &x) in wy.iter_mut().zip(row) {
                        *w = *w * decay + self.config.lr * true_push * x;
                    }
                    wy[dim] += self.config.lr * true_push;
                }
            }
        }
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        assert!(!self.weights.is_empty(), "predict before fit");
        let row = self
            .normalizer
            .as_ref()
            .expect("fitted model has a normalizer")
            .transform_row(row);
        let scores = self.scores(&row);
        let mut best = 0usize;
        for (j, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = j;
            }
        }
        best as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn learns_separable_blobs() {
        let ds = testutil::blobs3(300);
        let mut svc = LinearSvc::new(LinearSvcConfig::default());
        svc.fit(&ds);
        assert!(svc.accuracy(&ds) > 0.95, "got {}", svc.accuracy(&ds));
    }

    #[test]
    fn fails_on_circles() {
        // Sanity: a linear model cannot separate concentric circles.
        let ds = testutil::circles(200);
        let mut svc = LinearSvc::new(LinearSvcConfig::default());
        svc.fit(&ds);
        assert!(svc.accuracy(&ds) < 0.8);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = testutil::blobs3(60);
        let mut a = LinearSvc::new(LinearSvcConfig::default());
        let mut b = LinearSvc::new(LinearSvcConfig::default());
        a.fit(&ds);
        b.fit(&ds);
        assert_eq!(a.predict(&ds), b.predict(&ds));
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_before_fit_panics() {
        let svc = LinearSvc::new(LinearSvcConfig::default());
        let _ = svc.predict_row(&[0.0, 0.0]);
    }
}
