//! Regression trees with second-order (gradient/hessian) statistics — the
//! building block of the GBDT baseline, matching xgboost's formulation.

use airchitect_data::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for a single regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
    /// L2 regularization on leaf values (xgboost's λ).
    pub lambda: f32,
    /// Candidate split thresholds evaluated per feature (quantile sketch).
    pub candidates_per_feature: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 4,
            min_samples_leaf: 5,
            lambda: 1.0,
            candidates_per_feature: 16,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree mapping feature rows to scalar scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

impl RegressionTree {
    /// Fits a tree minimizing the second-order objective
    /// `Σ g_i·f(x_i) + ½ Σ h_i·f(x_i)² + ½λ‖leaf values‖²`
    /// (xgboost eq. 2): leaf value `-G/(H+λ)`, split gain
    /// `G_L²/(H_L+λ) + G_R²/(H_R+λ) − G²/(H+λ)`.
    ///
    /// # Panics
    ///
    /// Panics if `grads`/`hessians` lengths differ from the dataset length or
    /// the dataset is empty.
    pub fn fit(features: &Dataset, grads: &[f32], hessians: &[f32], config: &TreeConfig) -> Self {
        assert_eq!(grads.len(), features.len(), "one gradient per row");
        assert_eq!(hessians.len(), features.len(), "one hessian per row");
        assert!(!features.is_empty(), "cannot fit a tree on no data");
        let mut tree = Self { nodes: Vec::new() };
        let indices: Vec<usize> = (0..features.len()).collect();
        tree.build(features, grads, hessians, indices, 0, config);
        tree
    }

    /// Predicted score for one feature row.
    pub fn predict_row(&self, row: &[f32]) -> f32 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Recursively builds the subtree for `indices`; returns its node id.
    fn build(
        &mut self,
        features: &Dataset,
        grads: &[f32],
        hessians: &[f32],
        indices: Vec<usize>,
        depth: usize,
        config: &TreeConfig,
    ) -> usize {
        let g: f64 = indices.iter().map(|&i| grads[i] as f64).sum();
        let h: f64 = indices.iter().map(|&i| hessians[i] as f64).sum();
        let leaf_value = (-g / (h + config.lambda as f64)) as f32;

        let make_leaf = depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf;
        if !make_leaf {
            if let Some((feature, threshold)) =
                self.best_split(features, grads, hessians, &indices, config)
            {
                let (li, ri): (Vec<usize>, Vec<usize>) = indices
                    .iter()
                    .partition(|&&i| features.row(i)[feature] <= threshold);
                if li.len() >= config.min_samples_leaf && ri.len() >= config.min_samples_leaf {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Leaf { value: 0.0 }); // placeholder
                    let left = self.build(features, grads, hessians, li, depth + 1, config);
                    let right = self.build(features, grads, hessians, ri, depth + 1, config);
                    self.nodes[id] = Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    };
                    return id;
                }
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node::Leaf { value: leaf_value });
        id
    }

    /// Finds the gain-maximal `(feature, threshold)` over quantile-sketch
    /// candidates, or `None` if no split improves on the parent.
    fn best_split(
        &self,
        features: &Dataset,
        grads: &[f32],
        hessians: &[f32],
        indices: &[usize],
        config: &TreeConfig,
    ) -> Option<(usize, f32)> {
        let lambda = config.lambda as f64;
        let g_total: f64 = indices.iter().map(|&i| grads[i] as f64).sum();
        let h_total: f64 = indices.iter().map(|&i| hessians[i] as f64).sum();
        let parent_score = g_total * g_total / (h_total + lambda);

        let mut best: Option<(usize, f32, f64)> = None;
        for feature in 0..features.feature_dim() {
            let mut values: Vec<f32> = indices.iter().map(|&i| features.row(i)[feature]).collect();
            values.sort_unstable_by(f32::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            let step = (values.len() as f64 / (config.candidates_per_feature + 1) as f64).max(1.0);
            let mut k = step;
            while (k as usize) < values.len() {
                let threshold = values[k as usize - 1];
                let mut gl = 0f64;
                let mut hl = 0f64;
                for &i in indices {
                    if features.row(i)[feature] <= threshold {
                        gl += grads[i] as f64;
                        hl += hessians[i] as f64;
                    }
                }
                let gr = g_total - gl;
                let hr = h_total - hl;
                let gain = gl * gl / (hl + lambda) + gr * gr / (hr + lambda) - parent_score;
                if gain > 1e-9 && best.is_none_or(|(_, _, b)| gain > b) {
                    best = Some((feature, threshold, gain));
                }
                k += step;
            }
        }
        best.map(|(f, t, _)| (f, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Squared-error boosting stats for targets `y` at prediction 0:
    /// `g = -y`, `h = 1`.
    fn sq_stats(targets: &[f32]) -> (Vec<f32>, Vec<f32>) {
        (
            targets.iter().map(|&t| -t).collect(),
            vec![1.0; targets.len()],
        )
    }

    fn step_data(n: usize) -> (Dataset, Vec<f32>) {
        let mut ds = Dataset::new(1, 2).unwrap();
        let mut targets = Vec::new();
        for i in 0..n {
            let x = i as f32 / n as f32;
            ds.push(&[x], 0).unwrap();
            targets.push(if x < 0.5 { -1.0 } else { 1.0 });
        }
        (ds, targets)
    }

    #[test]
    fn fits_a_step_function() {
        let (ds, targets) = step_data(200);
        let (g, h) = sq_stats(&targets);
        let tree = RegressionTree::fit(&ds, &g, &h, &TreeConfig::default());
        // λ=1 shrinks leaves slightly; check sign and rough magnitude.
        let lo = tree.predict_row(&[0.1]);
        let hi = tree.predict_row(&[0.9]);
        assert!(lo < -0.8, "left leaf {lo}");
        assert!(hi > 0.8, "right leaf {hi}");
    }

    #[test]
    fn depth_zero_is_a_single_leaf() {
        let (ds, targets) = step_data(50);
        let (g, h) = sq_stats(&targets);
        let tree = RegressionTree::fit(
            &ds,
            &g,
            &h,
            &TreeConfig {
                max_depth: 0,
                ..Default::default()
            },
        );
        assert_eq!(tree.num_nodes(), 1);
        // Mean of ±1 is ~0 (λ shrinks it further).
        assert!(tree.predict_row(&[0.3]).abs() < 0.1);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let (ds, targets) = step_data(20);
        let (g, h) = sq_stats(&targets);
        let tree = RegressionTree::fit(
            &ds,
            &g,
            &h,
            &TreeConfig {
                min_samples_leaf: 100,
                ..Default::default()
            },
        );
        assert_eq!(tree.num_nodes(), 1, "cannot split below min leaf size");
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise; feature 1 carries the signal.
        let mut ds = Dataset::new(2, 2).unwrap();
        let mut targets = Vec::new();
        for i in 0..100 {
            let noise = ((i * 37) % 100) as f32 / 100.0;
            let signal = if i % 2 == 0 { 0.0f32 } else { 1.0 };
            ds.push(&[noise, signal], 0).unwrap();
            targets.push(if signal > 0.5 { 1.0 } else { -1.0 });
        }
        let (g, h) = sq_stats(&targets);
        let tree = RegressionTree::fit(&ds, &g, &h, &TreeConfig::default());
        assert!(tree.predict_row(&[0.5, 0.0]) < 0.0);
        assert!(tree.predict_row(&[0.5, 1.0]) > 0.0);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let mut ds = Dataset::new(1, 2).unwrap();
        for i in 0..50 {
            ds.push(&[i as f32], 0).unwrap();
        }
        let g = vec![-1.0f32; 50];
        let h = vec![1.0f32; 50];
        let tree = RegressionTree::fit(&ds, &g, &h, &TreeConfig::default());
        assert_eq!(tree.num_nodes(), 1, "no split can improve a constant");
    }
}
