//! The MLP baselines of paper Fig. 9: raw (z-scored) features through one or
//! two ReLU hidden layers.
//!
//! | name  | hidden layers |
//! |-------|---------------|
//! | MLP-A | 1 × 128       |
//! | MLP-B | 1 × 256       |
//! | MLP-C | 2 × 128       |
//! | MLP-D | 2 × 256       |

use airchitect_data::quantize::Normalizer;
use airchitect_data::Dataset;
use airchitect_nn::network::Sequential;
use airchitect_nn::train::{fit, TrainConfig};

use crate::Classifier;

/// Which MLP baseline to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MlpVariant {
    /// 1 hidden layer, 128 nodes.
    A,
    /// 1 hidden layer, 256 nodes.
    B,
    /// 2 hidden layers, 128 nodes each.
    C,
    /// 2 hidden layers, 256 nodes each.
    D,
}

impl MlpVariant {
    /// The hidden-layer widths of the variant.
    pub fn hidden(&self) -> Vec<usize> {
        match self {
            MlpVariant::A => vec![128],
            MlpVariant::B => vec![256],
            MlpVariant::C => vec![128, 128],
            MlpVariant::D => vec![256, 256],
        }
    }

    /// The paper's label for the variant.
    pub fn label(&self) -> &'static str {
        match self {
            MlpVariant::A => "MLP-A",
            MlpVariant::B => "MLP-B",
            MlpVariant::C => "MLP-C",
            MlpVariant::D => "MLP-D",
        }
    }

    /// All four variants.
    pub const ALL: [MlpVariant; 4] = [MlpVariant::A, MlpVariant::B, MlpVariant::C, MlpVariant::D];
}

/// An MLP baseline: z-score normalization plus a [`Sequential`] MLP.
#[derive(Debug, Clone)]
pub struct MlpBaseline {
    variant: MlpVariant,
    train_config: TrainConfig,
    seed: u64,
    network: Option<Sequential>,
    normalizer: Option<Normalizer>,
}

impl MlpBaseline {
    /// Creates an unfitted baseline.
    pub fn new(variant: MlpVariant, train_config: TrainConfig, seed: u64) -> Self {
        Self {
            variant,
            train_config,
            seed,
            network: None,
            normalizer: None,
        }
    }

    /// The trained network, if fitted.
    pub fn network(&self) -> Option<&Sequential> {
        self.network.as_ref()
    }
}

impl Classifier for MlpBaseline {
    fn name(&self) -> &str {
        self.variant.label()
    }

    fn fit(&mut self, train: &Dataset) {
        let normalizer = Normalizer::fit(train);
        let mut data = train.clone();
        normalizer.apply(&mut data);
        self.normalizer = Some(normalizer);
        let mut net = Sequential::mlp(
            data.feature_dim(),
            &self.variant.hidden(),
            data.num_classes() as usize,
            self.seed,
        );
        fit(&mut net, &data, None, &self.train_config).expect("validated dataset");
        self.network = Some(net);
    }

    fn predict_row(&self, row: &[f32]) -> u32 {
        let normalizer = self.normalizer.as_ref().expect("predict before fit");
        let net = self.network.as_ref().expect("predict before fit");
        net.predict_one(&normalizer.transform_row(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 15,
            batch_size: 32,
            ..Default::default()
        }
    }

    #[test]
    fn all_variants_learn_blobs() {
        let ds = testutil::blobs3(150);
        for variant in MlpVariant::ALL {
            let mut m = MlpBaseline::new(variant, quick_config(), 1);
            m.fit(&ds);
            assert!(
                m.accuracy(&ds) > 0.9,
                "{} got {}",
                variant.label(),
                m.accuracy(&ds)
            );
        }
    }

    #[test]
    fn variant_shapes() {
        assert_eq!(MlpVariant::A.hidden(), vec![128]);
        assert_eq!(MlpVariant::D.hidden(), vec![256, 256]);
        assert_eq!(MlpVariant::B.label(), "MLP-B");
    }

    #[test]
    fn learns_circles() {
        let ds = testutil::circles(300);
        let mut m = MlpBaseline::new(MlpVariant::B, quick_config(), 2);
        m.fit(&ds);
        assert!(m.accuracy(&ds) > 0.85, "got {}", m.accuracy(&ds));
    }
}
