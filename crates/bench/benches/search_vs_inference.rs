//! The paper's headline claim (Fig. 1): a trained recommendation model
//! answers an optimization query in constant time, replacing the
//! simulate-and-search loop. This bench measures both sides:
//!
//! * exhaustive search (conventional flow) per query, for each case study,
//! * one AIrchitect inference per query.
//!
//! Expected shape: inference is orders of magnitude faster than CS3 search
//! and does not grow with the output-space size.

use std::hint::black_box;

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::{Case2Problem, Case2Query};
use airchitect_dse::case3::Case3Problem;
use airchitect_workload::GemmWorkload;
use criterion::{criterion_group, criterion_main, Criterion};

fn workload() -> GemmWorkload {
    GemmWorkload::new(512, 256, 384).expect("static dims")
}

fn bench_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("search");
    g.sample_size(20);

    let p1 = Case1Problem::new(1 << 18);
    let wl = workload();
    g.bench_function("case1_search_459", |b| {
        b.iter(|| black_box(p1.search(black_box(&wl), 1 << 18)))
    });

    let p2 = Case2Problem::new();
    let q = Case2Query::from_features(&[1500.0, 512.0, 256.0, 384.0, 16.0, 16.0, 0.0, 8.0]);
    g.bench_function("case2_search_1000", |b| {
        b.iter(|| black_box(p2.search(black_box(&q))))
    });

    let p3 = Case3Problem::new();
    let wls = vec![
        GemmWorkload::new(1024, 512, 256).expect("static dims"),
        GemmWorkload::new(64, 64, 64).expect("static dims"),
        GemmWorkload::new(2048, 32, 128).expect("static dims"),
        GemmWorkload::new(196, 512, 256).expect("static dims"),
    ];
    g.bench_function("case3_search_1944", |b| {
        b.iter(|| black_box(p3.search(black_box(&wls))))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut g = c.benchmark_group("inference");

    // Untrained weights have identical latency to trained ones; no need to
    // pay training time in a latency benchmark.
    for (case, classes, feats) in [
        (
            CaseStudy::ArrayDataflow,
            459u32,
            vec![18.0, 512.0, 256.0, 384.0],
        ),
        (
            CaseStudy::BufferSizing,
            1000,
            vec![1500.0, 512.0, 256.0, 384.0, 16.0, 16.0, 0.0, 8.0],
        ),
        (
            CaseStudy::MultiArrayScheduling,
            1944,
            vec![
                1024.0, 512.0, 256.0, 64.0, 64.0, 64.0, 2048.0, 32.0, 128.0, 196.0, 512.0, 256.0,
            ],
        ),
    ] {
        let model = AirchitectModel::new(
            case,
            &AirchitectConfig {
                num_classes: classes,
                ..Default::default()
            },
        );
        g.bench_function(format!("airchitect_{classes}_labels"), |b| {
            b.iter(|| black_box(model.predict_row(black_box(&feats))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search, bench_inference);
criterion_main!(benches);
