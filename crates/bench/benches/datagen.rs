//! Cost of generating ground-truth training data with the conventional
//! search flow (paper Fig. 1a "Step 3") — the offline price AIrchitect pays
//! once per design space.

use std::hint::black_box;

use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_dse::case2::{self, Case2DatasetSpec, Case2Problem};
use airchitect_dse::case3::{self, Case3DatasetSpec, Case3Problem};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen_100_samples");
    g.sample_size(10);

    let p1 = Case1Problem::new(1 << 15);
    g.bench_function("case1", |b| {
        b.iter(|| {
            black_box(case1::generate_dataset(
                &p1,
                &Case1DatasetSpec {
                    samples: 100,
                    budget_log2_range: (5, 15),
                    seed: 0,
                },
            ))
        })
    });

    let p2 = Case2Problem::new();
    g.bench_function("case2", |b| {
        b.iter(|| {
            black_box(case2::generate_dataset(
                &p2,
                &Case2DatasetSpec {
                    samples: 100,
                    seed: 0,
                    ..Default::default()
                },
            ))
        })
    });

    let p3 = Case3Problem::new();
    g.bench_function("case3", |b| {
        b.iter(|| {
            black_box(case3::generate_dataset(
                &p3,
                &Case3DatasetSpec {
                    samples: 100,
                    seed: 0,
                },
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_datagen);
criterion_main!(benches);
