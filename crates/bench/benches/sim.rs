//! Throughput of the analytical simulator primitives — the cost of one
//! "simulation" in the conventional DSE loop.

use std::hint::black_box;

use airchitect_sim::memory::BufferConfig;
use airchitect_sim::multi::{MultiArraySystem, Schedule};
use airchitect_sim::{compute, memory, ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_sim(c: &mut Criterion) {
    let wl = GemmWorkload::new(512, 256, 384).expect("static dims");
    let arr = ArrayConfig::new(16, 32).expect("static dims");
    let bufs = BufferConfig::from_kb(300, 200, 100).expect("static sizes");

    c.bench_function("compute_runtime_cycles", |b| {
        b.iter(|| black_box(compute::runtime_cycles(black_box(&wl), arr, Dataflow::Os)))
    });

    c.bench_function("memory_stall_cycles", |b| {
        b.iter(|| {
            black_box(
                memory::stall_cycles(black_box(&wl), arr, Dataflow::Os, bufs, 8)
                    .expect("bandwidth > 0"),
            )
        })
    });

    c.bench_function("memory_dram_traffic", |b| {
        b.iter(|| {
            black_box(memory::dram_traffic(
                black_box(&wl),
                arr,
                Dataflow::Ws,
                bufs,
            ))
        })
    });

    let sys = MultiArraySystem::heterogeneous_4();
    let wls = vec![
        GemmWorkload::new(1024, 512, 256).expect("static dims"),
        GemmWorkload::new(64, 64, 64).expect("static dims"),
        GemmWorkload::new(2048, 32, 128).expect("static dims"),
        GemmWorkload::new(196, 512, 256).expect("static dims"),
    ];
    let sched = Schedule::new(&[0, 1, 2, 3], &[Dataflow::Os; 4]);
    c.bench_function("multi_array_evaluate", |b| {
        b.iter(|| {
            black_box(
                sys.evaluate(black_box(&wls), &sched)
                    .expect("valid schedule"),
            )
        })
    });
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
