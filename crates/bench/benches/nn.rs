//! Throughput of the from-scratch NN stack: AIrchitect-sized forward and
//! training steps (the paper's 16-wide embeddings, 256 hidden nodes, 459-way
//! softmax).

use std::hint::black_box;

use airchitect_nn::loss::softmax_cross_entropy;
use airchitect_nn::network::Sequential;
use airchitect_nn::optim::Optimizer;
use airchitect_tensor::Matrix;
use criterion::{criterion_group, criterion_main, Criterion};

fn batch(rows: usize, cols: usize) -> Matrix {
    let data: Vec<f32> = (0..rows * cols).map(|i| (i % 13) as f32).collect();
    Matrix::from_vec(rows, cols, data)
}

fn bench_nn(c: &mut Criterion) {
    let mut g = c.benchmark_group("nn");
    g.sample_size(20);

    let net = Sequential::embedding_mlp(4, 64, 16, 256, 459, 0);
    let single = batch(1, 4);
    g.bench_function("airchitect_forward_batch1", |b| {
        b.iter(|| black_box(net.infer(black_box(&single))))
    });

    let b256 = batch(256, 4);
    g.bench_function("airchitect_forward_batch256", |b| {
        b.iter(|| black_box(net.infer(black_box(&b256))))
    });

    let labels: Vec<u32> = (0..256).map(|i| (i % 459) as u32).collect();
    g.bench_function("airchitect_train_step_batch256", |b| {
        let mut net = Sequential::embedding_mlp(4, 64, 16, 256, 459, 0);
        let mut opt = Optimizer::adam(1e-3);
        b.iter(|| {
            let logits = net.forward(&b256, true);
            let (_, grad) = softmax_cross_entropy(&logits, &labels);
            net.backward(&grad);
            opt.step(net.params_mut());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
