//! Shared plumbing for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper:
//! it prints the series to stdout and writes a CSV under `results/` so the
//! numbers can be plotted or diffed against EXPERIMENTS.md.
//!
//! Scale: the paper's experiments ran on a GPU with multi-million-point
//! datasets; the defaults here are sized for one CPU core. Set
//! `AIRCH_SCALE` (a positive float) to multiply every sample count — e.g.
//! `AIRCH_SCALE=10 cargo run --release --bin fig9`.

#![warn(missing_docs)]

use std::fs::{self, File};
use std::io::Write;
use std::path::PathBuf;

/// Sample-count multiplier from the `AIRCH_SCALE` env var (default 1.0).
pub fn scale() -> f64 {
    std::env::var("AIRCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}

/// `base` scaled by [`scale`], at least 1.
pub fn scaled(base: usize) -> usize {
    ((base as f64 * scale()).round() as usize).max(1)
}

/// Directory where figure CSVs land (`results/` under the workspace root,
/// falling back to the current directory).
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    fs::create_dir_all(&dir).ok();
    dir
}

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench at compile time of the binaries.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

/// Writes rows as a CSV under `results/<name>.csv` and reports the path.
///
/// # Panics
///
/// Panics on I/O errors — figure binaries should fail loudly.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let path = results_dir().join(format!("{name}.csv"));
    let mut f = File::create(&path).expect("create results CSV");
    writeln!(f, "{header}").expect("write CSV header");
    for row in rows {
        writeln!(f, "{row}").expect("write CSV row");
    }
    println!("[csv] wrote {} rows to {}", rows.len(), path.display());
}

/// Prints a section banner so multi-part figures read clearly in a log.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_is_at_least_one() {
        assert!(scaled(0) >= 1);
        assert!(scaled(100) >= 1);
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("results"));
        assert!(d.exists());
    }
}
