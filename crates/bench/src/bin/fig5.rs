//! Regenerates paper Fig. 5: the frequency of optimal array shapes.
//!
//! (a-c) For 10^4 GEMM workloads at a 2^9 MAC budget, the relative frequency
//! with which each (rows, cols) shape is optimal, split by dataflow.
//! (d) For budgets 2^5..2^15, the distribution of optimal aspect ratios and
//! dataflows.
//!
//! Expected shape (paper Sec. III-A): optima cluster at square or
//! cols ≈ 2×rows shapes; every shape is optimal for at least one workload;
//! no single dataflow dominates.

use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case1::{optimal_shape_frequencies, Case1Problem};
use airchitect_workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let samples = scaled(10_000);
    let sampler = CnnWorkloadSampler::new();

    banner("Fig 5(a-c): optimal shape frequency at 2^9 MACs");
    let problem = Case1Problem::new(1 << 9);
    let mut rng = StdRng::seed_from_u64(5);
    let workloads = sampler.sample_many(samples, &mut rng);
    let freq = optimal_shape_frequencies(&problem, &workloads, 1 << 9);

    let mut rows = Vec::new();
    for ((r, c, df), n) in &freq {
        rows.push(format!(
            "{df},{r},{c},{n},{:.4}",
            *n as f64 / samples as f64
        ));
    }
    write_csv("fig5_abc", "dataflow,rows,cols,count,rel_freq", &rows);

    for df in airchitect_sim::Dataflow::ALL {
        let mut per: Vec<_> = freq.iter().filter(|((_, _, d), _)| *d == df).collect();
        per.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
        println!("\n  {df}: top optimal shapes (of {} workloads)", samples);
        for ((r, c, _), n) in per.iter().take(5) {
            println!(
                "    {r:>4} x {c:<4}  freq {:.3}",
                *n as f64 / samples as f64
            );
        }
    }

    // Paper observation 1: optima are square or wider-than-tall.
    let wide_or_square: usize = freq
        .iter()
        .filter(|((r, c, _), _)| c >= r)
        .map(|(_, n)| *n)
        .sum();
    println!(
        "\n  fraction of optima with cols >= rows: {:.3} (paper: most)",
        wide_or_square as f64 / samples as f64
    );

    banner("Fig 5(d): optimal aspect ratio / dataflow vs MAC budget");
    let sweep_samples = scaled(2_000);
    let mut rows = Vec::new();
    for budget_log2 in 5..=15u32 {
        let problem = Case1Problem::new(1 << budget_log2);
        let mut rng = StdRng::seed_from_u64(50 + budget_log2 as u64);
        let wls = sampler.sample_many(sweep_samples, &mut rng);
        let freq = optimal_shape_frequencies(&problem, &wls, 1 << budget_log2);
        // Aggregate: dataflow shares and mean log2 aspect ratio.
        let mut df_counts = [0usize; 3];
        let mut aspect_sum = 0f64;
        for ((r, c, df), n) in &freq {
            df_counts[df.index()] += n;
            aspect_sum += (*r as f64 / *c as f64).log2() * *n as f64;
        }
        let total: usize = df_counts.iter().sum();
        let mean_aspect = aspect_sum / total as f64;
        rows.push(format!(
            "{budget_log2},{:.4},{:.4},{:.4},{:.4}",
            mean_aspect,
            df_counts[0] as f64 / total as f64,
            df_counts[1] as f64 / total as f64,
            df_counts[2] as f64 / total as f64,
        ));
        println!(
            "  2^{budget_log2:<2} MACs: mean log2(rows/cols) {mean_aspect:+.2}  OS {:.2} WS {:.2} IS {:.2}",
            df_counts[0] as f64 / total as f64,
            df_counts[1] as f64 / total as f64,
            df_counts[2] as f64 / total as f64
        );
    }
    write_csv(
        "fig5_d",
        "budget_log2,mean_log2_aspect,os_share,ws_share,is_share",
        &rows,
    );
}
