//! Regenerates paper Fig. 6(g): cluster structure of optimal schedules in
//! the space of workload computation sizes.
//!
//! The paper plots three randomly-chosen schedule labels against the compute
//! size of each workload and observes clear clusters. This binary samples
//! CS3 instances, records (per-workload MACs, optimal label), and prints the
//! centroid separation of the three most frequent labels.

use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case3::{generate_dataset, Case3DatasetSpec, Case3Problem};
use std::collections::HashMap;

fn main() {
    let samples = scaled(2_000);
    let problem = Case3Problem::new();
    let ds = generate_dataset(&problem, &Case3DatasetSpec { samples, seed: 66 });

    banner("Fig 6(g): schedule clusters in workload-size space");
    let mut rows = Vec::new();
    let mut by_label: HashMap<u32, Vec<[f64; 4]>> = HashMap::new();
    for i in 0..ds.len() {
        let row = ds.row(i);
        let label = ds.label(i);
        let mut macs = [0f64; 4];
        for w in 0..4 {
            macs[w] = (row[w * 3] as f64 * row[w * 3 + 1] as f64 * row[w * 3 + 2] as f64).log2();
        }
        rows.push(format!(
            "{label},{:.2},{:.2},{:.2},{:.2}",
            macs[0], macs[1], macs[2], macs[3]
        ));
        by_label.entry(label).or_default().push(macs);
    }
    write_csv(
        "fig6_g",
        "label,log2_macs_wl0,log2_macs_wl1,log2_macs_wl2,log2_macs_wl3",
        &rows,
    );

    let mut counts: Vec<(u32, usize)> = by_label.iter().map(|(&l, v)| (l, v.len())).collect();
    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!(
        "\n  {} distinct optimal labels over {samples} instances (space: {})",
        counts.len(),
        problem.space().len()
    );
    println!("\n  top-3 labels and their centroids in log2-MACs space:");
    let mut centroids = Vec::new();
    for &(label, n) in counts.iter().take(3) {
        let pts = &by_label[&label];
        let mut c = [0f64; 4];
        for p in pts {
            for d in 0..4 {
                c[d] += p[d];
            }
        }
        for v in &mut c {
            *v /= pts.len() as f64;
        }
        let (perm, dfs) = problem.space().decode(label).expect("label in space");
        println!(
            "    label {label:>4} (n={n:>4}): centroid [{:.1}, {:.1}, {:.1}, {:.1}]  perm {perm:?} dfs {dfs:?}",
            c[0], c[1], c[2], c[3]
        );
        centroids.push(c);
    }
    if centroids.len() >= 2 {
        let mut min_sep = f64::MAX;
        for i in 0..centroids.len() {
            for j in i + 1..centroids.len() {
                let d: f64 = centroids[i]
                    .iter()
                    .zip(&centroids[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                min_sep = min_sep.min(d);
            }
        }
        println!("\n  minimum centroid separation: {min_sep:.2} (clusters are distinct when > 0)");
    }
}
