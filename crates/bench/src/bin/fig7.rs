//! Regenerates paper Fig. 7: (a) the distribution of GEMM operand
//! dimensions across popular CNNs, and (b) the combinatorial growth of the
//! scheduling space (`N = 3^x · x!`).

use airchitect_bench::{banner, write_csv};
use airchitect_dse::space::scheduling_space_size;
use airchitect_workload::distribution::log2_histogram;
use airchitect_workload::models;

fn main() {
    banner("Fig 7(a): GEMM dimension distribution of popular CNNs");
    let gemms = models::all_gemms();
    println!(
        "  {} GEMM layers across {} networks",
        gemms.len(),
        models::all_networks().len()
    );
    let ms = log2_histogram(gemms.iter().map(|(_, g)| g.m()));
    let ns = log2_histogram(gemms.iter().map(|(_, g)| g.n()));
    let ks = log2_histogram(gemms.iter().map(|(_, g)| g.k()));

    let mut rows = Vec::new();
    let max_bin = ms
        .iter()
        .chain(&ns)
        .chain(&ks)
        .map(|&(b, _)| b)
        .max()
        .unwrap_or(0);
    let lookup =
        |h: &[(u32, usize)], bin: u32| h.iter().find(|&&(b, _)| b == bin).map_or(0, |&(_, n)| n);
    println!("\n  log2(dim)   M    N    K");
    for bin in 0..=max_bin {
        let (m, n, k) = (lookup(&ms, bin), lookup(&ns, bin), lookup(&ks, bin));
        rows.push(format!("{bin},{m},{n},{k}"));
        if m + n + k > 0 {
            println!("  2^{bin:<9} {m:<4} {n:<4} {k:<4}");
        }
    }
    write_csv("fig7_a", "log2_bin,m_count,n_count,k_count", &rows);

    banner("Fig 7(b): scheduling space growth N = 3^x * x!");
    let mut rows = Vec::new();
    for x in 1..=12u32 {
        match scheduling_space_size(x) {
            Some(n) => {
                rows.push(format!("{x},{n}"));
                println!("  {x:>2} arrays: {n} schedules");
            }
            None => println!("  {x:>2} arrays: overflow (> u64)"),
        }
    }
    write_csv("fig7_b", "arrays,schedules", &rows);
    println!("\n  paper quotes: 162 for 3 arrays, 1944 for 4 arrays");
}
