//! Regenerates paper Fig. 11:
//! (a) predictions on unseen layers of real CNNs at a 2^10 MAC budget,
//! (b) test accuracy as the MAC budget (and thus the output space) scales.
//!
//! Expected shape: (a) predicted shapes/dataflows match the searched optima
//! on most layers, and the mispredicted ones stay close in runtime;
//! (b) accuracy stays high (paper: >90%) as the budget grows to 2^40 —
//! the output space grows only quadratically in the exponent
//! (3·(n−1)·n/2 labels for budget 2^n).

use airchitect::pipeline::{run_case1, PipelineConfig};
use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case1::Case1Problem;
use airchitect_workload::models;

fn main() {
    banner("Fig 11(a): predictions on unseen CNN layers at 2^10 MACs");
    let config = PipelineConfig {
        samples: scaled(20_000),
        epochs: 12,
        batch_size: 256,
        seed: 11,
        stratify: false,
        threads: 1,
    };
    let run = run_case1(&config, (5, 15));
    let problem = Case1Problem::new(1 << 15);
    let budget = 1u64 << 10;

    let mut rows = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    let mut perf_sum = 0f64;
    println!(
        "  {:<28} {:>12} {:>12} {:>6}",
        "layer", "searched", "predicted", "perf"
    );
    for net in models::all_networks() {
        for (layer, wl) in net.gemms().into_iter().take(4) {
            let truth = problem.search(&wl, budget);
            let predicted = run.model.predict_row(&Case1Problem::features(&wl, budget));
            let (ta, tdf) = problem.space().decode(truth.label).expect("in space");
            let (pa, pdf) = problem.space().decode(predicted).expect("in space");
            let perf = problem.normalized_performance(&wl, budget, predicted);
            total += 1;
            hits += (truth.label == predicted) as usize;
            perf_sum += perf;
            let name = format!("{}/{layer}", net.name);
            println!(
                "  {:<28} {:>7}:{:<4} {:>7}:{:<4} {:.3}",
                name,
                ta.to_string(),
                tdf.to_string(),
                pa.to_string(),
                pdf.to_string(),
                perf
            );
            rows.push(format!(
                "{name},{},{},{},{},{predicted},{},{perf:.4}",
                wl.m(),
                wl.n(),
                wl.k(),
                truth.label,
                truth.label == predicted,
            ));
        }
    }
    write_csv(
        "fig11_a",
        "layer,m,n,k,true_label,predicted_label,exact,normalized_perf",
        &rows,
    );
    println!(
        "\n  exact-label accuracy {:.3}, mean normalized performance {:.3}",
        hits as f64 / total as f64,
        perf_sum / total as f64
    );

    banner("Fig 11(b): accuracy vs MAC budget scale");
    // The paper trains a fresh full-size dataset per budget; the scale-free
    // way to mirror that on a laptop is to hold samples-per-label constant
    // as the output space grows (space = 3·(n−1)·n/2 labels for 2^n MACs).
    let samples_per_label = scaled(25);
    let mut rows = Vec::new();
    for budget_log2 in [10u32, 14, 18, 22, 30, 40] {
        let classes = 3 * (budget_log2 as usize - 1) * budget_log2 as usize / 2;
        let cfg = PipelineConfig {
            samples: samples_per_label * classes,
            epochs: 10,
            batch_size: 256,
            seed: 11,
            stratify: false,
            threads: 1,
        };
        let run = run_case1(&cfg, (5, budget_log2));
        println!(
            "  budget 2^{budget_log2:<2} ({classes:>4} labels, {:>6} samples): test acc {:.3}  geomean perf {:.4}",
            cfg.samples, run.test_accuracy, run.penalty.geomean
        );
        rows.push(format!(
            "{budget_log2},{classes},{},{:.4},{:.4}",
            cfg.samples, run.test_accuracy, run.penalty.geomean
        ));
    }
    write_csv(
        "fig11_b",
        "budget_log2,output_space,samples,test_accuracy,geomean_perf",
        &rows,
    );
    println!("\n  paper: >90% test accuracy up to 2^40 MAC units");
}
