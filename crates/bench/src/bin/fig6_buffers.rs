//! Regenerates paper Fig. 6(d-f): correlation of optimal buffer sizes with
//! operand sizes, interface bandwidth, and dataflow.
//!
//! Expected shape (paper Sec. III-B): the dataflow's *stationary* operand is
//! optimally given a small buffer (IS → small IFMAP buffer, WS → small
//! Filter buffer), and under the shared capacity limit the optimal OFMAP
//! buffer *shrinks* as workloads grow (inputs eat the budget).

use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case2::{generate_dataset, Case2DatasetSpec, Case2Problem, Case2Query};
use airchitect_sim::Dataflow;

fn main() {
    let samples = scaled(5_000);
    let problem = Case2Problem::new();
    let ds = generate_dataset(
        &problem,
        &Case2DatasetSpec {
            samples,
            seed: 6,
            ..Default::default()
        },
    );

    banner("Fig 6(d-f): optimal buffer sizes vs inputs");
    let mut rows = Vec::new();
    // Mean optimal buffer size per dataflow.
    let mut sums = [[0f64; 4]; 3]; // [df][ifmap, filter, ofmap, count]
                                   // OFMAP size correlation: mean ofmap buffer for small/large outputs,
                                   // conditioned on a binding capacity limit (the paper's inverse trend is
                                   // a consequence of inputs and outputs competing for scarce capacity).
    let mut ofmap_small = (0f64, 0usize);
    let mut ofmap_large = (0f64, 0usize);
    const BINDING_LIMIT_KB: u64 = 700;
    for i in 0..ds.len() {
        let q = Case2Query::from_features(ds.row(i));
        let (ikb, fkb, okb) = problem.space().decode(ds.label(i)).expect("label in space");
        rows.push(format!(
            "{},{},{},{},{},{},{ikb},{fkb},{okb}",
            q.dataflow,
            q.workload.m(),
            q.workload.n(),
            q.workload.k(),
            q.bandwidth,
            q.limit_kb,
        ));
        let s = &mut sums[q.dataflow.index()];
        s[0] += ikb as f64;
        s[1] += fkb as f64;
        s[2] += okb as f64;
        s[3] += 1.0;
        if q.limit_kb <= BINDING_LIMIT_KB {
            let out_elems = q.workload.ofmap_elems();
            if out_elems < 100_000 {
                ofmap_small.0 += okb as f64;
                ofmap_small.1 += 1;
            } else {
                ofmap_large.0 += okb as f64;
                ofmap_large.1 += 1;
            }
        }
    }
    write_csv(
        "fig6_def",
        "dataflow,m,n,k,bandwidth,limit_kb,ifmap_kb,filter_kb,ofmap_kb",
        &rows,
    );

    println!("\n  mean optimal buffer size (KB) per dataflow:");
    println!(
        "  {:<4} {:>9} {:>10} {:>9}",
        "df", "IFMAP", "Filter", "OFMAP"
    );
    for df in Dataflow::ALL {
        let s = &sums[df.index()];
        if s[3] == 0.0 {
            continue;
        }
        println!(
            "  {df:<4} {:>9.0} {:>10.0} {:>9.0}",
            s[0] / s[3],
            s[1] / s[3],
            s[2] / s[3]
        );
    }
    println!("\n  expected: WS row has the smallest Filter mean (stationary);");
    println!("  IS row has the smallest IFMAP mean (stationary).");

    if ofmap_small.1 > 0 && ofmap_large.1 > 0 {
        println!("\n  mean OFMAP buffer under binding limits (<= {BINDING_LIMIT_KB} KB total):");
        println!(
            "    small outputs {:.0} KB vs large outputs {:.0} KB",
            ofmap_small.0 / ofmap_small.1 as f64,
            ofmap_large.0 / ofmap_large.1 as f64
        );
        println!("  expected (counter-intuitive, Fig 6f): larger outputs -> smaller OFMAP");
        println!("  buffer, because larger workloads pull scarce capacity to the inputs");
    }
}
