//! Regenerates paper Fig. 10(g-h): the misprediction penalty — normalized
//! performance of the predicted configurations on the test set.
//!
//! Expected shape: only a few points are catastrophic (<20% of optimal);
//! most mispredictions cost 10-15%; the geometric mean lands near 1.0
//! (paper: 99.99% for CS1, 99.1% for CS3).

use airchitect::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};
use airchitect_bench::{banner, scaled, write_csv};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let config = PipelineConfig {
        samples: scaled(20_000),
        epochs: 12,
        batch_size: 256,
        seed: 10,
        stratify: false,
        threads: 1,
    };

    banner("Fig 10(g-h): misprediction penalty");
    let runs = [
        ("case1", run_case1(&config, (5, 15))),
        ("case2", run_case2(&config)),
        (
            "case3",
            run_case3(&PipelineConfig {
                samples: scaled(4_000),
                ..config
            }),
        ),
    ];

    for (tag, run) in &runs {
        let curve = run.penalty.sorted_curve();
        let rows: Vec<String> = curve
            .iter()
            .enumerate()
            .map(|(i, p)| format!("{i},{p:.5}"))
            .collect();
        write_csv(
            &format!("fig10_penalty_{tag}"),
            "rank,normalized_perf",
            &rows,
        );

        println!("\n  {tag} ({}):", run.case.name());
        println!("    test accuracy          {:.3}", run.penalty.accuracy);
        println!(
            "    geomean performance    {:.4}  (paper CS1: 0.9999, CS3: 0.991)",
            run.penalty.geomean
        );
        println!(
            "    catastrophic (<20%)    {:.4}  (paper: 'only a few data points')",
            run.penalty.catastrophic_fraction
        );
        println!(
            "    percentiles p1/p10/p50 {:.3} / {:.3} / {:.3}",
            percentile(&curve, 0.01),
            percentile(&curve, 0.10),
            percentile(&curve, 0.50)
        );
    }
}
