//! Regenerates paper Fig. 10(d-f): the distribution of actual vs predicted
//! config IDs on the held-out test set.
//!
//! Expected shape: the predicted distribution tracks the actual one on the
//! high-frequency configs and ignores the rare tail as statistical noise
//! (the paper's robustness argument).

use airchitect::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};
use airchitect_bench::{banner, scaled, write_csv};

fn main() {
    let config = PipelineConfig {
        samples: scaled(20_000),
        epochs: 12,
        batch_size: 256,
        seed: 10,
        stratify: false,
        threads: 1,
    };

    banner("Fig 10(d-f): actual vs predicted label distributions");
    let runs = [
        ("case1", run_case1(&config, (5, 15))),
        ("case2", run_case2(&config)),
        (
            "case3",
            run_case3(&PipelineConfig {
                samples: scaled(4_000),
                ..config
            }),
        ),
    ];

    for (tag, run) in &runs {
        let (actual, predicted) = &run.label_distributions;
        let mut rows = Vec::new();
        for (label, (&a, &p)) in actual.iter().zip(predicted).enumerate() {
            if a + p > 0 {
                rows.push(format!("{label},{a},{p}"));
            }
        }
        write_csv(
            &format!("fig10_dist_{tag}"),
            "label,actual_count,predicted_count",
            &rows,
        );

        // Top-8 actual labels with their predicted counts.
        let mut order: Vec<usize> = (0..actual.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(actual[i]));
        println!("\n  {tag} ({}):", run.case.name());
        println!("    {:<8} {:>8} {:>10}", "label", "actual", "predicted");
        for &i in order.iter().take(8) {
            if actual[i] == 0 {
                break;
            }
            println!("    {:<8} {:>8} {:>10}", i, actual[i], predicted[i]);
        }
        let distinct_actual = actual.iter().filter(|&&c| c > 0).count();
        let distinct_pred = predicted.iter().filter(|&&c| c > 0).count();
        println!(
            "    distinct labels: actual {distinct_actual}, predicted {distinct_pred} \
             (model ignores the rare tail)"
        );
    }
}
