//! Regenerates paper Fig. 6(a-c): separability of the optimal dataflow in
//! the space of operand aspect ratios.
//!
//! For each sampled workload the optimal (array, dataflow) is searched; the
//! binary then reports, per dataflow, the distribution of the three operand
//! aspect ratios (`M:K`, `K:N`, `M:N`). Expected shape (paper Sec. III-A):
//! the `M:K` ratio separates OS from WS; `K:N` separates IS from OS; `M:N`
//! separates WS from IS.

use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case1::Case1Problem;
use airchitect_sim::Dataflow;
use airchitect_workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() {
    let samples = scaled(5_000);
    let problem = Case1Problem::new(1 << 15);
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(6);

    banner("Fig 6(a-c): operand aspect ratios vs optimal dataflow");
    let mut rows = Vec::new();
    // Per dataflow: sums of log2 aspect ratios for mean computation.
    let mut stats = [[0f64; 4]; 3]; // [df][sum_mk, sum_kn, sum_mn, count]
    for _ in 0..samples {
        let wl = sampler.sample(&mut rng);
        let budget = 1u64 << rng.random_range(5..=15u32);
        let r = problem.search(&wl, budget);
        let (array, df) = problem.space().decode(r.label).expect("label in space");
        let (mk, kn, mn) = (
            wl.ifmap_aspect().log2(),
            wl.filter_aspect().log2(),
            wl.ofmap_aspect().log2(),
        );
        rows.push(format!(
            "{df},{mk:.3},{kn:.3},{mn:.3},{:.3}",
            array.aspect_ratio().log2()
        ));
        let s = &mut stats[df.index()];
        s[0] += mk;
        s[1] += kn;
        s[2] += mn;
        s[3] += 1.0;
    }
    write_csv(
        "fig6_abc",
        "dataflow,log2_mk,log2_kn,log2_mn,log2_array_aspect",
        &rows,
    );

    println!("\n  mean log2 operand aspect ratios per optimal dataflow:");
    println!(
        "  {:<4} {:>9} {:>9} {:>9} {:>8}",
        "df", "M:K", "K:N", "M:N", "count"
    );
    for df in Dataflow::ALL {
        let s = &stats[df.index()];
        if s[3] == 0.0 {
            println!("  {df:<4} (never optimal in this sample)");
            continue;
        }
        println!(
            "  {df:<4} {:>9.2} {:>9.2} {:>9.2} {:>8}",
            s[0] / s[3],
            s[1] / s[3],
            s[2] / s[3],
            s[3] as usize
        );
    }
    println!("\n  expected pattern (each dataflow wins when its temporal dim is the");
    println!("  long one): OS streams K, so it wins at small M:K / large K:N;");
    println!("  WS streams M, so it wins at large M:K and M:N; IS streams N, so");
    println!("  it wins at small K:N and M:N. The three ratios separate the three");
    println!("  dataflows pairwise, as in paper Fig. 6(a-c).");
}
