//! Regenerates paper Fig. 10(a-c): training and validation accuracy vs
//! epoch for AIrchitect on the three case studies.
//!
//! Expected shape: CS1 learns to the highest accuracy; CS2 and CS3 saturate
//! lower (the paper reports 94% / 74% / 76% at 4.5M samples; at the scaled
//! defaults the curves keep the same ordering and shape).

use airchitect::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};
use airchitect_bench::{banner, scaled, write_csv};

fn main() {
    let config = PipelineConfig {
        samples: scaled(20_000),
        epochs: 15,
        batch_size: 256,
        seed: 10,
        stratify: false,
        threads: 1,
    };

    banner("Fig 10(a-c): AIrchitect training curves");
    println!(
        "  {} samples per case study, {} epochs\n",
        config.samples, config.epochs
    );

    let runs = [
        ("case1", run_case1(&config, (5, 15))),
        ("case2", run_case2(&config)),
        (
            "case3",
            run_case3(&PipelineConfig {
                // CS3 search is ~500x costlier per sample; keep it tractable.
                samples: scaled(4_000),
                ..config
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (tag, run) in &runs {
        println!("  {} ({}):", tag, run.case.name());
        for e in &run.report.history.epochs {
            println!(
                "    epoch {:>2}: loss {:.3}  train acc {:.3}  val acc {:.3}",
                e.epoch,
                e.train_loss,
                e.train_accuracy,
                e.val_accuracy.unwrap_or(f64::NAN)
            );
            rows.push(format!(
                "{tag},{},{:.4},{:.4},{:.4}",
                e.epoch,
                e.train_loss,
                e.train_accuracy,
                e.val_accuracy.unwrap_or(f64::NAN)
            ));
        }
        println!(
            "    final: val acc {:.3}, test acc {:.3}\n",
            run.report.history.final_val_accuracy().unwrap_or(f64::NAN),
            run.test_accuracy
        );
    }
    write_csv(
        "fig10_abc",
        "case,epoch,train_loss,train_acc,val_acc",
        &rows,
    );
}
