//! Regenerates paper Fig. 9: prediction accuracy of off-the-shelf
//! classifiers vs AIrchitect on the three case studies.
//!
//! Expected shape: SVC/XGBoost land mid-table, the MLPs do better, and
//! AIrchitect (embedding front-end) beats the best baseline on every case
//! study — by about 10% in the paper.
//!
//! Note on scale: the paper fits on 2x10^6 points; the default here is
//! 10^4 per case study so the sweep finishes on one CPU core in ~20 min;
//! accuracies are correspondingly lower, but the *ranking* is the
//! reproduced result. Raise `AIRCH_SCALE` to close the gap.

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect_bench::{banner, scaled, write_csv};
use airchitect_classifiers::mlp_zoo::{MlpBaseline, MlpVariant};
use airchitect_classifiers::{
    Classifier, Gbdt, GbdtConfig, LinearSvc, LinearSvcConfig, RffSvc, RffSvcConfig,
};
use airchitect_data::{split, Dataset};
use airchitect_dse::{case1, case2, case3};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::TrainConfig;

fn dataset_for(case: CaseStudy, samples: usize) -> Dataset {
    match case {
        CaseStudy::ArrayDataflow => {
            let problem = case1::Case1Problem::new(1 << 15);
            case1::generate_dataset(
                &problem,
                &case1::Case1DatasetSpec {
                    samples,
                    budget_log2_range: (5, 15),
                    seed: 9,
                },
            )
        }
        CaseStudy::BufferSizing => {
            let problem = case2::Case2Problem::new();
            case2::generate_dataset(
                &problem,
                &case2::Case2DatasetSpec {
                    samples,
                    seed: 9,
                    ..Default::default()
                },
            )
        }
        CaseStudy::MultiArrayScheduling => {
            let problem = case3::Case3Problem::new();
            case3::generate_dataset(&problem, &case3::Case3DatasetSpec { samples, seed: 9 })
        }
    }
}

fn main() {
    let samples = scaled(10_000);
    let train_config = TrainConfig {
        epochs: 15,
        batch_size: 128,
        optimizer: Optimizer::adam(1e-3),
        seed: 9,
        lr_decay: 1.0,
        threads: 1,
    };

    banner("Fig 9: classifier comparison");
    println!("  {samples} samples per case study (AIRCH_SCALE to grow)\n");

    let mut csv_rows = Vec::new();
    let mut table: Vec<(String, [f64; 3])> = Vec::new();

    for (ci, case) in CaseStudy::ALL.iter().enumerate() {
        let ds = dataset_for(*case, samples);
        let split = split::train_val_test(&ds, 0.9, 0.0, 0.1, 9).expect("fractions sum to 1");
        println!(
            "  {}: {} train / {} test, {} classes",
            case.name(),
            split.train.len(),
            split.test.len(),
            ds.num_classes()
        );

        // GBDT cost scales with class count; shrink rounds accordingly.
        let gbdt_rounds = (2_000 / ds.num_classes() as usize).clamp(1, 5);
        let mut models: Vec<Box<dyn Classifier>> = vec![
            Box::new(RffSvc::new(RffSvcConfig {
                num_features: 128,
                head: LinearSvcConfig {
                    epochs: 3,
                    ..Default::default()
                },
                ..Default::default()
            })),
            Box::new(LinearSvc::new(LinearSvcConfig {
                epochs: 5,
                ..Default::default()
            })),
            Box::new(Gbdt::new(GbdtConfig {
                rounds: gbdt_rounds,
                ..Default::default()
            })),
            Box::new(MlpBaseline::new(MlpVariant::A, train_config, 9)),
            Box::new(MlpBaseline::new(MlpVariant::B, train_config, 9)),
            Box::new(MlpBaseline::new(MlpVariant::C, train_config, 9)),
            Box::new(MlpBaseline::new(MlpVariant::D, train_config, 9)),
            Box::new(AirchitectModel::new(
                *case,
                &AirchitectConfig {
                    num_classes: ds.num_classes(),
                    train: train_config,
                    seed: 9,
                    ..Default::default()
                },
            )),
        ];

        for model in &mut models {
            let t0 = std::time::Instant::now();
            model.fit(&split.train);
            let acc = model.accuracy(&split.test);
            println!(
                "    {:<11} accuracy {:.3}  ({:.1}s fit)",
                model.name(),
                acc,
                t0.elapsed().as_secs_f64()
            );
            csv_rows.push(format!("{},{},{acc:.4}", case.name(), model.name()));
            if ci == 0 {
                table.push((model.name().to_string(), [acc, 0.0, 0.0]));
            } else {
                let row = table
                    .iter_mut()
                    .find(|(n, _)| n == model.name())
                    .expect("same model list per case");
                row.1[ci] = acc;
            }
        }
        println!();
    }

    write_csv("fig9", "case_study,model,test_accuracy", &csv_rows);

    println!("  summary (test accuracy):");
    println!("  {:<12} {:>8} {:>8} {:>8}", "model", "CS1", "CS2", "CS3");
    for (name, accs) in &table {
        println!(
            "  {:<12} {:>8.3} {:>8.3} {:>8.3}",
            name, accs[0], accs[1], accs[2]
        );
    }
    let airch = table
        .iter()
        .find(|(n, _)| n == "AIrchitect")
        .expect("present");
    let best_baseline: [f64; 3] = {
        let mut b = [0f64; 3];
        for (name, accs) in &table {
            if name != "AIrchitect" {
                for i in 0..3 {
                    b[i] = b[i].max(accs[i]);
                }
            }
        }
        b
    };
    println!("\n  AIrchitect vs best baseline per case study:");
    #[allow(clippy::needless_range_loop)]
    for i in 0..3 {
        println!(
            "    CS{}: {:+.3} ({} paper: ~+0.10)",
            i + 1,
            airch.1[i] - best_baseline[i],
            if airch.1[i] >= best_baseline[i] {
                "wins,"
            } else {
                "LOSES,"
            }
        );
    }
}
