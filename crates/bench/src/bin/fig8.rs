//! Regenerates paper Fig. 8: the input-space layouts and output-space
//! codecs of the three case studies, including the quoted sizes
//! (459 / 1000 / 1944).

use airchitect::CaseStudy;
use airchitect_bench::banner;
use airchitect_dse::space::{Case1Space, Case2Space, Case3Space};

fn main() {
    banner("Fig 8(a): input spaces");
    for case in CaseStudy::ALL {
        println!("  {:<38} {} input integers", case.name(), case.input_dim());
    }

    banner("Fig 8(b): CS1 output space (array rows, cols, dataflow)");
    let s1 = Case1Space::new(1 << 18);
    println!("  size: {} (paper: 459)", s1.len());
    for label in [0u32, 1, 2, 3] {
        let (a, df) = s1.decode(label).expect("label in space");
        println!(
            "  config {label:>4}: {:>6} x {:<6} {df}",
            a.rows(),
            a.cols()
        );
    }
    let last = s1.len() as u32 - 1;
    let (a, df) = s1.decode(last).expect("last label in space");
    println!("  config {last:>4}: {:>6} x {:<6} {df}", a.rows(), a.cols());

    banner("Fig 8(c): CS2 output space (buffer sizes, KB)");
    let s2 = Case2Space::paper();
    println!("  size: {} (paper: 1000)", s2.len());
    for label in [0u32, 1, 2, 3, 999] {
        let (i, f, o) = s2.decode(label).expect("label in space");
        println!("  config {label:>4}: IFMAP {i:>5}  Filter {f:>5}  OFMAP {o:>5}");
    }

    banner("Fig 8(d): CS3 output space (workload mapping + dataflows)");
    let s3 = Case3Space::paper();
    println!("  size: {} (paper: 1944)", s3.len());
    for label in [0u32, 1, 2, 3] {
        let (perm, dfs) = s3.decode(label).expect("label in space");
        let pretty: Vec<String> = perm
            .iter()
            .zip(&dfs)
            .map(|(w, d)| format!("WL{w}:{d}"))
            .collect();
        println!("  config {label:>4}: [{}]", pretty.join(", "));
    }
}
