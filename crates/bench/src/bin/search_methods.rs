//! Search-method comparison (the paper's Fig. 1 framing, quantified):
//! how close does each optimization strategy get, and how many cost-function
//! evaluations does each *query* cost?
//!
//! * exhaustive search — the ground truth generator (all feasible configs),
//! * GAMMA-style genetic algorithm, hill climbing, random search — the
//!   "ML/metaheuristic search" family of the paper's related work,
//! * AIrchitect — zero evaluations per query after offline training.

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_dse::search_algos::{GeneticSearch, HillClimb, RandomSearch, SearchStrategy};
use airchitect_nn::train::TrainConfig;
use airchitect_workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let queries = scaled(300);
    let budget = 1u64 << 12;
    let problem = Case1Problem::new(1 << 12);

    banner("Search methods vs learned recommendation (CS1, 2^12 MACs)");

    // Offline phase for the learned optimizer.
    let train_samples = scaled(10_000);
    println!("  training AIrchitect on {train_samples} search-labeled samples...");
    let ds = case1::generate_dataset(
        &problem,
        &Case1DatasetSpec {
            samples: train_samples,
            budget_log2_range: (5, 12),
            seed: 42,
        },
    );
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: ds.num_classes(),
            train: TrainConfig {
                epochs: 12,
                batch_size: 256,
                ..Default::default()
            },
            seed: 42,
            ..Default::default()
        },
    );
    model.train(&ds).expect("generated dataset is valid");

    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(4242);
    let workloads = sampler.sample_many(queries, &mut rng);

    // (name, mean normalized perf, mean evals/query)
    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // Exhaustive reference.
    let mut evals = 0f64;
    for wl in &workloads {
        evals += problem.search(wl, budget).evaluations as f64;
    }
    rows.push(("exhaustive".into(), 1.0, evals / queries as f64));

    // Sampling-based strategies.
    let strategies: Vec<Box<dyn SearchStrategy>> = vec![
        Box::new(RandomSearch {
            evaluations: 30,
            seed: 7,
        }),
        Box::new(HillClimb {
            restarts: 3,
            seed: 7,
        }),
        Box::new(GeneticSearch {
            population: 12,
            generations: 6,
            mutation_rate: 0.25,
            seed: 7,
        }),
    ];
    for mut strat in strategies {
        let mut perf = 0f64;
        let mut evals = 0f64;
        for wl in &workloads {
            let r = strat.search(&problem, wl, budget);
            perf += problem.normalized_performance(wl, budget, r.label);
            evals += r.evaluations as f64;
        }
        rows.push((
            strat.name().to_string(),
            perf / queries as f64,
            evals / queries as f64,
        ));
    }

    // Learned constant-time recommendation: zero evaluations per query.
    let mut perf = 0f64;
    for wl in &workloads {
        let label = model.predict_row(&Case1Problem::features(wl, budget));
        perf += problem.normalized_performance(wl, budget, label);
    }
    rows.push(("airchitect".into(), perf / queries as f64, 0.0));

    println!(
        "\n  {:<12} {:>18} {:>16}",
        "method", "mean perf (of opt)", "evals per query"
    );
    let mut csv = Vec::new();
    for (name, perf, evals) in &rows {
        println!("  {name:<12} {perf:>18.4} {evals:>16.1}");
        csv.push(format!("{name},{perf:.4},{evals:.1}"));
    }
    write_csv(
        "search_methods",
        "method,mean_normalized_perf,evals_per_query",
        &csv,
    );

    println!("\n  the paper's argument in one table: sampling-based search trades");
    println!("  solution quality against per-query evaluations; the learned");
    println!("  recommender removes the per-query cost entirely and keeps quality");
    println!("  near the exhaustive optimum.");
}
