//! Ablation: how much of AIrchitect's advantage comes from the embedding
//! front-end (the design choice DESIGN.md calls out, visible in the paper as
//! the MLP-B vs AIrchitect gap in Fig. 9)?
//!
//! Sweeps the embedding width and the quantizer resolution on case study 1
//! and compares against an identically-trained MLP-B on raw features.

use airchitect::model::{
    AirchitectConfig, AirchitectModel, CaseStudy, ColumnQuantizer, FeatureQuantizer,
};
use airchitect_bench::{banner, scaled, write_csv};
use airchitect_classifiers::mlp_zoo::{MlpBaseline, MlpVariant};
use airchitect_classifiers::Classifier;
use airchitect_data::split;
use airchitect_dse::case1::{self, Case1DatasetSpec, Case1Problem};
use airchitect_nn::train::TrainConfig;

fn main() {
    let samples = scaled(10_000);
    let problem = Case1Problem::new(1 << 15);
    let ds = case1::generate_dataset(
        &problem,
        &Case1DatasetSpec {
            samples,
            budget_log2_range: (5, 15),
            seed: 77,
        },
    );
    let split = split::train_val_test(&ds, 0.9, 0.0, 0.1, 77).expect("fractions sum to 1");
    let train_config = TrainConfig {
        epochs: 12,
        batch_size: 256,
        ..Default::default()
    };
    let classes = ds.num_classes();

    banner("Ablation: raw-feature MLP-B baseline");
    let mut mlp = MlpBaseline::new(MlpVariant::B, train_config, 77);
    mlp.fit(&split.train);
    let mlp_acc = mlp.accuracy(&split.test);
    println!("  MLP-B (raw features): {mlp_acc:.3}");

    banner("Ablation: embedding width sweep (vocab 64, 2 bins/octave)");
    let mut rows = vec![format!("mlp_b_raw,0,0,{mlp_acc:.4}")];
    for embed_dim in [2usize, 4, 8, 16, 32] {
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: classes,
                embed_dim,
                train: train_config,
                seed: 77,
                ..Default::default()
            },
        );
        model.fit(&split.train);
        let acc = model.accuracy(&split.test);
        println!("  embed_dim {embed_dim:>2}: {acc:.3}");
        rows.push(format!("airchitect,{embed_dim},2,{acc:.4}"));
    }

    banner("Ablation: quantizer resolution sweep (embed 16)");
    for bins in [1u32, 2, 4] {
        let log2 = ColumnQuantizer::Log2 {
            bins_per_octave: bins,
        };
        let quantizer = FeatureQuantizer::new(vec![ColumnQuantizer::Direct, log2, log2, log2], 64);
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: classes,
                train: train_config,
                seed: 77,
                ..Default::default()
            },
        )
        .with_quantizer(quantizer);
        model.fit(&split.train);
        let acc = model.accuracy(&split.test);
        println!("  {bins} bins/octave: {acc:.3}");
        rows.push(format!("airchitect,16,{bins},{acc:.4}"));
    }

    write_csv(
        "ablation_embedding",
        "model,embed_dim,bins_per_octave,accuracy",
        &rows,
    );
    println!("\n  expected: the embedding front-end beats raw MLP-B (paper Fig. 9);");
    println!("  16-wide embeddings (the paper's choice) sit at the knee of the sweep.");
}
