//! The economics of learned DSE (paper Fig. 1): offline dataset generation
//! and training are paid once; each query then costs one inference instead
//! of one exhaustive search. This binary measures all three costs and
//! reports the break-even query count per case study.

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect_bench::{banner, scaled, write_csv};
use airchitect_dse::case1::{self, Case1Problem};
use airchitect_dse::case2::{self, Case2Problem, Case2Query};
use airchitect_dse::case3::{self, Case3Problem};
use airchitect_nn::train::TrainConfig;
use std::time::Instant;

struct Costs {
    name: &'static str,
    datagen_per_sample_us: f64,
    train_total_s: f64,
    search_us: f64,
    inference_us: f64,
    samples: usize,
}

fn time_us<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    banner("Amortization: offline cost vs per-query savings");
    let samples = scaled(4_000);
    let train_config = TrainConfig {
        epochs: 10,
        batch_size: 256,
        ..Default::default()
    };
    let mut results: Vec<Costs> = Vec::new();

    // --- Case study 1 ---
    {
        let problem = Case1Problem::new(1 << 15);
        let t0 = Instant::now();
        let ds = case1::generate_dataset(
            &problem,
            &case1::Case1DatasetSpec {
                samples,
                budget_log2_range: (5, 15),
                seed: 1,
            },
        );
        let datagen = t0.elapsed().as_secs_f64() * 1e6 / samples as f64;
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: ds.num_classes(),
                train: train_config,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        model.train(&ds).expect("valid dataset");
        let train_s = t0.elapsed().as_secs_f64();
        let wl = airchitect_workload::GemmWorkload::new(512, 256, 384).expect("static dims");
        let search = time_us(200, || problem.search(&wl, 1 << 15));
        let feats = Case1Problem::features(&wl, 1 << 15);
        let infer = time_us(2000, || model.predict_row(&feats));
        results.push(Costs {
            name: "case1",
            datagen_per_sample_us: datagen,
            train_total_s: train_s,
            search_us: search,
            inference_us: infer,
            samples,
        });
    }

    // --- Case study 2 ---
    {
        let problem = Case2Problem::new();
        let t0 = Instant::now();
        let ds = case2::generate_dataset(
            &problem,
            &case2::Case2DatasetSpec {
                samples,
                seed: 1,
                ..Default::default()
            },
        );
        let datagen = t0.elapsed().as_secs_f64() * 1e6 / samples as f64;
        let mut model = AirchitectModel::new(
            CaseStudy::BufferSizing,
            &AirchitectConfig {
                num_classes: ds.num_classes(),
                train: train_config,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        model.train(&ds).expect("valid dataset");
        let train_s = t0.elapsed().as_secs_f64();
        let q = Case2Query::from_features(&[1500.0, 512.0, 256.0, 384.0, 16.0, 16.0, 0.0, 8.0]);
        let search = time_us(200, || problem.search(&q));
        let feats = q.features();
        let infer = time_us(2000, || model.predict_row(&feats));
        results.push(Costs {
            name: "case2",
            datagen_per_sample_us: datagen,
            train_total_s: train_s,
            search_us: search,
            inference_us: infer,
            samples,
        });
    }

    // --- Case study 3 ---
    {
        let problem = Case3Problem::new();
        let cs3_samples = scaled(1_000);
        let t0 = Instant::now();
        let ds = case3::generate_dataset(
            &problem,
            &case3::Case3DatasetSpec {
                samples: cs3_samples,
                seed: 1,
            },
        );
        let datagen = t0.elapsed().as_secs_f64() * 1e6 / cs3_samples as f64;
        let mut model = AirchitectModel::new(
            CaseStudy::MultiArrayScheduling,
            &AirchitectConfig {
                num_classes: ds.num_classes(),
                train: train_config,
                ..Default::default()
            },
        );
        let t0 = Instant::now();
        model.train(&ds).expect("valid dataset");
        let train_s = t0.elapsed().as_secs_f64();
        let wls: Vec<_> = (1..=4)
            .map(|i| {
                airchitect_workload::GemmWorkload::new(i * 100, i * 50, i * 25)
                    .expect("static dims")
            })
            .collect();
        let search = time_us(50, || problem.search(&wls));
        let feats = Case3Problem::features(&wls);
        let infer = time_us(2000, || model.predict_row(&feats));
        results.push(Costs {
            name: "case3",
            datagen_per_sample_us: datagen,
            train_total_s: train_s,
            search_us: search,
            inference_us: infer,
            samples: cs3_samples,
        });
    }

    println!(
        "\n  {:<6} {:>14} {:>10} {:>12} {:>12} {:>10} {:>12}",
        "case", "datagen/sample", "train", "search/query", "infer/query", "speedup", "break-even"
    );
    let mut rows = Vec::new();
    for c in &results {
        let offline_us = c.datagen_per_sample_us * c.samples as f64 + c.train_total_s * 1e6;
        let saving = c.search_us - c.inference_us;
        let break_even = if saving > 0.0 {
            format!("{}", (offline_us / saving).ceil() as u64)
        } else {
            "n/a (search cheaper)".to_string()
        };
        println!(
            "  {:<6} {:>11.1} us {:>8.1}s {:>9.1} us {:>9.1} us {:>9.1}x {:>12}",
            c.name,
            c.datagen_per_sample_us,
            c.train_total_s,
            c.search_us,
            c.inference_us,
            c.search_us / c.inference_us,
            break_even
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.2},{break_even}",
            c.name, c.datagen_per_sample_us, c.train_total_s, c.search_us, c.inference_us
        ));
    }
    write_csv(
        "amortization",
        "case,datagen_per_sample_us,train_s,search_us,inference_us,break_even_queries",
        &rows,
    );
    println!("\n  notes:");
    println!("  * 'constant time' means the inference cost is one fixed forward pass,");
    println!("    independent of how many configurations the space holds per *search*;");
    println!("    it still scales with the softmax width across case studies.");
    println!("  * with this repository's analytical cost model, exhaustive search is");
    println!("    already microseconds, so learned inference only wins where the space");
    println!("    is big (CS3). With the paper's real simulator (seconds per config,");
    println!("    step 1 of Fig. 1a) the search column multiplies by ~10^6 and the");
    println!("    break-even point drops to a handful of queries.");
}
