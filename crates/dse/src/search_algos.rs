//! Sampling-based search baselines: random search, hill climbing, and a
//! genetic algorithm over the case-study-1 space.
//!
//! The paper positions AIrchitect against two families of prior work: cost
//! regressors that speed up each evaluation, and ML-guided *search* methods
//! (GAMMA's genetic algorithm, ConfuciuX's RL) that reduce how many
//! evaluations a query needs. This module implements that second family so
//! the reproduction can quantify the trade-off the paper's Fig. 1 sketches:
//! any search pays per-query evaluations; the learned recommender pays none.
//!
//! All strategies share the [`SearchStrategy`] trait and count their cost
//! function evaluations, making sample-efficiency directly comparable (see
//! the `search_methods` bench binary).

use airchitect_sim::{compute, ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::case1::Case1Problem;
use crate::SearchResult;

/// A search method over the case-study-1 configuration space.
pub trait SearchStrategy {
    /// Display name for reports.
    fn name(&self) -> &str;

    /// Finds a (hopefully optimal) configuration for `workload` within
    /// `mac_budget`, reporting the label, its cost, and evaluations spent.
    fn search(
        &mut self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> SearchResult;
}

/// A genome: power-of-two exponents for rows/cols plus a dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Genome {
    row_exp: u32,
    col_exp: u32,
    dataflow: Dataflow,
}

impl Genome {
    /// Clamps the genome into the feasible region `row+col <= budget_log2`,
    /// shrinking the larger exponent first.
    fn repair(mut self, budget_log2: u32) -> Genome {
        self.row_exp = self.row_exp.max(1);
        self.col_exp = self.col_exp.max(1);
        while self.row_exp + self.col_exp > budget_log2 {
            if self.row_exp >= self.col_exp && self.row_exp > 1 {
                self.row_exp -= 1;
            } else if self.col_exp > 1 {
                self.col_exp -= 1;
            } else {
                break;
            }
        }
        self
    }

    fn random(rng: &mut StdRng, budget_log2: u32) -> Genome {
        let row_exp = rng.random_range(1..budget_log2);
        let col_exp = rng.random_range(1..=(budget_log2 - row_exp).max(1));
        Genome {
            row_exp,
            col_exp,
            dataflow: Dataflow::from_index(rng.random_range(0..3)).expect("index < 3"),
        }
    }

    fn array(&self) -> ArrayConfig {
        ArrayConfig::new(1 << self.row_exp, 1 << self.col_exp)
            .expect("exponents >= 1 give non-zero dims")
    }
}

fn budget_log2(mac_budget: u64) -> u32 {
    63 - mac_budget.max(4).leading_zeros()
}

/// Evaluates a genome's runtime; the returned label comes from the space
/// codec so results interoperate with the rest of the crate.
fn evaluate(problem: &Case1Problem, wl: &GemmWorkload, genome: Genome) -> (u32, u64) {
    let label = problem
        .space()
        .encode(genome.array(), genome.dataflow)
        .expect("repaired genomes stay inside the enumerated space");
    (
        label,
        compute::runtime_cycles(wl, genome.array(), genome.dataflow),
    )
}

/// Uniform random sampling of the feasible space.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    /// Evaluation budget per query.
    pub evaluations: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &str {
        "random"
    }

    fn search(
        &mut self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> SearchResult {
        let blog = budget_log2(mac_budget);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(u32, u64)> = None;
        for _ in 0..self.evaluations {
            let g = Genome::random(&mut rng, blog).repair(blog);
            let (label, cost) = evaluate(problem, workload, g);
            if best.is_none_or(|(_, b)| cost < b) {
                best = Some((label, cost));
            }
        }
        let (label, cost) = best.expect("at least one evaluation");
        SearchResult {
            label,
            cost,
            evaluations: self.evaluations as u64,
        }
    }
}

/// Steepest-ascent hill climbing with random restarts.
///
/// Neighbors: ±1 on either exponent (budget-respecting) and the two other
/// dataflows.
#[derive(Debug, Clone)]
pub struct HillClimb {
    /// Number of random restarts.
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SearchStrategy for HillClimb {
    fn name(&self) -> &str {
        "hill-climb"
    }

    fn search(
        &mut self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> SearchResult {
        let blog = budget_log2(mac_budget);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut best: Option<(u32, u64)> = None;
        let mut evals = 0u64;
        for _ in 0..self.restarts.max(1) {
            let mut current = Genome::random(&mut rng, blog).repair(blog);
            let (mut cur_label, mut cur_cost) = evaluate(problem, workload, current);
            evals += 1;
            loop {
                let mut neighbors = Vec::with_capacity(6);
                for (dr, dc) in [(1i32, 0i32), (-1, 0), (0, 1), (0, -1)] {
                    let r = current.row_exp as i32 + dr;
                    let c = current.col_exp as i32 + dc;
                    if r >= 1 && c >= 1 && (r + c) as u32 <= blog {
                        neighbors.push(Genome {
                            row_exp: r as u32,
                            col_exp: c as u32,
                            ..current
                        });
                    }
                }
                for df in Dataflow::ALL {
                    if df != current.dataflow {
                        neighbors.push(Genome {
                            dataflow: df,
                            ..current
                        });
                    }
                }
                let mut improved = false;
                for g in neighbors {
                    let (label, cost) = evaluate(problem, workload, g);
                    evals += 1;
                    if cost < cur_cost {
                        current = g;
                        cur_label = label;
                        cur_cost = cost;
                        improved = true;
                    }
                }
                if !improved {
                    break;
                }
            }
            if best.is_none_or(|(_, b)| cur_cost < b) {
                best = Some((cur_label, cur_cost));
            }
        }
        let (label, cost) = best.expect("at least one restart");
        SearchResult {
            label,
            cost,
            evaluations: evals,
        }
    }
}

/// A GAMMA-style genetic algorithm: tournament selection, uniform
/// crossover over the three genes, ±1-exponent / dataflow mutation.
#[derive(Debug, Clone)]
pub struct GeneticSearch {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GeneticSearch {
    fn default() -> Self {
        Self {
            population: 16,
            generations: 8,
            mutation_rate: 0.2,
            seed: 0,
        }
    }
}

impl SearchStrategy for GeneticSearch {
    fn name(&self) -> &str {
        "genetic"
    }

    fn search(
        &mut self,
        problem: &Case1Problem,
        workload: &GemmWorkload,
        mac_budget: u64,
    ) -> SearchResult {
        let blog = budget_log2(mac_budget);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evals = 0u64;

        let mut population: Vec<(Genome, u32, u64)> = (0..self.population.max(2))
            .map(|_| {
                let g = Genome::random(&mut rng, blog).repair(blog);
                let (label, cost) = evaluate(problem, workload, g);
                evals += 1;
                (g, label, cost)
            })
            .collect();

        let mut best = population
            .iter()
            .min_by_key(|&&(_, _, c)| c)
            .map(|&(_, l, c)| (l, c))
            .expect("population is non-empty");

        for _ in 0..self.generations {
            let mut next = Vec::with_capacity(population.len());
            while next.len() < population.len() {
                let pick = |rng: &mut StdRng| {
                    let a = rng.random_range(0..population.len());
                    let b = rng.random_range(0..population.len());
                    if population[a].2 <= population[b].2 {
                        population[a].0
                    } else {
                        population[b].0
                    }
                };
                let (pa, pb) = (pick(&mut rng), pick(&mut rng));
                let mut child = Genome {
                    row_exp: if rng.random::<bool>() {
                        pa.row_exp
                    } else {
                        pb.row_exp
                    },
                    col_exp: if rng.random::<bool>() {
                        pa.col_exp
                    } else {
                        pb.col_exp
                    },
                    dataflow: if rng.random::<bool>() {
                        pa.dataflow
                    } else {
                        pb.dataflow
                    },
                };
                if rng.random::<f64>() < self.mutation_rate {
                    child.row_exp = (child.row_exp as i32
                        + if rng.random::<bool>() { 1 } else { -1 })
                    .max(1) as u32;
                }
                if rng.random::<f64>() < self.mutation_rate {
                    child.col_exp = (child.col_exp as i32
                        + if rng.random::<bool>() { 1 } else { -1 })
                    .max(1) as u32;
                }
                if rng.random::<f64>() < self.mutation_rate {
                    child.dataflow =
                        Dataflow::from_index(rng.random_range(0..3)).expect("index < 3");
                }
                let child = child.repair(blog);
                let (label, cost) = evaluate(problem, workload, child);
                evals += 1;
                if cost < best.1 {
                    best = (label, cost);
                }
                next.push((child, label, cost));
            }
            population = next;
        }
        SearchResult {
            label: best.0,
            cost: best.1,
            evaluations: evals,
        }
    }
}

/// GAMMA-style genetic algorithm over the case-study-3 schedule space:
/// order-crossover on the workload permutation, uniform crossover plus
/// random-resetting mutation on the per-array dataflows. This is where
/// sampling search genuinely matters — CS3's exhaustive search visits
/// 1944 schedules, each simulating every array.
#[derive(Debug, Clone)]
pub struct Case3GeneticSearch {
    /// Individuals per generation.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Case3GeneticSearch {
    fn default() -> Self {
        Self {
            population: 24,
            generations: 10,
            mutation_rate: 0.25,
            seed: 0,
        }
    }
}

impl Case3GeneticSearch {
    /// Searches the schedule space for `workloads`, counting evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len()` differs from the problem's array count.
    pub fn search(
        &mut self,
        problem: &crate::case3::Case3Problem,
        workloads: &[GemmWorkload],
    ) -> SearchResult {
        use airchitect_sim::multi::ScheduleCost;
        let arrays = problem.system().len();
        assert_eq!(workloads.len(), arrays, "one workload per array");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut evals = 0u64;

        let eval_genome = |perm: &[usize], dfs: &[Dataflow], evals: &mut u64| {
            let label = problem
                .space()
                .encode(perm, dfs)
                .expect("valid permutations encode");
            *evals += 1;
            let cost = problem
                .cost_of(workloads, label)
                .expect("encoded labels decode");
            (label, cost)
        };

        let random_genome = |rng: &mut StdRng| {
            let mut perm: Vec<usize> = (0..arrays).collect();
            // Fisher-Yates.
            for i in (1..arrays).rev() {
                perm.swap(i, rng.random_range(0..=i));
            }
            let dfs: Vec<Dataflow> = (0..arrays)
                .map(|_| Dataflow::from_index(rng.random_range(0..3)).expect("index < 3"))
                .collect();
            (perm, dfs)
        };

        type Individual = (Vec<usize>, Vec<Dataflow>, u32, ScheduleCost);
        let mut population: Vec<Individual> = (0..self.population.max(2))
            .map(|_| {
                let (perm, dfs) = random_genome(&mut rng);
                let (label, cost) = eval_genome(&perm, &dfs, &mut evals);
                (perm, dfs, label, cost)
            })
            .collect();

        let mut best: (u32, ScheduleCost) = population
            .iter()
            .map(|&(_, _, l, c)| (l, c))
            .reduce(|a, b| if b.1.better_than(&a.1) { b } else { a })
            .expect("population is non-empty");

        for _ in 0..self.generations {
            let mut next: Vec<Individual> = Vec::with_capacity(population.len());
            while next.len() < population.len() {
                let pick = |rng: &mut StdRng| {
                    let a = rng.random_range(0..population.len());
                    let b = rng.random_range(0..population.len());
                    if population[a].3.better_than(&population[b].3) {
                        (population[a].0.clone(), population[a].1.clone())
                    } else {
                        (population[b].0.clone(), population[b].1.clone())
                    }
                };
                let (pa_perm, pa_dfs) = pick(&mut rng);
                let (pb_perm, pb_dfs) = pick(&mut rng);
                // Order crossover (OX1): copy a window from parent A, fill
                // the rest in parent B's order.
                let lo = rng.random_range(0..arrays);
                let hi = rng.random_range(lo..arrays);
                let mut child_perm = vec![usize::MAX; arrays];
                child_perm[lo..=hi].copy_from_slice(&pa_perm[lo..=hi]);
                let window: Vec<usize> = child_perm[lo..=hi].to_vec();
                let mut fill = pb_perm.iter().filter(|w| !window.contains(w));
                for slot in child_perm.iter_mut() {
                    if *slot == usize::MAX {
                        *slot = *fill.next().expect("B supplies the remaining workloads");
                    }
                }
                let mut child_dfs: Vec<Dataflow> = pa_dfs
                    .iter()
                    .zip(&pb_dfs)
                    .map(|(&a, &b)| if rng.random::<bool>() { a } else { b })
                    .collect();
                // Mutation: swap two permutation slots; reset dataflows.
                if rng.random::<f64>() < self.mutation_rate && arrays >= 2 {
                    let i = rng.random_range(0..arrays);
                    let j = rng.random_range(0..arrays);
                    child_perm.swap(i, j);
                }
                for df in child_dfs.iter_mut() {
                    if rng.random::<f64>() < self.mutation_rate {
                        *df = Dataflow::from_index(rng.random_range(0..3)).expect("index < 3");
                    }
                }
                let (label, cost) = eval_genome(&child_perm, &child_dfs, &mut evals);
                if cost.better_than(&best.1) {
                    best = (label, cost);
                }
                next.push((child_perm, child_dfs, label, cost));
            }
            population = next;
        }
        SearchResult {
            label: best.0,
            cost: best.1.makespan,
            evaluations: evals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> GemmWorkload {
        GemmWorkload::new(300, 120, 90).unwrap()
    }

    #[test]
    fn genome_repair_respects_budget() {
        let g = Genome {
            row_exp: 9,
            col_exp: 9,
            dataflow: Dataflow::Os,
        }
        .repair(10);
        assert!(g.row_exp + g.col_exp <= 10);
        assert!(g.row_exp >= 1 && g.col_exp >= 1);
    }

    #[test]
    fn all_strategies_return_feasible_optimizable_labels() {
        let problem = Case1Problem::new(1 << 10);
        let budget = 1 << 10;
        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(RandomSearch {
                evaluations: 30,
                seed: 1,
            }),
            Box::new(HillClimb {
                restarts: 3,
                seed: 1,
            }),
            Box::new(GeneticSearch::default()),
        ];
        let optimum = problem.search(&wl(), budget).cost;
        for mut s in strategies {
            let r = s.search(&problem, &wl(), budget);
            let (array, _) = problem.space().decode(r.label).unwrap();
            assert!(array.macs() <= budget, "{} over budget", s.name());
            assert!(
                r.cost >= optimum,
                "{} beat the exhaustive optimum?!",
                s.name()
            );
            assert!(r.evaluations > 0);
        }
    }

    #[test]
    fn genetic_beats_equal_budget_random_search_on_average() {
        let problem = Case1Problem::new(1 << 12);
        let budget = 1 << 12;
        let mut ga_total = 0u64;
        let mut rnd_total = 0u64;
        for seed in 0..10 {
            let mut ga = GeneticSearch {
                population: 12,
                generations: 8,
                mutation_rate: 0.25,
                seed,
            };
            let rga = ga.search(&problem, &wl(), budget);
            let mut rnd = RandomSearch {
                evaluations: rga.evaluations as usize,
                seed,
            };
            let rrnd = rnd.search(&problem, &wl(), budget);
            ga_total += rga.cost;
            rnd_total += rrnd.cost;
        }
        assert!(
            ga_total <= rnd_total,
            "GA ({ga_total}) should not lose to random ({rnd_total}) at equal evals"
        );
    }

    #[test]
    fn hill_climb_converges_to_local_optimum() {
        // From any start, the returned config must not have a strictly
        // better neighbor (by construction of the loop); spot-check that
        // multiple restarts reach the global optimum on a small space.
        let problem = Case1Problem::new(1 << 8);
        let budget = 1 << 8;
        let optimum = problem.search(&wl(), budget).cost;
        let mut hc = HillClimb {
            restarts: 8,
            seed: 3,
        };
        let r = hc.search(&problem, &wl(), budget);
        assert_eq!(
            r.cost, optimum,
            "8 restarts should find the global optimum in a 63-point space"
        );
    }

    #[test]
    fn case3_ga_finds_near_optimal_schedules_with_fewer_evals() {
        let problem = crate::case3::Case3Problem::new();
        let workloads = vec![
            GemmWorkload::new(2048, 512, 1024).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(1024, 32, 512).unwrap(),
            GemmWorkload::new(196, 512, 256).unwrap(),
        ];
        let optimum = problem.search(&workloads);
        let mut ga = Case3GeneticSearch::default();
        let r = ga.search(&problem, &workloads);
        assert!(
            r.evaluations < optimum.evaluations / 3,
            "GA must sample far less"
        );
        assert!(
            r.cost >= optimum.cost,
            "GA cannot beat the exhaustive optimum"
        );
        // Within 20% of the optimal makespan with a quarter of the evals.
        assert!(
            (r.cost as f64) <= optimum.cost as f64 * 1.2,
            "GA makespan {} vs optimum {}",
            r.cost,
            optimum.cost
        );
        // Its label decodes to a valid permutation schedule.
        let (perm, _) = problem.space().decode(r.label).unwrap();
        let mut sorted = perm;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn case3_ga_is_deterministic_per_seed() {
        let problem = crate::case3::Case3Problem::new();
        let workloads = vec![
            GemmWorkload::new(100, 100, 100).unwrap(),
            GemmWorkload::new(200, 50, 80).unwrap(),
            GemmWorkload::new(30, 300, 60).unwrap(),
            GemmWorkload::new(500, 20, 40).unwrap(),
        ];
        let mut a = Case3GeneticSearch::default();
        let mut b = Case3GeneticSearch::default();
        assert_eq!(
            a.search(&problem, &workloads),
            b.search(&problem, &workloads)
        );
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let problem = Case1Problem::new(1 << 10);
        let mut a = GeneticSearch::default();
        let mut b = GeneticSearch::default();
        assert_eq!(
            a.search(&problem, &wl(), 1 << 10),
            b.search(&problem, &wl(), 1 << 10)
        );
    }
}
