//! Case study 3: multi-array scheduling.
//!
//! Input space (paper Fig. 8a): 12 integers — `M`, `N`, `K` for each of the
//! four workloads. Output space: the 1944 [`Case3Space`] labels (workload
//! permutation × per-array dataflow). Ground truth: minimum makespan on the
//! heterogeneous 4-array system, tie-broken by minimum energy (paper: "lowest
//! runtime and consumes least energy"), then by lower label.

use airchitect_data::Dataset;
use airchitect_sim::multi::{MultiArraySystem, Schedule, ScheduleCost};
use airchitect_workload::distribution::CnnWorkloadSampler;
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::space::Case3Space;
use crate::SearchResult;

/// The case-study-3 optimization problem: a fixed heterogeneous system plus
/// the schedule output space.
#[derive(Debug, Clone)]
pub struct Case3Problem {
    system: MultiArraySystem,
    space: Case3Space,
}

impl Case3Problem {
    /// The paper's setup: the 4-array heterogeneous system and its
    /// 1944-label schedule space.
    pub fn new() -> Self {
        Self {
            system: MultiArraySystem::heterogeneous_4(),
            space: Case3Space::paper(),
        }
    }

    /// A custom system; the space is derived from the array count.
    pub fn with_system(system: MultiArraySystem) -> Self {
        let space = Case3Space::new(system.len());
        Self { system, space }
    }

    /// The system being scheduled.
    pub fn system(&self) -> &MultiArraySystem {
        &self.system
    }

    /// The problem's output space.
    pub fn space(&self) -> &Case3Space {
        &self.space
    }

    /// Cost of the schedule denoted by `label`, or `None` for out-of-space
    /// labels.
    pub fn cost_of(&self, workloads: &[GemmWorkload], label: u32) -> Option<ScheduleCost> {
        let (perm, dfs) = self.space.decode(label)?;
        let sched = Schedule::new(&perm, &dfs);
        self.system.evaluate(workloads, &sched).ok()
    }

    /// Exhaustively searches all schedules for the (makespan, energy)-optimal
    /// one.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len()` differs from the system's array count.
    pub fn search(&self, workloads: &[GemmWorkload]) -> SearchResult {
        assert_eq!(
            workloads.len(),
            self.system.len(),
            "need exactly one workload per array"
        );
        let mut best: Option<(u32, ScheduleCost)> = None;
        let mut evals = 0u64;
        for label in 0..self.space.len() as u32 {
            let cost = self
                .cost_of(workloads, label)
                .expect("all labels decode for matching workload count");
            evals += 1;
            best = Some(match best {
                None => (label, cost),
                Some(b) => {
                    if cost.better_than(&b.1) {
                        (label, cost)
                    } else {
                        b
                    }
                }
            });
        }
        let (label, cost) = best.expect("space is non-empty");
        airchitect_telemetry::metrics::DSE_SEARCHES.inc();
        airchitect_telemetry::metrics::DSE_SEARCH_POINTS.add(evals);
        SearchResult {
            label,
            cost: cost.makespan,
            evaluations: evals,
        }
    }

    /// Normalized performance of a predicted label:
    /// `optimal_makespan / predicted_makespan`, in `[0, 1]`.
    pub fn normalized_performance(&self, workloads: &[GemmWorkload], predicted: u32) -> f64 {
        let best = self.search(workloads).cost;
        match self.cost_of(workloads, predicted) {
            Some(c) => best as f64 / c.makespan as f64,
            None => 0.0,
        }
    }

    /// Feature vector: the 12 workload dimensions in workload order.
    ///
    /// # Panics
    ///
    /// Panics if `workloads.len() != 4`.
    pub fn features(workloads: &[GemmWorkload]) -> [f32; 12] {
        assert_eq!(workloads.len(), 4, "the paper's CS3 uses 4 workloads");
        let mut f = [0f32; 12];
        for (i, wl) in workloads.iter().enumerate() {
            f[i * 3] = wl.m() as f32;
            f[i * 3 + 1] = wl.n() as f32;
            f[i * 3 + 2] = wl.k() as f32;
        }
        f
    }

    /// Reconstructs the workload list from a feature row produced by
    /// [`Case3Problem::features`].
    ///
    /// # Panics
    ///
    /// Panics if the row does not encode 4 valid workloads.
    pub fn from_features(row: &[f32]) -> Vec<GemmWorkload> {
        assert!(row.len() >= 12, "CS3 feature rows have 12 entries");
        (0..4)
            .map(|i| {
                GemmWorkload::new(
                    row[i * 3] as u64,
                    row[i * 3 + 1] as u64,
                    row[i * 3 + 2] as u64,
                )
                .expect("feature rows encode valid workloads")
            })
            .collect()
    }
}

impl Default for Case3Problem {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration for [`generate_dataset`].
#[derive(Debug, Clone)]
pub struct Case3DatasetSpec {
    /// Number of labeled samples.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Case3DatasetSpec {
    fn default() -> Self {
        Self {
            samples: 10_000,
            seed: 0,
        }
    }
}

/// Generates a labeled dataset of scheduling optima.
pub fn generate_dataset(problem: &Case3Problem, spec: &Case3DatasetSpec) -> Dataset {
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut ds = Dataset::new(12, problem.space().len() as u32)
        .expect("space is non-empty and feature dim is 12");
    for _ in 0..spec.samples {
        let workloads = sampler.sample_many(4, &mut rng);
        let result = problem.search(&workloads);
        ds.push(&Case3Problem::features(&workloads), result.label)
            .expect("search labels are within the space");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workloads() -> Vec<GemmWorkload> {
        vec![
            GemmWorkload::new(2048, 512, 1024).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(1024, 32, 512).unwrap(),
            GemmWorkload::new(196, 512, 256).unwrap(),
        ]
    }

    #[test]
    fn search_evaluates_full_space() {
        let p = Case3Problem::new();
        let r = p.search(&workloads());
        assert_eq!(r.evaluations, 1944);
    }

    #[test]
    fn search_is_optimal() {
        let p = Case3Problem::new();
        let wls = workloads();
        let r = p.search(&wls);
        for label in 0..p.space().len() as u32 {
            let c = p.cost_of(&wls, label).unwrap();
            assert!(
                !c.better_than(&p.cost_of(&wls, r.label).unwrap()),
                "label {label} beats the search"
            );
        }
    }

    #[test]
    fn normalized_performance_of_optimum_is_one() {
        let p = Case3Problem::new();
        let wls = workloads();
        let r = p.search(&wls);
        assert!((p.normalized_performance(&wls, r.label) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_schedule_scores_below_one() {
        let p = Case3Problem::new();
        let wls = workloads();
        let mut worst = (0u32, 1.0f64);
        for label in (0..1944).step_by(97) {
            let perf = p.normalized_performance(&wls, label);
            if perf < worst.1 {
                worst = (label, perf);
            }
        }
        assert!(worst.1 < 1.0, "some schedule must be suboptimal");
    }

    #[test]
    fn features_roundtrip() {
        let wls = workloads();
        let f = Case3Problem::features(&wls);
        assert_eq!(Case3Problem::from_features(&f), wls);
    }

    #[test]
    fn three_array_system_searches_its_162_label_space() {
        // The paper's Fig. 4 sketch: 3 arrays => 3^3 · 3! = 162 schedules.
        let p =
            Case3Problem::with_system(airchitect_sim::multi::MultiArraySystem::heterogeneous_3());
        assert_eq!(p.space().len(), 162);
        let wls = vec![
            GemmWorkload::new(1024, 512, 256).unwrap(),
            GemmWorkload::new(64, 64, 64).unwrap(),
            GemmWorkload::new(8, 8, 8).unwrap(),
        ];
        let r = p.search(&wls);
        assert_eq!(r.evaluations, 162);
        // The big workload must land on the big (first) array.
        let (perm, _) = p.space().decode(r.label).unwrap();
        assert_eq!(perm[0], 0, "monolithic array should take the big GEMM");
    }

    #[test]
    fn dataset_generation_is_reproducible() {
        let p = Case3Problem::new();
        let spec = Case3DatasetSpec {
            samples: 5,
            seed: 2,
        };
        let a = generate_dataset(&p, &spec);
        let b = generate_dataset(&p, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert_eq!(a.num_classes(), 1944);
    }
}
