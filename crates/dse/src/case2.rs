//! Case study 2: SRAM buffer sizing.
//!
//! Input space (paper Fig. 8a): 8 integers — buffer size limit (KB), `M`,
//! `N`, `K`, array rows, array cols, dataflow index, and interface bandwidth
//! (bytes/cycle). Output space: the 1000 [`Case2Space`] labels. Ground
//! truth: the configuration with minimum stall cycles, tie-broken by minimum
//! cumulative capacity (paper Sec. III-B), then by lower label.

use airchitect_data::Dataset;
use airchitect_sim::memory::{self, BufferConfig};
use airchitect_sim::{ArrayConfig, Dataflow};
use airchitect_workload::distribution::CnnWorkloadSampler;
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::space::Case2Space;
use crate::SearchResult;

/// One fully-specified buffer-sizing query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Case2Query {
    /// The GEMM workload being run.
    pub workload: GemmWorkload,
    /// The (fixed) array shape.
    pub array: ArrayConfig,
    /// The (fixed) dataflow.
    pub dataflow: Dataflow,
    /// Interface bandwidth in bytes/cycle.
    pub bandwidth: u64,
    /// Total capacity limit across the three buffers, in KB.
    pub limit_kb: u64,
}

impl Case2Query {
    /// Feature vector: `[limit_kb, M, N, K, rows, cols, dataflow, bw]`.
    pub fn features(&self) -> [f32; 8] {
        [
            self.limit_kb as f32,
            self.workload.m() as f32,
            self.workload.n() as f32,
            self.workload.k() as f32,
            self.array.rows() as f32,
            self.array.cols() as f32,
            self.dataflow.index() as f32,
            self.bandwidth as f32,
        ]
    }

    /// Reconstructs a query from a feature row produced by
    /// [`Case2Query::features`].
    ///
    /// # Panics
    ///
    /// Panics if the row encodes an invalid workload, array, or dataflow.
    pub fn from_features(row: &[f32]) -> Self {
        Self {
            limit_kb: row[0] as u64,
            workload: GemmWorkload::new(row[1] as u64, row[2] as u64, row[3] as u64)
                .expect("feature rows encode valid workloads"),
            array: ArrayConfig::new(row[4] as u64, row[5] as u64)
                .expect("feature rows encode valid arrays"),
            dataflow: Dataflow::from_index(row[6] as usize)
                .expect("feature rows encode valid dataflows"),
            bandwidth: row[7] as u64,
        }
    }
}

/// The case-study-2 optimization problem.
#[derive(Debug, Clone, Copy)]
pub struct Case2Problem {
    space: Case2Space,
}

impl Case2Problem {
    /// Creates the problem over the paper's 1000-label space.
    pub fn new() -> Self {
        Self {
            space: Case2Space::paper(),
        }
    }

    /// Creates the problem over a custom space.
    pub fn with_space(space: Case2Space) -> Self {
        Self { space }
    }

    /// The problem's output space.
    pub fn space(&self) -> &Case2Space {
        &self.space
    }

    /// Stall cycles for the configuration denoted by `label`, or `None` if
    /// the label is out of space or its total capacity exceeds the limit.
    pub fn stalls_of(&self, query: &Case2Query, label: u32) -> Option<u64> {
        let (i, f, o) = self.space.decode(label)?;
        if i + f + o > query.limit_kb {
            return None;
        }
        let bufs = BufferConfig::from_kb(i, f, o).expect("space sizes are non-zero");
        memory::stall_cycles(
            &query.workload,
            query.array,
            query.dataflow,
            bufs,
            query.bandwidth,
        )
        .ok()
    }

    /// Exhaustively searches the space for the stall-minimal buffer split
    /// within the capacity limit.
    ///
    /// If the limit admits no configuration (below 3 steps), the smallest
    /// configuration (label 0) is returned — a real system would simply be
    /// built with the minimum buffers.
    pub fn search(&self, query: &Case2Query) -> SearchResult {
        let mut best: Option<(u32, u64, u64)> = None; // (label, stalls, total_kb)
        let mut evals = 0u64;
        for (label, i, f, o) in self.space.iter() {
            let total = i + f + o;
            if total > query.limit_kb {
                continue;
            }
            evals += 1;
            let bufs = BufferConfig::from_kb(i, f, o).expect("space sizes are non-zero");
            let stalls = memory::stall_cycles(
                &query.workload,
                query.array,
                query.dataflow,
                bufs,
                query.bandwidth,
            )
            .expect("bandwidth validated by caller");
            let cand = (label, stalls, total);
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if stalls < b.1 || (stalls == b.1 && total < b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        airchitect_telemetry::metrics::DSE_SEARCHES.inc();
        airchitect_telemetry::metrics::DSE_SEARCH_POINTS.add(evals);
        match best {
            Some((label, cost, _)) => SearchResult {
                label,
                cost,
                evaluations: evals,
            },
            None => SearchResult {
                label: 0,
                cost: self
                    .stalls_of(
                        &Case2Query {
                            limit_kb: u64::MAX,
                            ..*query
                        },
                        0,
                    )
                    .expect("label 0 always decodes"),
                evaluations: evals,
            },
        }
    }

    /// Normalized performance of a predicted label:
    /// `optimal_total_cycles / predicted_total_cycles`, in `[0, 1]`.
    ///
    /// Total cycles (compute + stalls) rather than raw stalls are compared so
    /// that zero-stall ties score 1.0. Infeasible predictions score 0.
    pub fn normalized_performance(&self, query: &Case2Query, predicted: u32) -> f64 {
        let compute =
            airchitect_sim::compute::runtime_cycles(&query.workload, query.array, query.dataflow);
        let best = self.search(query).cost + compute;
        match self.stalls_of(query, predicted) {
            Some(s) => best as f64 / (s + compute) as f64,
            None => 0.0,
        }
    }
}

impl Default for Case2Problem {
    fn default() -> Self {
        Self::new()
    }
}

/// Configuration for [`generate_dataset`].
#[derive(Debug, Clone)]
pub struct Case2DatasetSpec {
    /// Number of labeled samples.
    pub samples: usize,
    /// Inclusive range of `log2(array dim)` for rows and cols.
    pub dim_log2_range: (u32, u32),
    /// Inclusive bandwidth range in bytes/cycle (paper: 1..100).
    pub bandwidth_range: (u64, u64),
    /// Inclusive limit range in KB.
    pub limit_kb_range: (u64, u64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for Case2DatasetSpec {
    /// Paper Sec. III-B: arrays 2^4..2^18 total MACs (dims 2^2..2^9),
    /// bandwidth 1..100, limits that sometimes bind (300..3000 KB).
    fn default() -> Self {
        Self {
            samples: 10_000,
            dim_log2_range: (2, 9),
            bandwidth_range: (1, 100),
            limit_kb_range: (300, 3000),
            seed: 0,
        }
    }
}

/// Generates a labeled dataset of buffer-sizing optima.
pub fn generate_dataset(problem: &Case2Problem, spec: &Case2DatasetSpec) -> Dataset {
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut ds = Dataset::new(8, problem.space().len() as u32)
        .expect("space is non-empty and feature dim is 8");
    let (dlo, dhi) = spec.dim_log2_range;
    assert!(dhi >= dlo, "dim range is inverted");
    for _ in 0..spec.samples {
        let workload = sampler.sample(&mut rng);
        let array = ArrayConfig::new(
            1 << rng.random_range(dlo..=dhi),
            1 << rng.random_range(dlo..=dhi),
        )
        .expect("pow2 dims are non-zero");
        let dataflow = Dataflow::from_index(rng.random_range(0..3)).expect("index < 3");
        let bandwidth = rng.random_range(spec.bandwidth_range.0..=spec.bandwidth_range.1);
        let limit_kb = rng.random_range(spec.limit_kb_range.0..=spec.limit_kb_range.1);
        let query = Case2Query {
            workload,
            array,
            dataflow,
            bandwidth,
            limit_kb,
        };
        let result = problem.search(&query);
        ds.push(&query.features(), result.label)
            .expect("search labels are within the space");
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query() -> Case2Query {
        Case2Query {
            workload: GemmWorkload::new(512, 256, 384).unwrap(),
            array: ArrayConfig::new(16, 16).unwrap(),
            dataflow: Dataflow::Os,
            bandwidth: 4,
            limit_kb: 1500,
        }
    }

    #[test]
    fn search_result_is_within_limit() {
        let p = Case2Problem::new();
        let q = query();
        let r = p.search(&q);
        let (i, f, o) = p.space().decode(r.label).unwrap();
        assert!(i + f + o <= q.limit_kb);
    }

    #[test]
    fn search_is_optimal() {
        let p = Case2Problem::new();
        let q = query();
        let r = p.search(&q);
        for (label, i, f, o) in p.space().iter() {
            if i + f + o > q.limit_kb {
                continue;
            }
            let stalls = p.stalls_of(&q, label).unwrap();
            assert!(r.cost <= stalls, "label {label} beats the search");
        }
    }

    #[test]
    fn tight_limit_falls_back_to_minimum() {
        let p = Case2Problem::new();
        let q = Case2Query {
            limit_kb: 100, // below the 300 KB minimum total
            ..query()
        };
        let r = p.search(&q);
        assert_eq!(r.label, 0);
        assert_eq!(r.evaluations, 0);
    }

    #[test]
    fn stationary_operand_gets_small_buffer() {
        // WS: the filter is stationary; its buffer should sit at the minimum
        // when capacity is scarce.
        let p = Case2Problem::new();
        let q = Case2Query {
            workload: GemmWorkload::new(2048, 512, 1024).unwrap(),
            array: ArrayConfig::new(32, 32).unwrap(),
            dataflow: Dataflow::Ws,
            bandwidth: 4,
            limit_kb: 1200,
        };
        let r = p.search(&q);
        let (_, filter_kb, _) = p.space().decode(r.label).unwrap();
        assert_eq!(filter_kb, 100, "WS should not waste capacity on filters");
    }

    #[test]
    fn normalized_performance_bounds() {
        let p = Case2Problem::new();
        let q = query();
        let r = p.search(&q);
        assert!((p.normalized_performance(&q, r.label) - 1.0).abs() < 1e-12);
        // Every feasible label scores in (0, 1].
        for label in [0u32, 500, 999] {
            let perf = p.normalized_performance(&q, label);
            if p.stalls_of(&q, label).is_some() {
                assert!(perf > 0.0 && perf <= 1.0 + 1e-12);
            } else {
                assert_eq!(perf, 0.0);
            }
        }
    }

    #[test]
    fn features_roundtrip() {
        let q = query();
        let q2 = Case2Query::from_features(&q.features());
        assert_eq!(q, q2);
    }

    #[test]
    fn dataset_generation_is_reproducible_and_valid() {
        let p = Case2Problem::new();
        let spec = Case2DatasetSpec {
            samples: 30,
            ..Default::default()
        };
        let a = generate_dataset(&p, &spec);
        let b = generate_dataset(&p, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for i in 0..a.len() {
            let q = Case2Query::from_features(a.row(i));
            assert!(q.bandwidth >= 1 && q.bandwidth <= 100);
            assert!((2..=9).contains(&(q.array.rows().ilog2())));
        }
    }
}
