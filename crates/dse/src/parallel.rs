//! Multi-threaded dataset generation.
//!
//! Search-labeling is embarrassingly parallel: every sample is an
//! independent (sample workload → exhaustive search) task. On multi-core
//! machines this cuts the offline cost of Fig. 1(b)'s "Step 3" nearly
//! linearly; on the single-core reference machine it degrades gracefully to
//! the sequential path.
//!
//! Determinism: each worker owns an RNG seeded from `(seed, worker index)`
//! and a fixed slice of the sample budget, and shards are concatenated in
//! worker order — so output is a pure function of `(spec, threads)`.
//! (It differs from the sequential generator's stream for the same seed;
//! pick one generator per experiment.)

use airchitect_data::Dataset;
use airchitect_workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::case1::{Case1DatasetSpec, Case1Problem};

/// Generates a case-study-1 dataset on `threads` worker threads.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn generate_case1_parallel(
    problem: &Case1Problem,
    spec: &Case1DatasetSpec,
    threads: usize,
) -> Dataset {
    assert!(threads > 0, "need at least one thread");
    let (lo, hi) = spec.budget_log2_range;
    assert!(lo >= 2, "budgets below 2^2 admit no shapes");
    assert!(hi >= lo, "budget range is inverted");

    let per_worker = split_evenly(spec.samples, threads);
    let shards: Vec<Dataset> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = per_worker
            .iter()
            .enumerate()
            .map(|(worker, &count)| {
                scope.spawn(move |_| {
                    let sampler = CnnWorkloadSampler::new();
                    let mut rng = StdRng::seed_from_u64(
                        spec.seed ^ (worker as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut shard = Dataset::new(4, problem.space().len() as u32)
                        .expect("space is non-empty");
                    for _ in 0..count {
                        let wl = sampler.sample(&mut rng);
                        let budget = 1u64 << rng.random_range(lo..=hi);
                        let result = problem.search(&wl, budget);
                        shard
                            .push(&Case1Problem::features(&wl, budget), result.label)
                            .expect("search labels are within the space");
                    }
                    shard
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
    .expect("crossbeam scope");

    let mut out = Dataset::new(4, problem.space().len() as u32).expect("space is non-empty");
    for shard in shards {
        for i in 0..shard.len() {
            out.push(shard.row(i), shard.label(i))
                .expect("shards share the schema");
        }
    }
    out
}

/// Splits `total` into `parts` chunks whose sizes differ by at most one.
fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let extra = total % parts;
    (0..parts)
        .map(|i| base + usize::from(i < extra))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_evenly_is_fair_and_complete() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_evenly(0, 2), vec![0, 0]);
        for (t, p) in [(17usize, 5usize), (100, 7), (3, 3)] {
            let s = split_evenly(t, p);
            assert_eq!(s.iter().sum::<usize>(), t);
            assert!(s.iter().max().unwrap() - s.iter().min().unwrap() <= 1);
        }
    }

    #[test]
    fn parallel_generation_is_deterministic_per_thread_count() {
        let problem = Case1Problem::new(1 << 9);
        let spec = Case1DatasetSpec {
            samples: 60,
            budget_log2_range: (5, 9),
            seed: 5,
        };
        let a = generate_case1_parallel(&problem, &spec, 3);
        let b = generate_case1_parallel(&problem, &spec, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn parallel_labels_match_fresh_searches() {
        let problem = Case1Problem::new(1 << 9);
        let spec = Case1DatasetSpec {
            samples: 20,
            budget_log2_range: (5, 9),
            seed: 8,
        };
        let ds = generate_case1_parallel(&problem, &spec, 2);
        for i in 0..ds.len() {
            let (wl, budget) = Case1Problem::from_features(ds.row(i));
            assert_eq!(ds.label(i), problem.search(&wl, budget).label);
        }
    }

    #[test]
    fn one_thread_still_works() {
        let problem = Case1Problem::new(1 << 8);
        let spec = Case1DatasetSpec {
            samples: 10,
            budget_log2_range: (5, 8),
            seed: 1,
        };
        let ds = generate_case1_parallel(&problem, &spec, 1);
        assert_eq!(ds.len(), 10);
    }
}
