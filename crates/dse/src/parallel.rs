//! Multi-threaded, fault-tolerant dataset generation.
//!
//! Search-labeling is embarrassingly parallel: every sample is an
//! independent (sample workload → exhaustive search) task. On multi-core
//! machines this cuts the offline cost of Fig. 1(b)'s "Step 3" nearly
//! linearly; on the single-core reference machine it degrades gracefully to
//! the sequential path.
//!
//! Fault tolerance:
//!
//! * Worker bodies run under [`std::panic::catch_unwind`]; a panicking
//!   shard is retried up to [`DEFAULT_MAX_RETRIES`] times with a fresh
//!   derived seed (recorded in the shard's audit record), then retried
//!   sequentially on the calling thread before the whole generation gives
//!   up with a typed [`ParallelError::ShardFailed`].
//! * [`generate_case1_checkpointed`] additionally persists each finished
//!   shard to disk (checksummed, atomically written `.aids` files plus a
//!   manifest); re-running after a crash reuses every intact shard and
//!   regenerates only what is missing or corrupt, producing a
//!   byte-identical final dataset.
//!
//! Determinism: each worker owns an RNG seeded from `(seed, shard index)`
//! and a fixed slice of the sample budget, and shards are concatenated in
//! shard order — so output is a pure function of `(spec, threads)`.
//! (It differs from the sequential generator's stream for the same seed;
//! pick one generator per experiment.)

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use airchitect_data::{codec, DataError, Dataset, Integrity};
use airchitect_telemetry::span::Field;
use airchitect_telemetry::{metrics, sink};
use airchitect_workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::case1::{Case1DatasetSpec, Case1Problem};

/// How many times a panicking shard is re-attempted (with fresh derived
/// seeds) in its worker thread, and again in the sequential fallback.
pub const DEFAULT_MAX_RETRIES: u32 = 2;

/// Error produced by the parallel generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParallelError {
    /// `threads` was zero.
    ZeroThreads,
    /// The budget range admits no shapes or is inverted.
    BadBudgetRange {
        /// Lower `log2(budget)` bound.
        lo: u32,
        /// Upper `log2(budget)` bound.
        hi: u32,
    },
    /// One shard kept panicking through every parallel and sequential
    /// retry.
    ShardFailed {
        /// Index of the failing shard.
        shard: usize,
        /// Total attempts spent on it.
        attempts: u32,
        /// Panic message of the last attempt.
        last_error: String,
    },
    /// A checkpoint directory's manifest does not match the requested
    /// generation (or is malformed).
    ManifestMismatch {
        /// Which field disagreed or failed to parse.
        what: &'static str,
    },
    /// Shard persistence failed.
    Data(DataError),
}

impl std::fmt::Display for ParallelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelError::ZeroThreads => write!(f, "need at least one thread"),
            ParallelError::BadBudgetRange { lo, hi } => {
                write!(f, "bad budget range 2^{lo}..=2^{hi}: need 2 <= lo <= hi")
            }
            ParallelError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "shard {shard} failed after {attempts} attempts: {last_error}"
                )
            }
            ParallelError::ManifestMismatch { what } => {
                write!(f, "checkpoint manifest mismatch: {what}")
            }
            ParallelError::Data(e) => write!(f, "shard i/o: {e}"),
        }
    }
}

impl std::error::Error for ParallelError {}

impl From<DataError> for ParallelError {
    fn from(e: DataError) -> Self {
        ParallelError::Data(e)
    }
}

/// Audit record for one generated (or resumed) shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAudit {
    /// Shard index (shards are concatenated in this order).
    pub shard: usize,
    /// RNG seed the successful attempt actually used.
    pub seed: u64,
    /// Attempts spent (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the shard was loaded from a checkpoint instead of computed.
    pub resumed: bool,
}

/// Result of a checkpointed generation run.
#[derive(Debug, Clone)]
pub struct CheckpointedRun {
    /// The complete dataset, identical to an uninterrupted run.
    pub dataset: Dataset,
    /// Per-shard provenance, in shard order.
    pub shards: Vec<ShardAudit>,
}

/// Seed for `(base, shard, attempt)`: attempt 0 reproduces the historical
/// per-worker stream; retries derive a fresh, recorded seed.
fn attempt_seed(base: u64, shard: usize, attempt: u32) -> u64 {
    let s = base ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if attempt == 0 {
        s
    } else {
        s ^ (attempt as u64).wrapping_mul(0xA076_1D64_78BD_642F)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// `(dataset, seed_used, attempts_spent)` from a successful attempt, or
/// `(attempts_spent, last_panic_message)` when every attempt panicked.
type ShardOutcome = Result<(Dataset, u64, u32), (u32, String)>;

/// Runs `worker(shard, seed, count)` under `catch_unwind` for attempts
/// `first..=last`, returning `(dataset, seed_used, attempts_spent)` on the
/// first success.
fn run_one_shard<F>(
    shard: usize,
    count: usize,
    base_seed: u64,
    first: u32,
    last: u32,
    worker: &F,
) -> ShardOutcome
where
    F: Fn(usize, u64, usize) -> Dataset,
{
    let mut last_error = String::new();
    for attempt in first..=last {
        let seed = attempt_seed(base_seed, shard, attempt);
        match catch_unwind(AssertUnwindSafe(|| {
            airchitect_chaos::fail_point!("dse.shard");
            worker(shard, seed, count)
        })) {
            Ok(ds) => {
                metrics::DSE_SHARDS_COMPLETED.inc();
                sink::event(
                    "dse.shard_done",
                    &[
                        ("shard", Field::U64(shard as u64)),
                        ("attempts", Field::U64(u64::from(attempt) + 1)),
                        ("samples", Field::U64(count as u64)),
                    ],
                );
                return Ok((ds, seed, attempt + 1));
            }
            Err(p) => {
                last_error = panic_message(p);
                metrics::DSE_SHARD_RETRIES.inc();
                sink::event(
                    "dse.shard_panic",
                    &[
                        ("shard", Field::U64(shard as u64)),
                        ("attempt", Field::U64(u64::from(attempt))),
                    ],
                );
            }
        }
    }
    Err((last + 1, last_error))
}

/// Fault-isolated fan-out: one thread per `(shard, count)` work item, each
/// retried in place on panic, with a final sequential retry round on the
/// calling thread for shards that failed every parallel attempt.
///
/// Results come back in `work` order.
fn run_shards<F>(
    work: &[(usize, usize)],
    base_seed: u64,
    max_retries: u32,
    worker: &F,
) -> Result<Vec<(usize, Dataset, u64, u32)>, ParallelError>
where
    F: Fn(usize, u64, usize) -> Dataset + Sync,
{
    let parallel: Vec<ShardOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = work
            .iter()
            .map(|&(shard, count)| {
                scope.spawn(move || run_one_shard(shard, count, base_seed, 0, max_retries, worker))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // The worker itself is panic-proofed; a join error means the
                // retry loop machinery died, which we fold into the same
                // sequential-fallback path.
                Err(p) => Err((max_retries + 1, panic_message(p))),
            })
            .collect()
    });

    let mut out = Vec::with_capacity(work.len());
    for (&(shard, count), result) in work.iter().zip(parallel) {
        match result {
            Ok((ds, seed, attempts)) => out.push((shard, ds, seed, attempts)),
            Err((spent, _)) => {
                // Sequential fallback: same shard, fresh attempt numbers, on
                // this thread.
                match run_one_shard(shard, count, base_seed, spent, spent + max_retries, worker) {
                    Ok((ds, seed, attempts)) => out.push((shard, ds, seed, attempts)),
                    Err((attempts, last_error)) => {
                        return Err(ParallelError::ShardFailed {
                            shard,
                            attempts,
                            last_error,
                        })
                    }
                }
            }
        }
    }
    Ok(out)
}

fn validate(spec: &Case1DatasetSpec, threads: usize) -> Result<(), ParallelError> {
    if threads == 0 {
        return Err(ParallelError::ZeroThreads);
    }
    let (lo, hi) = spec.budget_log2_range;
    if lo < 2 || hi < lo {
        return Err(ParallelError::BadBudgetRange { lo, hi });
    }
    Ok(())
}

/// The real shard body: sample workloads, label them by exhaustive search.
fn shard_worker<'a>(
    problem: &'a Case1Problem,
    spec: &'a Case1DatasetSpec,
) -> impl Fn(usize, u64, usize) -> Dataset + Sync + 'a {
    let (lo, hi) = spec.budget_log2_range;
    move |_shard, seed, count| {
        let sampler = CnnWorkloadSampler::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut shard = Dataset::new(4, problem.space().len() as u32).expect("space is non-empty");
        for _ in 0..count {
            let wl = sampler.sample(&mut rng);
            let budget = 1u64 << rng.random_range(lo..=hi);
            let result = problem.search(&wl, budget);
            shard
                .push(&Case1Problem::features(&wl, budget), result.label)
                .expect("search labels are within the space");
        }
        shard
    }
}

fn concat_shards(classes: u32, shards: impl IntoIterator<Item = Dataset>) -> Dataset {
    let mut out = Dataset::new(4, classes).expect("space is non-empty");
    for shard in shards {
        for i in 0..shard.len() {
            out.push(shard.row(i), shard.label(i))
                .expect("shards share the schema");
        }
    }
    out
}

/// Generates a case-study-1 dataset on `threads` worker threads.
///
/// Worker panics are isolated and retried (see the module docs); output is
/// a pure function of `(spec, threads)`.
///
/// # Errors
///
/// Returns [`ParallelError::ZeroThreads`] / [`ParallelError::BadBudgetRange`]
/// on invalid arguments and [`ParallelError::ShardFailed`] if a shard
/// exhausts every retry.
pub fn generate_case1_parallel(
    problem: &Case1Problem,
    spec: &Case1DatasetSpec,
    threads: usize,
) -> Result<Dataset, ParallelError> {
    validate(spec, threads)?;
    let work: Vec<(usize, usize)> = split_evenly(spec.samples, threads)
        .into_iter()
        .enumerate()
        .collect();
    let worker = shard_worker(problem, spec);
    let shards = run_shards(&work, spec.seed, DEFAULT_MAX_RETRIES, &worker)?;
    Ok(concat_shards(
        problem.space().len() as u32,
        shards.into_iter().map(|(_, ds, _, _)| ds),
    ))
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.aids"))
}

fn meta_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard:04}.meta"))
}

const MANIFEST_NAME: &str = "manifest.txt";

#[derive(Debug, PartialEq, Eq)]
struct Manifest {
    samples: usize,
    lo: u32,
    hi: u32,
    seed: u64,
    shards: usize,
    classes: u32,
}

impl Manifest {
    fn render(&self) -> String {
        format!(
            "airchitect-gen v1\nsamples {}\nbudget_log2 {} {}\nseed {}\nshards {}\nclasses {}\n",
            self.samples, self.lo, self.hi, self.seed, self.shards, self.classes
        )
    }

    fn parse(text: &str) -> Result<Self, ParallelError> {
        let bad = |what| ParallelError::ManifestMismatch { what };
        let mut lines = text.lines();
        if lines.next() != Some("airchitect-gen v1") {
            return Err(bad("unknown manifest header"));
        }
        let mut field = |name: &'static str, what| -> Result<Vec<String>, ParallelError> {
            let line = lines.next().ok_or(bad(what))?;
            let mut parts = line.split_whitespace();
            if parts.next() != Some(name) {
                return Err(bad(what));
            }
            Ok(parts.map(str::to_string).collect())
        };
        let samples = field("samples", "samples line")?;
        let budget = field("budget_log2", "budget_log2 line")?;
        let seed = field("seed", "seed line")?;
        let shards = field("shards", "shards line")?;
        let classes = field("classes", "classes line")?;
        Ok(Manifest {
            samples: samples
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or(bad("samples value"))?,
            lo: budget
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or(bad("budget lo value"))?,
            hi: budget
                .get(1)
                .and_then(|s| s.parse().ok())
                .ok_or(bad("budget hi value"))?,
            seed: seed
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or(bad("seed value"))?,
            shards: shards
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or(bad("shards value"))?,
            classes: classes
                .first()
                .and_then(|s| s.parse().ok())
                .ok_or(bad("classes value"))?,
        })
    }
}

/// Reads a shard's audit sidecar; falls back to "first-try seed" defaults
/// when the sidecar is missing or unreadable (it is advisory).
fn read_meta(dir: &Path, shard: usize, base_seed: u64) -> (u64, u32) {
    let default = (attempt_seed(base_seed, shard, 0), 1);
    let Ok(text) = std::fs::read_to_string(meta_path(dir, shard)) else {
        return default;
    };
    let mut seed = None;
    let mut attempts = None;
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("seed") => seed = parts.next().and_then(|s| s.parse().ok()),
            Some("attempts") => attempts = parts.next().and_then(|s| s.parse().ok()),
            _ => {}
        }
    }
    match (seed, attempts) {
        (Some(s), Some(a)) => (s, a),
        _ => default,
    }
}

/// Generates a case-study-1 dataset with per-shard checkpointing in `dir`.
///
/// Every finished shard is written atomically (checksummed `.aids` plus a
/// `seed`/`attempts` audit sidecar) before the run completes, and a
/// manifest pins the generation spec. Re-invoking with the same arguments
/// after a crash — even a `SIGKILL` mid-shard — reuses all intact shards
/// and regenerates the rest, yielding a dataset byte-identical to an
/// uninterrupted run. Corrupt or truncated shard files are detected by
/// their checksum and silently regenerated (shards are caches).
///
/// # Errors
///
/// All of [`generate_case1_parallel`]'s errors, plus
/// [`ParallelError::ManifestMismatch`] when `dir` holds a checkpoint for a
/// different spec and [`ParallelError::Data`] on shard I/O failures.
pub fn generate_case1_checkpointed(
    problem: &Case1Problem,
    spec: &Case1DatasetSpec,
    threads: usize,
    dir: impl AsRef<Path>,
) -> Result<CheckpointedRun, ParallelError> {
    let dir = dir.as_ref();
    validate(spec, threads)?;
    std::fs::create_dir_all(dir).map_err(|e| DataError::Io(e.to_string()))?;

    let classes = problem.space().len() as u32;
    let counts = split_evenly(spec.samples, threads);
    let (lo, hi) = spec.budget_log2_range;
    let manifest = Manifest {
        samples: spec.samples,
        lo,
        hi,
        seed: spec.seed,
        shards: threads,
        classes,
    };
    let manifest_path = dir.join(MANIFEST_NAME);
    match std::fs::read_to_string(&manifest_path) {
        Ok(text) => {
            let existing = Manifest::parse(&text)?;
            if existing != manifest {
                return Err(ParallelError::ManifestMismatch {
                    what: "directory was checkpointed with a different spec",
                });
            }
        }
        Err(_) => {
            airchitect_data::integrity::atomic_write(&manifest_path, manifest.render().as_bytes())
                .map_err(|e| DataError::Io(e.to_string()))?;
        }
    }

    // Resume: reuse every shard file that is present, checksum-verified,
    // and the right shape.
    let mut slots: Vec<Option<(Dataset, u64, u32, bool)>> = (0..threads).map(|_| None).collect();
    for (shard, &count) in counts.iter().enumerate() {
        if let Ok((ds, Integrity::Verified)) = codec::load_integrity(shard_path(dir, shard)) {
            if ds.len() == count && ds.num_classes() == classes && ds.feature_dim() == 4 {
                let (seed, attempts) = read_meta(dir, shard, spec.seed);
                metrics::DSE_SHARDS_RESUMED.inc();
                sink::event(
                    "dse.shard_resumed",
                    &[
                        ("shard", Field::U64(shard as u64)),
                        ("samples", Field::U64(count as u64)),
                    ],
                );
                slots[shard] = Some((ds, seed, attempts, true));
            }
        }
    }

    let missing: Vec<(usize, usize)> = counts
        .iter()
        .enumerate()
        .filter(|(shard, _)| slots[*shard].is_none())
        .map(|(shard, &count)| (shard, count))
        .collect();
    let worker = shard_worker(problem, spec);
    for (shard, ds, seed, attempts) in
        run_shards(&missing, spec.seed, DEFAULT_MAX_RETRIES, &worker)?
    {
        airchitect_chaos::fail_point!("dse.shard.save", |e: std::io::Error| Err(
            ParallelError::Data(DataError::Io(e.to_string()))
        ));
        codec::save(&ds, shard_path(dir, shard))?;
        airchitect_data::integrity::atomic_write(
            meta_path(dir, shard),
            format!("seed {seed}\nattempts {attempts}\n").as_bytes(),
        )
        .map_err(|e| DataError::Io(e.to_string()))?;
        slots[shard] = Some((ds, seed, attempts, false));
    }

    let mut audits = Vec::with_capacity(threads);
    let mut shards = Vec::with_capacity(threads);
    for (shard, slot) in slots.into_iter().enumerate() {
        let (ds, seed, attempts, resumed) = slot.expect("every shard filled");
        audits.push(ShardAudit {
            shard,
            seed,
            attempts,
            resumed,
        });
        shards.push(ds);
    }
    Ok(CheckpointedRun {
        dataset: concat_shards(classes, shards),
        shards: audits,
    })
}

/// Splits `total` into `parts` chunks whose sizes differ by at most one.
fn split_evenly(total: usize, parts: usize) -> Vec<usize> {
    let base = total / parts;
    let extra = total % parts;
    (0..parts).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem() -> Case1Problem {
        Case1Problem::new(1 << 9)
    }

    fn spec(samples: usize, seed: u64) -> Case1DatasetSpec {
        Case1DatasetSpec {
            samples,
            budget_log2_range: (5, 9),
            seed,
        }
    }

    #[test]
    fn split_evenly_is_fair_and_complete() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(2, 4), vec![1, 1, 0, 0]);
        assert_eq!(split_evenly(0, 2), vec![0, 0]);
        for (t, p) in [(17usize, 5usize), (100, 7), (3, 3)] {
            let s = split_evenly(t, p);
            assert_eq!(s.iter().sum::<usize>(), t);
            assert!(s.iter().max().unwrap() - s.iter().min().unwrap() <= 1);
        }
    }

    /// Only meaningful with the failpoint framework compiled in
    /// (`cargo test -p airchitect-dse --features chaos`).
    #[cfg(feature = "chaos")]
    #[test]
    fn injected_shard_panics_are_retried_and_output_unchanged() {
        let problem = problem();
        let spec = spec(30, 5);
        let reference = generate_case1_parallel(&problem, &spec, 2).unwrap();

        let fired_before = airchitect_chaos::fired("dse.shard");
        airchitect_chaos::configure_str("dse.shard=panic:1:2").unwrap();
        let chaotic = generate_case1_parallel(&problem, &spec, 2).unwrap();
        airchitect_chaos::remove("dse.shard");

        assert_eq!(airchitect_chaos::fired("dse.shard") - fired_before, 2);
        assert_eq!(
            chaotic.len(),
            reference.len(),
            "retried shards must still produce every sample"
        );
    }

    #[test]
    fn parallel_generation_is_deterministic_per_thread_count() {
        let problem = problem();
        let spec = spec(60, 5);
        let a = generate_case1_parallel(&problem, &spec, 3).unwrap();
        let b = generate_case1_parallel(&problem, &spec, 3).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn parallel_labels_match_fresh_searches() {
        let problem = problem();
        let spec = spec(20, 8);
        let ds = generate_case1_parallel(&problem, &spec, 2).unwrap();
        for i in 0..ds.len() {
            let (wl, budget) = Case1Problem::from_features(ds.row(i));
            assert_eq!(ds.label(i), problem.search(&wl, budget).label);
        }
    }

    #[test]
    fn one_thread_still_works() {
        let problem = Case1Problem::new(1 << 8);
        let spec = Case1DatasetSpec {
            samples: 10,
            budget_log2_range: (5, 8),
            seed: 1,
        };
        let ds = generate_case1_parallel(&problem, &spec, 1).unwrap();
        assert_eq!(ds.len(), 10);
    }

    #[test]
    fn invalid_arguments_are_typed_errors() {
        let p = problem();
        assert_eq!(
            generate_case1_parallel(&p, &spec(10, 0), 0).unwrap_err(),
            ParallelError::ZeroThreads
        );
        let mut bad = spec(10, 0);
        bad.budget_log2_range = (1, 9);
        assert!(matches!(
            generate_case1_parallel(&p, &bad, 2).unwrap_err(),
            ParallelError::BadBudgetRange { lo: 1, hi: 9 }
        ));
        bad.budget_log2_range = (9, 5);
        assert!(matches!(
            generate_case1_parallel(&p, &bad, 2).unwrap_err(),
            ParallelError::BadBudgetRange { lo: 9, hi: 5 }
        ));
    }

    #[test]
    fn panicking_shard_is_retried_with_fresh_seed() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let failures = AtomicU32::new(0);
        let worker = |shard: usize, seed: u64, count: usize| -> Dataset {
            // Shard 1 panics on its first two attempts.
            if shard == 1 && failures.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("injected shard failure");
            }
            let mut ds = Dataset::new(1, 2).unwrap();
            for _ in 0..count {
                ds.push(&[seed as f32], 0).unwrap();
            }
            ds
        };
        let work = vec![(0usize, 3usize), (1, 3), (2, 3)];
        let out = run_shards(&work, 7, DEFAULT_MAX_RETRIES, &worker).unwrap();
        assert_eq!(out.len(), 3);
        let (shard, ds, seed, attempts) = &out[1];
        assert_eq!(*shard, 1);
        assert_eq!(*attempts, 3);
        assert_eq!(*seed, attempt_seed(7, 1, 2));
        assert_ne!(
            *seed,
            attempt_seed(7, 1, 0),
            "retry must derive a fresh seed"
        );
        assert_eq!(ds.len(), 3);
        // Healthy shards succeed on their first try with the base seed.
        assert_eq!(out[0].3, 1);
        assert_eq!(out[0].2, attempt_seed(7, 0, 0));
    }

    #[test]
    fn persistently_failing_shard_reaches_sequential_fallback_then_errors() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts_seen = AtomicU32::new(0);
        let always_fail = |shard: usize, _seed: u64, _count: usize| -> Dataset {
            if shard == 0 {
                attempts_seen.fetch_add(1, Ordering::SeqCst);
                panic!("this shard never succeeds");
            }
            Dataset::new(1, 2).unwrap()
        };
        let err = run_shards(&[(0, 1)], 3, 1, &always_fail).unwrap_err();
        match err {
            ParallelError::ShardFailed {
                shard,
                attempts,
                last_error,
            } => {
                assert_eq!(shard, 0);
                assert_eq!(attempts, 4); // 2 parallel + 2 sequential-fallback
                assert!(last_error.contains("never succeeds"));
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
        assert_eq!(attempts_seen.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn sequential_fallback_rescues_a_shard_that_fails_in_parallel_phase() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let calls = AtomicU32::new(0);
        // Fails the first 3 attempts (the whole parallel phase at
        // max_retries=2), succeeds on the 4th — i.e. only in the fallback.
        let worker = |_shard: usize, _seed: u64, _count: usize| -> Dataset {
            if calls.fetch_add(1, Ordering::SeqCst) < 3 {
                panic!("flaky");
            }
            Dataset::new(1, 2).unwrap()
        };
        let out = run_shards(&[(0, 0)], 11, DEFAULT_MAX_RETRIES, &worker).unwrap();
        assert_eq!(out[0].3, 4);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("airchitect-ckpt-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn checkpointed_run_matches_plain_parallel_run() {
        let p = problem();
        let s = spec(30, 21);
        let dir = temp_dir("match");
        let plain = generate_case1_parallel(&p, &s, 3).unwrap();
        let ckpt = generate_case1_checkpointed(&p, &s, 3, &dir).unwrap();
        assert_eq!(ckpt.dataset, plain);
        assert!(ckpt.shards.iter().all(|a| !a.resumed && a.attempts == 1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_reuses_intact_shards_and_is_identical() {
        let p = problem();
        let s = spec(30, 22);
        let dir = temp_dir("resume");
        let first = generate_case1_checkpointed(&p, &s, 3, &dir).unwrap();
        // Simulate a crash that lost one shard mid-write: delete it.
        std::fs::remove_file(shard_path(&dir, 1)).unwrap();
        let second = generate_case1_checkpointed(&p, &s, 3, &dir).unwrap();
        assert_eq!(first.dataset, second.dataset);
        assert!(second.shards[0].resumed);
        assert!(!second.shards[1].resumed);
        assert!(second.shards[2].resumed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_shard_is_regenerated_not_trusted() {
        let p = problem();
        let s = spec(30, 23);
        let dir = temp_dir("corrupt");
        let first = generate_case1_checkpointed(&p, &s, 3, &dir).unwrap();
        // Bit-flip shard 2 on disk.
        let path = shard_path(&dir, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let second = generate_case1_checkpointed(&p, &s, 3, &dir).unwrap();
        assert_eq!(first.dataset, second.dataset);
        assert!(
            !second.shards[2].resumed,
            "corrupt shard must be regenerated"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mismatched_spec_is_rejected() {
        let p = problem();
        let dir = temp_dir("mismatch");
        generate_case1_checkpointed(&p, &spec(30, 24), 3, &dir).unwrap();
        let err = generate_case1_checkpointed(&p, &spec(40, 24), 3, &dir).unwrap_err();
        assert!(matches!(err, ParallelError::ManifestMismatch { .. }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_roundtrips_and_rejects_garbage() {
        let m = Manifest {
            samples: 10,
            lo: 5,
            hi: 9,
            seed: 42,
            shards: 3,
            classes: 7,
        };
        assert_eq!(Manifest::parse(&m.render()).unwrap(), m);
        assert!(Manifest::parse("not a manifest").is_err());
        assert!(Manifest::parse("airchitect-gen v1\nsamples x\n").is_err());
    }
}
