//! Quantized output spaces and label codecs (paper Fig. 8).
//!
//! Formulating DSE as classification requires a *finite, enumerable* output
//! space with a stable `config ID <-> parameters` bijection. Each case study
//! gets a `*Space` type owning that bijection:
//!
//! | space | parameters | size (paper) |
//! |-------|------------|--------------|
//! | [`Case1Space`] | array rows, cols, dataflow | 459 (budget 2^18) |
//! | [`Case2Space`] | 3 buffer sizes, 100 KB steps | 1000 |
//! | [`Case3Space`] | workload permutation + per-array dataflow | 1944 (4 arrays) |

use airchitect_sim::{ArrayConfig, Dataflow};
use serde::{Deserialize, Serialize};

/// Output space of case study 1: every power-of-two array shape within a MAC
/// budget, crossed with the three dataflows.
///
/// Label layout: `label = shape_index · 3 + dataflow_index`, with shapes in
/// the row-major order produced by [`ArrayConfig::enumerate_pow2`].
///
/// # Example
///
/// ```
/// use airchitect_dse::space::Case1Space;
///
/// let space = Case1Space::new(1 << 18);
/// assert_eq!(space.len(), 459); // the paper's output-space size
/// let (array, df) = space.decode(0).expect("label 0 exists");
/// assert_eq!(space.encode(array, df), Some(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case1Space {
    mac_budget: u64,
    shapes: Vec<ArrayConfig>,
}

impl Case1Space {
    /// Enumerates the space for `mac_budget` total MAC units.
    pub fn new(mac_budget: u64) -> Self {
        Self {
            mac_budget,
            shapes: ArrayConfig::enumerate_pow2(mac_budget),
        }
    }

    /// The MAC budget the space was enumerated for.
    pub fn mac_budget(&self) -> u64 {
        self.mac_budget
    }

    /// Recovers the space from its label count (`3·(n−1)·n/2` labels for a
    /// `2^n` budget). Returns `None` if `len` is not a valid size.
    ///
    /// Labels are only meaningful inside the exact space they were produced
    /// in — enumeration order changes with the budget — so persisted models
    /// must rebuild their space from the class count, not from a guess.
    pub fn from_len(len: usize) -> Option<Self> {
        (2..=63u32)
            .map(|n| Case1Space::new(1u64 << n))
            .find(|s| s.len() == len)
    }

    /// Number of labels (`shapes · 3`).
    pub fn len(&self) -> usize {
        self.shapes.len() * 3
    }

    /// Whether the space is empty (budget below 4 MACs).
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// The enumerated shapes.
    pub fn shapes(&self) -> &[ArrayConfig] {
        &self.shapes
    }

    /// Decodes a label into `(array, dataflow)`.
    pub fn decode(&self, label: u32) -> Option<(ArrayConfig, Dataflow)> {
        let shape = self.shapes.get(label as usize / 3)?;
        let df = Dataflow::from_index(label as usize % 3)?;
        Some((*shape, df))
    }

    /// Encodes `(array, dataflow)` into a label.
    pub fn encode(&self, array: ArrayConfig, dataflow: Dataflow) -> Option<u32> {
        let idx = self.shapes.iter().position(|&s| s == array)?;
        Some((idx * 3 + dataflow.index()) as u32)
    }

    /// Iterates `(label, array, dataflow)` over the whole space.
    pub fn iter(&self) -> impl Iterator<Item = (u32, ArrayConfig, Dataflow)> + '_ {
        self.shapes.iter().enumerate().flat_map(|(i, &shape)| {
            Dataflow::ALL
                .iter()
                .map(move |&df| ((i * 3 + df.index()) as u32, shape, df))
        })
    }
}

/// Output space of case study 2: three buffer sizes, each quantized to
/// `steps` multiples of `step_kb` (paper: 10 steps of 100 KB = 1000 labels).
///
/// Label layout: `label = i · steps² + f · steps + o` where `i`, `f`, `o`
/// index the IFMAP, Filter, and OFMAP sizes (`size = (index + 1) · step_kb`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case2Space {
    step_kb: u64,
    steps: u32,
}

impl Case2Space {
    /// The paper's space: 100 KB steps up to 1 MB.
    pub fn paper() -> Self {
        Self {
            step_kb: 100,
            steps: 10,
        }
    }

    /// A custom quantization.
    ///
    /// # Panics
    ///
    /// Panics if `step_kb` or `steps` is zero.
    pub fn new(step_kb: u64, steps: u32) -> Self {
        assert!(step_kb > 0, "step_kb must be positive");
        assert!(steps > 0, "steps must be positive");
        Self { step_kb, steps }
    }

    /// Quantization step in KB.
    pub fn step_kb(&self) -> u64 {
        self.step_kb
    }

    /// Steps per buffer.
    pub fn steps(&self) -> u32 {
        self.steps
    }

    /// Number of labels (`steps³`).
    pub fn len(&self) -> usize {
        (self.steps as usize).pow(3)
    }

    /// Always false: the constructor enforces at least one step.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes a label into `(ifmap_kb, filter_kb, ofmap_kb)`.
    pub fn decode(&self, label: u32) -> Option<(u64, u64, u64)> {
        if label as usize >= self.len() {
            return None;
        }
        let s = self.steps;
        let o = label % s;
        let f = (label / s) % s;
        let i = label / (s * s);
        Some((
            (i as u64 + 1) * self.step_kb,
            (f as u64 + 1) * self.step_kb,
            (o as u64 + 1) * self.step_kb,
        ))
    }

    /// Encodes buffer sizes (KB) into a label; sizes must be exact multiples
    /// of the step within range.
    pub fn encode(&self, ifmap_kb: u64, filter_kb: u64, ofmap_kb: u64) -> Option<u32> {
        let idx = |kb: u64| -> Option<u32> {
            if kb == 0 || !kb.is_multiple_of(self.step_kb) {
                return None;
            }
            let i = (kb / self.step_kb - 1) as u32;
            (i < self.steps).then_some(i)
        };
        let (i, f, o) = (idx(ifmap_kb)?, idx(filter_kb)?, idx(ofmap_kb)?);
        Some(i * self.steps * self.steps + f * self.steps + o)
    }

    /// Iterates `(label, ifmap_kb, filter_kb, ofmap_kb)` over the space.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64, u64, u64)> + '_ {
        (0..self.len() as u32).map(|l| {
            let (i, f, o) = self.decode(l).expect("label < len");
            (l, i, f, o)
        })
    }
}

/// Output space of case study 3: an assignment of `x` workloads to `x`
/// arrays (a permutation) plus a dataflow per array.
///
/// Label layout: `label = perm_index · 3^x + dataflow_code`, with
/// permutations in lexicographic order and `dataflow_code` a base-3 number
/// whose most significant digit is array 0's dataflow.
///
/// For `x = 4` this is the paper's 1944-label space (Fig. 8d).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Case3Space {
    arrays: usize,
    perms: Vec<Vec<usize>>,
}

impl Case3Space {
    /// Builds the space for `arrays` arrays/workloads.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is 0 or greater than 8 (the space grows as
    /// `3^x · x!`; 8 arrays is already 264 M labels).
    pub fn new(arrays: usize) -> Self {
        assert!(
            (1..=8).contains(&arrays),
            "arrays must be in 1..=8, got {arrays}"
        );
        let mut perms = Vec::new();
        let mut items: Vec<usize> = (0..arrays).collect();
        permute(&mut items, 0, &mut perms);
        perms.sort();
        Self { arrays, perms }
    }

    /// The paper's 4-array space (1944 labels).
    pub fn paper() -> Self {
        Self::new(4)
    }

    /// Number of arrays.
    pub fn arrays(&self) -> usize {
        self.arrays
    }

    /// Number of labels (`3^x · x!`).
    pub fn len(&self) -> usize {
        self.perms.len() * 3usize.pow(self.arrays as u32)
    }

    /// Always false: at least one array is enforced.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes a label into `(permutation, dataflows)`: `permutation[i]` is
    /// the workload index run by array `i`.
    pub fn decode(&self, label: u32) -> Option<(Vec<usize>, Vec<Dataflow>)> {
        let pow = 3u32.pow(self.arrays as u32);
        let perm = self.perms.get(label as usize / pow as usize)?.clone();
        let mut code = label % pow;
        let mut dfs = vec![Dataflow::Os; self.arrays];
        for slot in dfs.iter_mut().rev() {
            *slot = Dataflow::from_index((code % 3) as usize).expect("mod 3 < 3");
            code /= 3;
        }
        Some((perm, dfs))
    }

    /// Encodes `(permutation, dataflows)` into a label.
    pub fn encode(&self, permutation: &[usize], dataflows: &[Dataflow]) -> Option<u32> {
        if permutation.len() != self.arrays || dataflows.len() != self.arrays {
            return None;
        }
        let perm_idx = self.perms.iter().position(|p| p == permutation)?;
        let mut code = 0u32;
        for df in dataflows {
            code = code * 3 + df.index() as u32;
        }
        Some(perm_idx as u32 * 3u32.pow(self.arrays as u32) + code)
    }
}

fn permute(items: &mut Vec<usize>, start: usize, out: &mut Vec<Vec<usize>>) {
    if start == items.len() {
        out.push(items.clone());
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute(items, start + 1, out);
        items.swap(start, i);
    }
}

/// Size of the scheduling space for `x` arrays: `3^x · x!` (paper Fig. 7b).
///
/// Returns `None` on overflow (beyond ~x = 20 for u64).
pub fn scheduling_space_size(x: u32) -> Option<u64> {
    let mut fact: u64 = 1;
    for i in 2..=x as u64 {
        fact = fact.checked_mul(i)?;
    }
    3u64.checked_pow(x)?.checked_mul(fact)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case1_paper_size() {
        assert_eq!(Case1Space::new(1 << 18).len(), 459);
    }

    #[test]
    fn case1_roundtrip_all_labels() {
        let s = Case1Space::new(1 << 10);
        for label in 0..s.len() as u32 {
            let (a, df) = s.decode(label).unwrap();
            assert_eq!(s.encode(a, df), Some(label));
        }
        assert_eq!(s.decode(s.len() as u32), None);
    }

    #[test]
    fn case1_iter_covers_space() {
        let s = Case1Space::new(1 << 8);
        let labels: Vec<u32> = s.iter().map(|(l, _, _)| l).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.len());
    }

    #[test]
    fn case2_paper_size() {
        assert_eq!(Case2Space::paper().len(), 1000);
    }

    #[test]
    fn case2_roundtrip_all_labels() {
        let s = Case2Space::paper();
        for label in 0..s.len() as u32 {
            let (i, f, o) = s.decode(label).unwrap();
            assert!((100..=1000).contains(&i));
            assert_eq!(s.encode(i, f, o), Some(label));
        }
        assert_eq!(s.decode(1000), None);
    }

    #[test]
    fn case2_encode_rejects_off_grid() {
        let s = Case2Space::paper();
        assert_eq!(s.encode(150, 100, 100), None);
        assert_eq!(s.encode(0, 100, 100), None);
        assert_eq!(s.encode(1100, 100, 100), None);
    }

    #[test]
    fn case2_label_layout_matches_paper_fig8c() {
        // Fig 8c: config 0 = (100, 100, 100); config 1 = (100, 100, 200);
        // config 999 = (1000, 1000, 1000).
        let s = Case2Space::paper();
        assert_eq!(s.decode(0), Some((100, 100, 100)));
        assert_eq!(s.decode(1), Some((100, 100, 200)));
        assert_eq!(s.decode(999), Some((1000, 1000, 1000)));
    }

    #[test]
    fn case3_paper_size() {
        assert_eq!(Case3Space::paper().len(), 1944);
    }

    #[test]
    fn case3_roundtrip_all_labels() {
        let s = Case3Space::new(3);
        for label in 0..s.len() as u32 {
            let (perm, dfs) = s.decode(label).unwrap();
            assert_eq!(s.encode(&perm, &dfs), Some(label));
        }
        assert_eq!(s.decode(s.len() as u32), None);
    }

    #[test]
    fn case3_label_layout_matches_paper_fig8d() {
        // Fig 8d: config 0 = identity permutation, all OS; config 1 flips
        // the last array's dataflow to WS; config 3 flips array 2 to WS.
        let s = Case3Space::paper();
        let (perm, dfs) = s.decode(0).unwrap();
        assert_eq!(perm, vec![0, 1, 2, 3]);
        assert!(dfs.iter().all(|&d| d == Dataflow::Os));
        let (_, dfs) = s.decode(1).unwrap();
        assert_eq!(
            dfs,
            vec![Dataflow::Os, Dataflow::Os, Dataflow::Os, Dataflow::Ws]
        );
        let (_, dfs) = s.decode(3).unwrap();
        assert_eq!(
            dfs,
            vec![Dataflow::Os, Dataflow::Os, Dataflow::Ws, Dataflow::Os]
        );
    }

    #[test]
    fn case3_permutations_are_valid() {
        let s = Case3Space::new(4);
        for label in (0..s.len() as u32).step_by(81) {
            let (perm, _) = s.decode(label).unwrap();
            let mut sorted = perm.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn scheduling_space_growth_matches_paper_formula() {
        // Paper Fig 7b: N = 3^x · x!.
        assert_eq!(scheduling_space_size(1), Some(3));
        assert_eq!(scheduling_space_size(2), Some(18));
        assert_eq!(scheduling_space_size(3), Some(162)); // quoted in Sec III-C
        assert_eq!(scheduling_space_size(4), Some(1944)); // quoted in Sec IV-B
        assert_eq!(scheduling_space_size(5), Some(29160));
        assert!(scheduling_space_size(40).is_none()); // overflow guarded
    }
}
