//! Case study 1: array shape and dataflow prediction.
//!
//! Input space (paper Fig. 8a): 4 integers — the MAC-unit budget (as a power
//! of two) and the GEMM dimensions `M`, `N`, `K`. Output space: the
//! [`Case1Space`] labels. Ground truth: exhaustive search minimizing the
//! analytical runtime, tie-broken by fewer MAC units (cheaper array), then by
//! lower label for determinism.

use airchitect_data::Dataset;
use airchitect_sim::{compute, Dataflow};
use airchitect_workload::distribution::CnnWorkloadSampler;
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::space::Case1Space;
use crate::SearchResult;

/// The case-study-1 optimization problem over a fixed output space.
#[derive(Debug, Clone)]
pub struct Case1Problem {
    space: Case1Space,
}

impl Case1Problem {
    /// Creates the problem with an output space enumerated for
    /// `max_mac_budget` (the paper uses `2^18`).
    pub fn new(max_mac_budget: u64) -> Self {
        Self {
            space: Case1Space::new(max_mac_budget),
        }
    }

    /// The problem's output space.
    pub fn space(&self) -> &Case1Space {
        &self.space
    }

    /// Exhaustively searches the space for the runtime-optimal array shape
    /// and dataflow, considering only shapes within `mac_budget`.
    ///
    /// # Panics
    ///
    /// Panics if no shape fits `mac_budget` (budget below 4 MACs).
    pub fn search(&self, workload: &GemmWorkload, mac_budget: u64) -> SearchResult {
        let mut best: Option<(u32, u64, u64)> = None; // (label, cycles, macs)
        let mut evals = 0u64;
        for (label, array, df) in self.space.iter() {
            if array.macs() > mac_budget {
                continue;
            }
            evals += 1;
            let cycles = compute::runtime_cycles(workload, array, df);
            let cand = (label, cycles, array.macs());
            best = Some(match best {
                None => cand,
                Some(b) => {
                    if cycles < b.1 || (cycles == b.1 && array.macs() < b.2) {
                        cand
                    } else {
                        b
                    }
                }
            });
        }
        let (label, cost, _) = best.expect("mac_budget admits at least one shape");
        airchitect_telemetry::metrics::DSE_SEARCHES.inc();
        airchitect_telemetry::metrics::DSE_SEARCH_POINTS.add(evals);
        SearchResult {
            label,
            cost,
            evaluations: evals,
        }
    }

    /// Runtime of the configuration denoted by `label`, or `None` if the
    /// label is out of space or over `mac_budget` (an infeasible prediction).
    pub fn runtime_of(&self, workload: &GemmWorkload, mac_budget: u64, label: u32) -> Option<u64> {
        let (array, df) = self.space.decode(label)?;
        if array.macs() > mac_budget {
            return None;
        }
        Some(compute::runtime_cycles(workload, array, df))
    }

    /// Normalized performance of a predicted label:
    /// `optimal_runtime / predicted_runtime`, in `[0, 1]`.
    ///
    /// Infeasible predictions (over budget or out of space) score 0 — the
    /// "catastrophic" bucket of paper Fig. 10(g).
    pub fn normalized_performance(
        &self,
        workload: &GemmWorkload,
        mac_budget: u64,
        predicted: u32,
    ) -> f64 {
        let best = self.search(workload, mac_budget).cost;
        match self.runtime_of(workload, mac_budget, predicted) {
            Some(t) => best as f64 / t as f64,
            None => 0.0,
        }
    }

    /// Feature vector for one sample: `[log2(budget), M, N, K]`.
    pub fn features(workload: &GemmWorkload, mac_budget: u64) -> [f32; 4] {
        [
            (mac_budget as f64).log2() as f32,
            workload.m() as f32,
            workload.n() as f32,
            workload.k() as f32,
        ]
    }

    /// Reconstructs `(workload, mac_budget)` from a feature row produced by
    /// [`Case1Problem::features`].
    ///
    /// # Panics
    ///
    /// Panics if the row has fewer than 4 entries or encodes a zero
    /// dimension.
    pub fn from_features(row: &[f32]) -> (GemmWorkload, u64) {
        let budget = 1u64 << (row[0].round() as u32);
        let wl = GemmWorkload::new(row[1] as u64, row[2] as u64, row[3] as u64)
            .expect("feature rows encode valid workloads");
        (wl, budget)
    }
}

/// Configuration for [`generate_dataset`].
#[derive(Debug, Clone)]
pub struct Case1DatasetSpec {
    /// Number of labeled samples to generate.
    pub samples: usize,
    /// Inclusive range of `log2(MAC budget)` to sample uniformly.
    pub budget_log2_range: (u32, u32),
    /// RNG seed (datasets are fully reproducible).
    pub seed: u64,
}

impl Default for Case1DatasetSpec {
    /// 10^4 samples, budgets 2^5..2^15 (the Fig. 5d sweep), seed 0.
    fn default() -> Self {
        Self {
            samples: 10_000,
            budget_log2_range: (5, 15),
            seed: 0,
        }
    }
}

/// Generates a labeled dataset by running the exhaustive search on sampled
/// workloads (paper Sec. IV-B, "the optimal parameter label is determined by
/// conventional search using simulations").
///
/// Features are the raw integers of [`Case1Problem::features`]; quantization
/// and normalization happen downstream in the model front-ends.
pub fn generate_dataset(problem: &Case1Problem, spec: &Case1DatasetSpec) -> Dataset {
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut ds = Dataset::new(4, problem.space().len() as u32)
        .expect("space is non-empty and feature dim is 4");
    let (lo, hi) = spec.budget_log2_range;
    assert!(lo >= 2, "budgets below 2^2 admit no shapes");
    assert!(hi >= lo, "budget range is inverted");
    for _ in 0..spec.samples {
        let wl = sampler.sample(&mut rng);
        let budget = 1u64 << rng.random_range(lo..=hi);
        let result = problem.search(&wl, budget);
        ds.push(&Case1Problem::features(&wl, budget), result.label)
            .expect("search labels are within the space");
    }
    ds
}

/// Per-dataflow frequency table of optimal shapes (paper Fig. 5a-c): for
/// each `(rows, cols, dataflow)` that ever wins, how often it wins.
pub fn optimal_shape_frequencies(
    problem: &Case1Problem,
    workloads: &[GemmWorkload],
    mac_budget: u64,
) -> Vec<((u64, u64, Dataflow), usize)> {
    use std::collections::BTreeMap;
    let mut freq: BTreeMap<(u64, u64, usize), usize> = BTreeMap::new();
    for wl in workloads {
        let r = problem.search(wl, mac_budget);
        let (array, df) = problem.space().decode(r.label).expect("label in space");
        *freq
            .entry((array.rows(), array.cols(), df.index()))
            .or_insert(0) += 1;
    }
    freq.into_iter()
        .map(|((r, c, d), n)| {
            (
                (r, c, Dataflow::from_index(d).expect("stored index < 3")),
                n,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl(m: u64, n: u64, k: u64) -> GemmWorkload {
        GemmWorkload::new(m, n, k).unwrap()
    }

    #[test]
    fn search_is_exhaustive_within_budget() {
        let p = Case1Problem::new(1 << 10);
        let w = wl(100, 200, 300);
        let r = p.search(&w, 1 << 8);
        // Check optimality against a brute re-scan.
        for (label, array, df) in p.space().iter() {
            if array.macs() > 1 << 8 {
                continue;
            }
            assert!(
                r.cost <= compute::runtime_cycles(&w, array, df),
                "label {label} beats search"
            );
        }
        let (arr, _) = p.space().decode(r.label).unwrap();
        assert!(arr.macs() <= 1 << 8);
    }

    #[test]
    fn search_counts_evaluations() {
        let p = Case1Problem::new(1 << 10);
        let r = p.search(&wl(8, 8, 8), 1 << 10);
        // Full space within budget: every (shape, dataflow) pair.
        assert_eq!(r.evaluations, p.space().len() as u64);
    }

    #[test]
    fn normalized_performance_of_optimum_is_one() {
        let p = Case1Problem::new(1 << 10);
        let w = wl(300, 70, 40);
        let r = p.search(&w, 1 << 9);
        assert!((p.normalized_performance(&w, 1 << 9, r.label) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn over_budget_prediction_scores_zero() {
        let p = Case1Problem::new(1 << 12);
        let w = wl(64, 64, 64);
        // Find a label whose shape exceeds a 2^4 budget.
        let big = p
            .space()
            .iter()
            .find(|(_, a, _)| a.macs() > 1 << 4)
            .unwrap()
            .0;
        assert_eq!(p.normalized_performance(&w, 1 << 4, big), 0.0);
    }

    #[test]
    fn features_roundtrip() {
        let w = wl(123, 456, 789);
        let f = Case1Problem::features(&w, 1 << 9);
        let (w2, b2) = Case1Problem::from_features(&f);
        assert_eq!(w, w2);
        assert_eq!(b2, 1 << 9);
    }

    #[test]
    fn dataset_generation_is_reproducible() {
        let p = Case1Problem::new(1 << 12);
        let spec = Case1DatasetSpec {
            samples: 100,
            budget_log2_range: (5, 12),
            seed: 11,
        };
        let a = generate_dataset(&p, &spec);
        let b = generate_dataset(&p, &spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.num_classes(), p.space().len() as u32);
    }

    #[test]
    fn dataset_labels_are_feasible() {
        let p = Case1Problem::new(1 << 12);
        let spec = Case1DatasetSpec {
            samples: 50,
            budget_log2_range: (5, 12),
            seed: 3,
        };
        let ds = generate_dataset(&p, &spec);
        for i in 0..ds.len() {
            let (wl, budget) = Case1Problem::from_features(ds.row(i));
            let (array, _) = p.space().decode(ds.label(i)).unwrap();
            assert!(array.macs() <= budget, "label over budget for {wl}");
        }
    }

    #[test]
    fn shape_frequencies_sum_to_workload_count() {
        let p = Case1Problem::new(1 << 9);
        let wls: Vec<GemmWorkload> = (1..=20).map(|i| wl(i * 13, i * 7, i * 3)).collect();
        let freq = optimal_shape_frequencies(&p, &wls, 1 << 9);
        let total: usize = freq.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 20);
    }
}
