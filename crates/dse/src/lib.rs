//! Search-based design-space exploration for the three AIrchitect case
//! studies.
//!
//! This crate is the "conventional flow" of paper Fig. 1(a): for each
//! workload it evaluates every point of a quantized output space with the
//! analytical simulator and returns the optimal configuration ID. Those IDs
//! are both the *ground truth labels* for training the recommendation
//! network and the *baseline* the learned optimizer is compared against
//! (search time vs. constant-time inference, paper Fig. 1).
//!
//! * [`space`] — the quantized output spaces and their label codecs
//!   (paper Fig. 8: 459 / 1000 / 1944 labels),
//! * [`case1`] — array shape & dataflow prediction,
//! * [`case2`] — SRAM buffer sizing,
//! * [`case3`] — multi-array scheduling,
//!
//! # Example
//!
//! ```
//! use airchitect_dse::case1::Case1Problem;
//! use airchitect_workload::GemmWorkload;
//!
//! let problem = Case1Problem::new(1 << 18);
//! let wl = GemmWorkload::new(512, 64, 256)?;
//! let result = problem.search(&wl, 1 << 10);
//! let (array, dataflow) = problem.space().decode(result.label).expect("label in range");
//! assert!(array.macs() <= 1 << 10);
//! println!("optimal: {array} {dataflow} at {} cycles", result.cost);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod case1;
pub mod case2;
pub mod case3;
pub mod parallel;
pub mod search_algos;
pub mod space;

/// Outcome of one exhaustive search: the winning label and its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Config ID of the optimum in the case study's output space.
    pub label: u32,
    /// Cost of the optimum (cycles for CS1/CS3 makespan, stall cycles for
    /// CS2).
    pub cost: u64,
    /// Number of candidate configurations evaluated.
    pub evaluations: u64,
}
