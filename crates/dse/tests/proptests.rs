//! Property-based tests for the output-space codecs and searchers.

use airchitect_dse::case1::Case1Problem;
use airchitect_dse::space::{scheduling_space_size, Case1Space, Case2Space, Case3Space};
use airchitect_workload::GemmWorkload;
use proptest::prelude::*;

proptest! {
    /// Case-1 labels roundtrip for any budget exponent.
    #[test]
    fn case1_labels_roundtrip(budget_log2 in 2u32..=24, label_frac in 0.0f64..1.0) {
        let space = Case1Space::new(1u64 << budget_log2);
        prop_assume!(!space.is_empty());
        let label = ((space.len() - 1) as f64 * label_frac) as u32;
        let (array, df) = space.decode(label).expect("label < len");
        prop_assert_eq!(space.encode(array, df), Some(label));
        prop_assert!(array.macs() <= 1u64 << budget_log2);
    }

    /// The closed form 3·(n−1)·n/2 matches the enumeration.
    #[test]
    fn case1_size_closed_form(budget_log2 in 2u64..=30) {
        let space = Case1Space::new(1u64 << budget_log2);
        let expected = 3 * (budget_log2 - 1) * budget_log2 / 2;
        prop_assert_eq!(space.len() as u64, expected);
    }

    /// Case-2 labels roundtrip for arbitrary quantizations.
    #[test]
    fn case2_labels_roundtrip(step in 1u64..=500, steps in 1u32..=12, label_frac in 0.0f64..1.0) {
        let space = Case2Space::new(step, steps);
        let label = ((space.len() - 1) as f64 * label_frac) as u32;
        let (i, f, o) = space.decode(label).expect("label < len");
        prop_assert_eq!(space.encode(i, f, o), Some(label));
        for v in [i, f, o] {
            prop_assert!(v >= step && v <= step * steps as u64);
            prop_assert_eq!(v % step, 0);
        }
    }

    /// Case-3 labels decode to valid permutations and roundtrip.
    #[test]
    fn case3_labels_roundtrip(arrays in 1usize..=5, label_frac in 0.0f64..1.0) {
        let space = Case3Space::new(arrays);
        let label = ((space.len() - 1) as f64 * label_frac) as u32;
        let (perm, dfs) = space.decode(label).expect("label < len");
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..arrays).collect::<Vec<_>>());
        prop_assert_eq!(dfs.len(), arrays);
        prop_assert_eq!(space.encode(&perm, &dfs), Some(label));
    }

    /// Space size matches the paper's 3^x · x! formula.
    #[test]
    fn case3_size_matches_formula(arrays in 1usize..=6) {
        let space = Case3Space::new(arrays);
        prop_assert_eq!(
            space.len() as u64,
            scheduling_space_size(arrays as u32).expect("small x")
        );
    }

    /// The search optimum never loses to any individual configuration, and
    /// relaxing the budget never hurts.
    #[test]
    fn case1_search_optimal_and_budget_monotone(
        m in 1u64..=2048, n in 1u64..=2048, k in 1u64..=2048,
        budget_log2 in 4u32..=12,
    ) {
        let problem = Case1Problem::new(1 << 12);
        let wl = GemmWorkload::new(m, n, k).expect("dims >= 1");
        let tight = problem.search(&wl, 1u64 << budget_log2);
        let loose = problem.search(&wl, 1u64 << (budget_log2 + 2));
        prop_assert!(loose.cost <= tight.cost, "bigger budget can only help");
        // Perf of the optimum is exactly 1.
        let perf = problem.normalized_performance(&wl, 1u64 << budget_log2, tight.label);
        prop_assert!((perf - 1.0).abs() < 1e-12);
    }
}
