//! Entry point of the `airchitect` CLI.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = airchitect_cli::run(&argv) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
}
