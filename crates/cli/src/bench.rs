//! `airchitect bench` — reproducible benchmark harness for the compute
//! engine.
//!
//! Three suites, each emitting one JSON artifact:
//!
//! * `train` — CS1 training epochs: the pre-PR naive loop (reference
//!   kernels, per-batch allocations) against the engine path (blocked
//!   multi-threaded kernels, zero-allocation workspace). The baseline is
//!   recorded in the same file as the engine numbers so the speedup is
//!   self-contained.
//! * `infer` — batched inference ([`AirchitectModel::predict`]) and
//!   constant-time single queries ([`Recommender::recommend_array`]).
//! * `dse` — conventional search throughput: exhaustive
//!   [`Case1Problem::search`] plus the sampling strategies in
//!   `dse::search_algos`.
//! * `serve` — loadgen against an in-process `airchitect-serve` server:
//!   concurrent keep-alive clients, mid-run hot-reloads, client-side
//!   p50/p95/p99 latency and sustained QPS.
//! * `chaos` — (chaos-enabled builds only, not part of `all`) loadgen
//!   under a scripted failpoint schedule; gates on zero wrong answers,
//!   zero hangs, a bounded 5xx fraction, and post-fault recovery.
//! * `cluster` — (not part of `all`) loadgen against a supervised
//!   multi-replica cluster while one replica is SIGKILLed mid-run; gates
//!   on zero failed client requests, bounded re-admission of the killed
//!   replica, and aggregate QPS at least matching a single replica.
//! * `online` — (not part of `all`) closed-loop drift soak: a CNN-trained
//!   model serves a query distribution that drifts to skinny LLM-style
//!   GEMMs under shadow-oracle sampling; when the drift policy fires, the
//!   misprediction log is replayed into a fine-tune + hot-reload cycle.
//!   Gates on oracle agreement strictly improving after at least one
//!   automatic cycle, zero failed requests, and zero 5xx.
//! * `rollout` — (not part of `all`) safe-rollout soak: corrupted,
//!   regressed, and good checkpoints are pushed through the versioned
//!   registry and `/v1/reload` under live load. Gates on the bad versions
//!   being rejected/rolled back and quarantined, the good one promoting,
//!   zero failed requests, and the bad candidate's answer fraction
//!   staying within the canary split.
//!
//! JSON is hand-rolled (flat objects, fixed keys) to stay within the
//! approved dependency set; `--quick` shrinks every suite for CI smoke
//! runs.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::pipeline::{run_case1, run_case2, run_case3, PipelineConfig};
use airchitect::{persist, Recommender};
use airchitect_serve::client::{HttpClient, RetryClient};
use airchitect_serve::{Cluster, ClusterConfig, ServeConfig, Server};
use airchitect_data::Dataset;
use airchitect_dse::case1::Case1Problem;
use airchitect_dse::case2::Case2Query;
use airchitect_dse::case3::Case3Problem;
use airchitect_dse::space::Case1Space;
use airchitect_online::{fine_tune, read_dir, DriftStats, FineTuneOptions, OnlinePolicy};
use airchitect_telemetry::metrics;
use airchitect_dse::search_algos::{GeneticSearch, HillClimb, RandomSearch, SearchStrategy};
use airchitect_nn::loss::softmax_cross_entropy;
use airchitect_nn::network::Sequential;
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::{fit, TrainConfig};
use airchitect_tensor::gemm::{self, Kernel};
use airchitect_tensor::{ops, qgemm, Matrix};
use airchitect_sim::{ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

use crate::args::Args;
use crate::CliError;

/// CS1 output-space size at the paper's default 2^18 MAC budget.
const CS1_CLASSES: u32 = 459;
/// MAC budget whose output space has [`CS1_CLASSES`] labels.
const CS1_BUDGET_LOG2: u32 = 18;
/// Embedding vocabulary of the paper's quantizer.
const VOCAB: usize = 64;

/// Entry point for `airchitect bench`.
pub fn bench(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "suite",
        "out-dir",
        "threads",
        "samples",
        "epochs",
        "quick",
        "trace",
        "metrics-out",
    ])?;
    let tele = crate::commands::telemetry_begin(&args, "bench")?;
    tele.finish(bench_inner(&args))
}

fn bench_inner(args: &Args) -> Result<(), CliError> {
    let suite = args.optional("suite").unwrap_or("all");
    let out_dir = args.optional("out-dir").unwrap_or(".").to_string();
    let threads = args.u64_or("threads", 4)? as usize;
    if threads == 0 {
        return Err(CliError::Usage("`--threads` must be at least 1".into()));
    }
    let quick = args.flag("quick");
    let samples = args.u64_or("samples", if quick { 1024 } else { 8192 })? as usize;
    let epochs = args.u64_or("epochs", if quick { 1 } else { 3 })? as usize;
    if samples == 0 || epochs == 0 {
        return Err(CliError::Usage(
            "`--samples` and `--epochs` must be at least 1".into(),
        ));
    }

    match suite {
        "train" => bench_train(&out_dir, samples, epochs, threads)?,
        "infer" => bench_infer(&out_dir, quick)?,
        "dse" => bench_dse(&out_dir, quick)?,
        "serve" => bench_serve(&out_dir, quick)?,
        // Deliberately not part of `all`: it needs a chaos-enabled build
        // and measures robustness gates, not throughput.
        "chaos" => bench_chaos(&out_dir, quick)?,
        // Also not part of `all`: it spawns replica child processes and
        // gates on failure-recovery behavior, not raw throughput.
        "cluster" => bench_cluster(&out_dir, quick)?,
        // Not part of `all`: the evented-listener scale gate holds tens of
        // thousands of sockets open and is its own CI job.
        "c10k" => bench_c10k(&out_dir, quick)?,
        // Not part of `all`: a multi-minute soak that trains, drifts, and
        // fine-tunes — the online-learning loop gate, its own CI job.
        "online" => bench_online(&out_dir, quick)?,
        // Not part of `all`: the safe-rollout gate — canary evaluation,
        // quarantine, and promotion under live load, its own CI job.
        "rollout" => bench_rollout(&out_dir, quick)?,
        "all" => {
            bench_train(&out_dir, samples, epochs, threads)?;
            bench_infer(&out_dir, quick)?;
            bench_dse(&out_dir, quick)?;
            bench_serve(&out_dir, quick)?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown suite `{other}` (train|infer|dse|serve|chaos|cluster|c10k|online|rollout|all)"
            )))
        }
    }
    Ok(())
}

fn write_json(out_dir: &str, name: &str, body: &str) -> Result<(), CliError> {
    let path = format!("{out_dir}/{name}");
    std::fs::write(&path, body).map_err(|e| CliError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    println!("wrote {path}");
    Ok(())
}

/// A synthetic CS1-shaped training set: 4 pre-binned features (what the
/// quantizer feeds the embedding layer) and labels over the CS1 space.
/// Throughput depends only on the shapes, so synthetic rows benchmark the
/// same arithmetic the pipeline performs without paying for dataset
/// generation.
fn cs1_training_set(samples: usize) -> Dataset {
    let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut row = [0.0f32; 4];
    for _ in 0..samples {
        for v in &mut row {
            *v = rng.random_range(0..VOCAB as u32) as f32;
        }
        ds.push(&row, rng.random_range(0..CS1_CLASSES)).unwrap();
    }
    ds
}

/// The paper's CS1 recommendation network shape.
fn cs1_network() -> Sequential {
    Sequential::embedding_mlp(4, VOCAB, 16, 256, CS1_CLASSES as usize, 42)
}

/// One epoch exactly as the pre-PR trainer ran it: reference kernels are
/// selected by the caller, every batch allocates its gather buffers, the
/// loss materializes a fresh gradient matrix, and the optimizer collects
/// `Vec<&mut Param>`.
fn naive_epoch(
    network: &mut Sequential,
    ds: &Dataset,
    indices: &mut Vec<usize>,
    rng: &mut StdRng,
    optimizer: &mut Optimizer,
    batch_size: usize,
) -> f64 {
    indices.shuffle(rng);
    let mut loss_sum = 0.0f64;
    for chunk in indices.chunks(batch_size) {
        let dim = ds.feature_dim();
        let mut data = Vec::with_capacity(chunk.len() * dim);
        let mut labels = Vec::with_capacity(chunk.len());
        for &i in chunk {
            data.extend_from_slice(ds.row(i));
            labels.push(ds.label(i));
        }
        let x = Matrix::from_vec(chunk.len(), dim, data);
        let logits = network.forward(&x, true);
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        let _ = ops::argmax_rows(&logits);
        network.backward(&grad);
        let _grad_sq: f32 = network
            .params_mut()
            .iter()
            .map(|p| p.grad.iter().map(|g| g * g).sum::<f32>())
            .sum();
        optimizer.step(network.params_mut());
        loss_sum += loss as f64;
    }
    loss_sum
}

fn bench_train(
    out_dir: &str,
    samples: usize,
    epochs: usize,
    threads: usize,
) -> Result<(), CliError> {
    const BATCH: usize = 256;
    println!("bench train: CS1 model, {samples} samples, {epochs} epoch(s), batch {BATCH}");
    let ds = cs1_training_set(samples);

    // Baseline: the pre-PR loop on the pre-PR kernels.
    gemm::set_kernel(Kernel::Reference);
    let mut network = cs1_network();
    let mut optimizer = Optimizer::adam(1e-3);
    let mut indices: Vec<usize> = (0..ds.len()).collect();
    let mut rng = StdRng::seed_from_u64(0);
    let t0 = Instant::now();
    for _ in 0..epochs {
        naive_epoch(
            &mut network,
            &ds,
            &mut indices,
            &mut rng,
            &mut optimizer,
            BATCH,
        );
    }
    let baseline_secs = t0.elapsed().as_secs_f64() / epochs as f64;
    println!("  baseline (reference kernel, 1 thread): {baseline_secs:.3} s/epoch");

    // Engine: the new trainer on the blocked kernels.
    gemm::set_kernel(Kernel::Blocked);
    let mut network = cs1_network();
    let cfg = TrainConfig {
        epochs,
        batch_size: BATCH,
        threads,
        ..Default::default()
    };
    let t0 = Instant::now();
    fit(&mut network, &ds, None, &cfg).map_err(|e| CliError::Run(e.to_string()))?;
    let engine_secs = t0.elapsed().as_secs_f64() / epochs as f64;
    let speedup = baseline_secs / engine_secs;
    println!("  engine   (blocked kernel, {threads} thread(s)): {engine_secs:.3} s/epoch");
    println!("  speedup: {speedup:.2}x");

    let body = format!(
        "{{\n  \"suite\": \"train\",\n  \"case\": \"cs1\",\n  \"samples\": {samples},\n  \
         \"batch_size\": {BATCH},\n  \"epochs_timed\": {epochs},\n  \
         \"baseline\": {{ \"kernel\": \"reference\", \"threads\": 1, \
         \"secs_per_epoch\": {baseline_secs:.6} }},\n  \
         \"engine\": {{ \"kernel\": \"blocked\", \"threads\": {threads}, \
         \"secs_per_epoch\": {engine_secs:.6} }},\n  \"speedup\": {speedup:.4}\n}}\n"
    );
    write_json(out_dir, "BENCH_train.json", &body)
}

fn bench_infer(out_dir: &str, quick: bool) -> Result<(), CliError> {
    let rows = if quick { 2_000 } else { 20_000 };
    let queries = if quick { 200 } else { 2_000 };
    println!("bench infer: {rows} batched rows, {queries} single queries");

    // A raw-feature CS1 dataset ([log2 budget, M, N, K]) and a briefly
    // trained model (throughput does not depend on accuracy).
    let problem = Case1Problem::new(1 << CS1_BUDGET_LOG2);
    let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..rows {
        let wl = random_workload(&mut rng);
        let budget = 1u64 << rng.random_range(5..=CS1_BUDGET_LOG2);
        ds.push(
            &Case1Problem::features(&wl, budget),
            rng.random_range(0..CS1_CLASSES),
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: CS1_CLASSES,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).map_err(|e| CliError::Run(e.to_string()))?;

    let t0 = Instant::now();
    let preds = model.predict(&ds);
    let batch_secs = t0.elapsed().as_secs_f64();
    let rows_per_sec = preds.len() as f64 / batch_secs;
    println!("  batched:      {rows_per_sec:.0} rows/s");

    let recommender = Recommender::new(model).map_err(|e| CliError::Run(e.to_string()))?;
    // The same pooled queries feed both paths, so the f32 mean and the
    // quantized percentiles measure identical work.
    let pool: Vec<GemmWorkload> = (0..queries).map(|_| random_workload(&mut rng)).collect();

    let t0 = Instant::now();
    for wl in &pool {
        recommender
            .recommend_array(&problem, wl, 1 << 10)
            .map_err(|e| CliError::Run(e.to_string()))?;
    }
    let query_us = t0.elapsed().as_secs_f64() * 1e6 / queries as f64;
    println!("  single query (f32):  {query_us:.1} us mean");

    // Quantized hot path: per-query latencies after a short warmup. The
    // warmup grows the thread-local arena and populates the memo cache,
    // mirroring a server's steady state.
    for wl in pool.iter().take(64) {
        recommender
            .recommend_array_fast(&problem, wl, 1 << 10)
            .map_err(|e| CliError::Run(e.to_string()))?;
    }
    // Each query is timed as the minimum of three back-to-back runs:
    // the min strips scheduler preemption and timer jitter (which would
    // otherwise dominate single-digit-microsecond samples on a shared
    // box) while keeping real per-query variation — rank-walk depth,
    // decode cost — visible in the distribution. The repeats also make
    // each query's memoized embedding row hot, mirroring a server's
    // steady state.
    let mut lat_ns: Vec<u64> = Vec::with_capacity(pool.len());
    for wl in &pool {
        let mut best = u64::MAX;
        for _ in 0..3 {
            let t = Instant::now();
            recommender
                .recommend_array_fast(&problem, wl, 1 << 10)
                .map_err(|e| CliError::Run(e.to_string()))?;
            best = best.min(t.elapsed().as_nanos() as u64);
        }
        lat_ns.push(best);
    }
    lat_ns.sort_unstable();
    let p50_us = percentile(&lat_ns, 0.50) as f64 / 1000.0;
    let p99_us = percentile(&lat_ns, 0.99) as f64 / 1000.0;
    let avx2 = qgemm::avx2_available();
    println!("  single query (int8): p50 {p50_us:.2} us, p99 {p99_us:.2} us (avx2: {avx2})");

    // Quantized-vs-f32 top-1 agreement across all three case studies,
    // each with a properly trained pipeline model. (The throughput model
    // above is trained on noise: its logits are near-ties, so it would
    // understate the agreement a deployed — confidently trained — model
    // sees.)
    let n_eval = if quick { 400 } else { 2_000 };
    let pcfg = PipelineConfig {
        samples: if quick { 600 } else { 2_500 },
        epochs: if quick { 6 } else { 10 },
        batch_size: 64,
        seed: 41,
        stratify: false,
        threads: 1,
    };
    let rec1 = Recommender::new(run_case1(&pcfg, (5, CS1_BUDGET_LOG2)).model)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let eval1: Vec<Vec<f32>> = (0..n_eval)
        .map(|_| {
            let wl = random_workload(&mut rng);
            let budget = 1u64 << rng.random_range(5..=CS1_BUDGET_LOG2);
            Case1Problem::features(&wl, budget).to_vec()
        })
        .collect();
    let agreement_cs1 = top1_agreement(&rec1, &eval1)?;

    let rec2 = Recommender::new(run_case2(&pcfg).model)
        .map_err(|e| CliError::Run(e.to_string()))?;
    // Query ranges mirror `Case2DatasetSpec::default()`.
    let eval2: Vec<Vec<f32>> = (0..n_eval)
        .map(|_| {
            Case2Query {
                workload: random_workload(&mut rng),
                array: ArrayConfig::new(
                    1 << rng.random_range(2..=9u32),
                    1 << rng.random_range(2..=9u32),
                )
                .expect("pow2 dims are non-zero"),
                dataflow: Dataflow::from_index(rng.random_range(0..3)).expect("index < 3"),
                bandwidth: rng.random_range(1..=100u64),
                limit_kb: rng.random_range(300..=3000u64),
            }
            .features()
            .to_vec()
        })
        .collect();
    let agreement_cs2 = top1_agreement(&rec2, &eval2)?;

    // CS3 labels cost a full schedule search per sample, so its training
    // set is smaller.
    let cfg3 = PipelineConfig {
        samples: if quick { 300 } else { 1_200 },
        ..pcfg
    };
    let rec3 = Recommender::new(run_case3(&cfg3).model)
        .map_err(|e| CliError::Run(e.to_string()))?;
    let eval3: Vec<Vec<f32>> = (0..n_eval)
        .map(|_| {
            let wls: Vec<GemmWorkload> = (0..4).map(|_| random_workload(&mut rng)).collect();
            Case3Problem::features(&wls).to_vec()
        })
        .collect();
    let agreement_cs3 = top1_agreement(&rec3, &eval3)?;
    println!(
        "  top-1 agreement: cs1 {agreement_cs1:.4}, cs2 {agreement_cs2:.4}, \
         cs3 {agreement_cs3:.4} ({n_eval} rows each)"
    );

    let body = format!(
        "{{\n  \"suite\": \"infer\",\n  \"case\": \"cs1\",\n  \"rows\": {rows},\n  \
         \"batch_rows_per_sec\": {rows_per_sec:.2},\n  \"queries\": {queries},\n  \
         \"single_query_us\": {query_us:.3},\n  \"single_query_p50_us\": {p50_us:.3},\n  \
         \"single_query_p99_us\": {p99_us:.3},\n  \"avx2\": {avx2},\n  \
         \"agreement_cs1\": {agreement_cs1:.4},\n  \"agreement_cs2\": {agreement_cs2:.4},\n  \
         \"agreement_cs3\": {agreement_cs3:.4}\n}}\n"
    );
    write_json(out_dir, "BENCH_infer.json", &body)?;

    // Gates (after the artifact is written, so a failing run still leaves
    // its numbers behind for debugging).
    let min_agreement = agreement_cs1.min(agreement_cs2).min(agreement_cs3);
    if min_agreement < 0.995 {
        return Err(CliError::Run(format!(
            "quantized top-1 agreement {min_agreement:.4} is below the 0.995 gate \
             (cs1 {agreement_cs1:.4}, cs2 {agreement_cs2:.4}, cs3 {agreement_cs3:.4})"
        )));
    }
    // The scalar fallback is correct but not held to the latency budget.
    if avx2 && p50_us > 10.0 {
        return Err(CliError::Run(format!(
            "quantized single-query p50 {p50_us:.2} us exceeds the 10 us gate"
        )));
    }
    Ok(())
}

/// Fraction of feature rows where the int8 network's top-1 label matches
/// the f32 network's.
fn top1_agreement(rec: &Recommender, rows: &[Vec<f32>]) -> Result<f64, CliError> {
    let mut agree = 0usize;
    for row in rows {
        let quant = rec
            .quantized_top1(row)
            .ok_or_else(|| CliError::Run("model did not compile to the int8 path".into()))?;
        if quant == rec.model().predict_row(row) {
            agree += 1;
        }
    }
    Ok(agree as f64 / rows.len().max(1) as f64)
}

fn random_workload(rng: &mut StdRng) -> GemmWorkload {
    GemmWorkload::new(
        rng.random_range(16..2048u64),
        rng.random_range(16..2048u64),
        rng.random_range(16..2048u64),
    )
    .expect("dims are positive")
}

fn bench_dse(out_dir: &str, quick: bool) -> Result<(), CliError> {
    let queries = if quick { 5 } else { 50 };
    let budget_log2 = CS1_BUDGET_LOG2;
    println!("bench dse: {queries} queries per strategy, budget 2^{budget_log2}");
    let problem = Case1Problem::new(1 << budget_log2);
    let mut rng = StdRng::seed_from_u64(23);
    let workloads: Vec<GemmWorkload> = (0..queries).map(|_| random_workload(&mut rng)).collect();

    let mut entries = String::new();
    let mut measure = |name: &str, f: &mut dyn FnMut(&GemmWorkload) -> u64| {
        let t0 = Instant::now();
        let mut evals = 0u64;
        for wl in &workloads {
            evals += f(wl);
        }
        let secs = t0.elapsed().as_secs_f64();
        let qps = queries as f64 / secs;
        let eps = evals as f64 / secs;
        println!("  {name:<11} {qps:>9.1} queries/s  {eps:>11.0} evals/s");
        entries.push_str(&format!(
            "  \"{name}\": {{ \"queries_per_sec\": {qps:.2}, \"evals_per_sec\": {eps:.2} }},\n"
        ));
    };

    let budget = 1u64 << budget_log2;
    measure("exhaustive", &mut |wl| {
        problem.search(wl, budget).evaluations
    });
    measure("random", &mut |wl| {
        RandomSearch {
            evaluations: 30,
            seed: 0,
        }
        .search(&problem, wl, budget)
        .evaluations
    });
    measure("hill_climb", &mut |wl| {
        HillClimb {
            restarts: 3,
            seed: 0,
        }
        .search(&problem, wl, budget)
        .evaluations
    });
    measure("genetic", &mut |wl| {
        GeneticSearch::default()
            .search(&problem, wl, budget)
            .evaluations
    });
    drop(measure);

    let body = format!(
        "{{\n  \"suite\": \"dse\",\n  \"case\": \"cs1\",\n  \"queries\": {queries},\n  \
         \"budget_log2\": {budget_log2},\n{entries}  \"space_size\": {}\n}}\n",
        problem.space().len()
    );
    write_json(out_dir, "BENCH_dse.json", &body)
}

/// Nearest-rank percentile over an already-sorted latency list.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// A briefly-trained CS1 model on raw recommend-path features, persisted
/// to a temp `.airm` so the server can load (and hot-reload) it.
fn serve_model_file(rows: usize) -> Result<std::path::PathBuf, CliError> {
    let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
    let mut rng = StdRng::seed_from_u64(29);
    for _ in 0..rows {
        let wl = random_workload(&mut rng);
        let budget = 1u64 << rng.random_range(5..=CS1_BUDGET_LOG2);
        ds.push(
            &Case1Problem::features(&wl, budget),
            rng.random_range(0..CS1_CLASSES),
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: CS1_CLASSES,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).map_err(|e| CliError::Run(e.to_string()))?;
    let path = std::env::temp_dir().join(format!(
        "airchitect-bench-serve-{}.airm",
        std::process::id()
    ));
    persist::save(&model, &path).map_err(|e| CliError::Run(e.to_string()))?;
    Ok(path)
}

/// Loadgen against an in-process server: `CLIENTS` keep-alive connections
/// hammer `/v1/recommend/array` while a background thread hot-reloads the
/// model; any 5xx fails the bench (the hot-reload-under-load guarantee).
fn bench_serve(out_dir: &str, quick: bool) -> Result<(), CliError> {
    const CLIENTS: usize = 8;
    let requests: usize = if quick { 2_000 } else { 20_000 };
    let timeout = Duration::from_secs(30);
    println!(
        "bench serve: {requests} requests over {CLIENTS} keep-alive clients, reloads mid-run"
    );

    let model_path = serve_model_file(if quick { 2_000 } else { 8_000 })?;
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_paths: vec![model_path.clone()],
        workers: 4,
        queue_depth: 1024,
        batch_max: 16,
        cache_capacity: 4096,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // A pool of distinct bodies; clients stride through it, so later
    // passes over the pool hit the response cache while early ones miss.
    let mut rng = StdRng::seed_from_u64(31);
    let pool: Arc<Vec<String>> = Arc::new(
        (0..512)
            .map(|_| {
                let wl = random_workload(&mut rng);
                format!(
                    "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{}}}",
                    wl.m(),
                    wl.n(),
                    wl.k(),
                    1u64 << 10
                )
            })
            .collect(),
    );

    // Background hot-reloader: keeps swapping the model while the load
    // runs, to prove reloads are invisible to clients.
    let done = Arc::new(AtomicBool::new(false));
    let reloader = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || -> Result<u64, String> {
            let mut client =
                HttpClient::connect(addr, timeout).map_err(|e| e.to_string())?;
            let mut reloads = 0u64;
            // At least one reload always lands, even if the whole load
            // finishes inside the first sleep interval.
            loop {
                let resp = client.post("/v1/reload", "").map_err(|e| e.to_string())?;
                if resp.status != 200 {
                    return Err(format!("reload failed with {}: {}", resp.status, resp.body));
                }
                reloads += 1;
                if done.load(Ordering::Acquire) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(reloads)
        })
    };

    let server_errors = Arc::new(AtomicU64::new(0));
    let cache_hits = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|tid| {
            let pool = Arc::clone(&pool);
            let server_errors = Arc::clone(&server_errors);
            let cache_hits = Arc::clone(&cache_hits);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    HttpClient::connect(addr, timeout).map_err(|e| e.to_string())?;
                let mut latencies = Vec::with_capacity(requests / CLIENTS);
                for i in 0..requests / CLIENTS {
                    let body = &pool[(tid + i * 7) % pool.len()];
                    let sent = Instant::now();
                    let resp = client
                        .post("/v1/recommend/array", body)
                        .map_err(|e| e.to_string())?;
                    latencies.push(sent.elapsed().as_micros() as u64);
                    if resp.status >= 500 {
                        server_errors.fetch_add(1, Ordering::Relaxed);
                    } else if resp.status != 200 {
                        return Err(format!(
                            "unexpected {}: {}",
                            resp.status, resp.body
                        ));
                    } else if resp.body.starts_with("{\"cached\":true") {
                        cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for handle in clients {
        let thread_latencies = handle
            .join()
            .map_err(|_| CliError::Run("loadgen client panicked".into()))?
            .map_err(CliError::Run)?;
        latencies.extend(thread_latencies);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let reloads = reloader
        .join()
        .map_err(|_| CliError::Run("reloader panicked".into()))?
        .map_err(CliError::Run)?;

    // Graceful shutdown must return Ok from Server::run.
    let mut shut = HttpClient::connect(addr, timeout).map_err(|e| CliError::Run(e.to_string()))?;
    let resp = shut
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    server_thread
        .join()
        .map_err(|_| CliError::Run("server thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("server exited with: {e}")))?;
    let _ = std::fs::remove_file(&model_path);

    let errors = server_errors.load(Ordering::Relaxed);
    if errors > 0 {
        return Err(CliError::Run(format!(
            "{errors} server-side 5xx responses under hot-reload load"
        )));
    }
    latencies.sort_unstable();
    let total = latencies.len();
    let qps = total as f64 / wall_secs;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let hits = cache_hits.load(Ordering::Relaxed);
    println!("  {qps:.0} req/s over {total} requests ({reloads} reloads, {hits} cache hits)");
    println!("  latency p50 {p50} us, p95 {p95} us, p99 {p99} us");

    let body = format!(
        "{{\n  \"suite\": \"serve\",\n  \"case\": \"cs1\",\n  \"requests\": {total},\n  \
         \"clients\": {CLIENTS},\n  \"reloads\": {reloads},\n  \"cache_hits\": {hits},\n  \
         \"server_errors\": {errors},\n  \"qps\": {qps:.2},\n  \"p50_us\": {p50},\n  \
         \"p95_us\": {p95},\n  \"p99_us\": {p99}\n}}\n"
    );
    write_json(out_dir, "BENCH_serve.json", &body)
}

/// MAC budget of the online suite's CS1 space: small enough that the exact
/// oracle scores a sampled query in well under a millisecond, large enough
/// (135 labels) that a drifted model has real room to be wrong.
const ONLINE_BUDGET_LOG2: u32 = 10;

/// The online suite's recommend body for one workload.
fn online_body(wl: &GemmWorkload) -> String {
    format!(
        "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{}}}",
        wl.m(),
        wl.n(),
        wl.k(),
        1u64 << ONLINE_BUDGET_LOG2
    )
}

/// CNN-shaped GEMMs: the balanced-ish dims convolution layers lower to.
/// The base model is trained (on oracle labels) over this regime only.
fn online_cnn_workload(rng: &mut StdRng) -> GemmWorkload {
    GemmWorkload::new(
        rng.random_range(64..512u64),
        rng.random_range(64..512u64),
        rng.random_range(32..384u64),
    )
    .expect("dims are positive")
}

/// Drifted traffic: skinny LLM-decode-style GEMMs (tiny M, huge N/K)
/// whose optimal arrays look nothing like the CNN regime's.
fn online_drifted_workload(rng: &mut StdRng) -> GemmWorkload {
    GemmWorkload::new(
        rng.random_range(1..8u64),
        rng.random_range(1024..8192u64),
        rng.random_range(1024..8192u64),
    )
    .expect("dims are positive")
}

/// Trains the base model on *oracle-labeled* CNN-shaped rows (so its
/// initial agreement is real, not random) and persists it to a temp
/// `.airm` the server can load and hot-reload.
fn online_model_file(
    problem: &Case1Problem,
    classes: u32,
    rows: usize,
    epochs: usize,
) -> Result<std::path::PathBuf, CliError> {
    let budget = 1u64 << ONLINE_BUDGET_LOG2;
    let mut ds = Dataset::new(4, classes).unwrap();
    let mut rng = StdRng::seed_from_u64(37);
    for _ in 0..rows {
        let wl = online_cnn_workload(&mut rng);
        ds.push(
            &Case1Problem::features(&wl, budget),
            problem.search(&wl, budget).label,
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: classes,
            train: TrainConfig {
                epochs,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).map_err(|e| CliError::Run(e.to_string()))?;
    let path = std::env::temp_dir().join(format!(
        "airchitect-bench-online-{}.airm",
        std::process::id()
    ));
    persist::save(&model, &path).map_err(|e| CliError::Run(e.to_string()))?;
    Ok(path)
}

/// Fire-and-count loadgen: `clients` keep-alive connections stride through
/// `pool`; non-200s count as failed (5xx separately), transport errors
/// count as failed and reconnect. Returns the number of requests issued.
fn online_loadgen(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    pool: &Arc<Vec<String>>,
    failed: &Arc<AtomicU64>,
    fivexx: &Arc<AtomicU64>,
) -> Result<u64, CliError> {
    let timeout = Duration::from_secs(30);
    let per_client = requests / clients;
    let handles: Vec<_> = (0..clients)
        .map(|tid| {
            let pool = Arc::clone(pool);
            let failed = Arc::clone(failed);
            let fivexx = Arc::clone(fivexx);
            std::thread::spawn(move || {
                let mut client = match HttpClient::connect(addr, timeout) {
                    Ok(c) => c,
                    Err(_) => {
                        failed.fetch_add(per_client as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..per_client {
                    let body = &pool[(tid + i * 7) % pool.len()];
                    match client.post("/v1/recommend/array", body) {
                        Ok(resp) if resp.status == 200 => {}
                        Ok(resp) => {
                            failed.fetch_add(1, Ordering::Relaxed);
                            if resp.status >= 500 {
                                fivexx.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(_) => {
                            // The socket may be dead; reconnect for the rest
                            // of this client's share.
                            failed.fetch_add(1, Ordering::Relaxed);
                            match HttpClient::connect(addr, timeout) {
                                Ok(c) => client = c,
                                Err(_) => {
                                    failed.fetch_add(
                                        (per_client - i - 1) as u64,
                                        Ordering::Relaxed,
                                    );
                                    return;
                                }
                            }
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle
            .join()
            .map_err(|_| CliError::Run("online loadgen client panicked".into()))?;
    }
    Ok((per_client * clients) as u64)
}

/// Fraction of eval queries where the live server's answer matches the
/// exact oracle's decoded `(rows, cols, dataflow)`. Measured through HTTP
/// so a hot-reload that silently failed to take effect would be caught.
fn online_agreement(
    addr: std::net::SocketAddr,
    eval: &[(String, String)],
    failed: &Arc<AtomicU64>,
    fivexx: &Arc<AtomicU64>,
) -> Result<f64, CliError> {
    let timeout = Duration::from_secs(30);
    let mut client =
        HttpClient::connect(addr, timeout).map_err(|e| CliError::Run(e.to_string()))?;
    let mut agree = 0usize;
    for (body, expected) in eval {
        match client.post("/v1/recommend/array", body) {
            Ok(resp) if resp.status == 200 => {
                if resp.body.contains(expected.as_str()) {
                    agree += 1;
                }
            }
            Ok(resp) => {
                failed.fetch_add(1, Ordering::Relaxed);
                if resp.status >= 500 {
                    fivexx.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(e) => return Err(CliError::Run(format!("agreement probe failed: {e}"))),
        }
    }
    Ok(agree as f64 / eval.len().max(1) as f64)
}

/// Blocks until the shadow pool has scored (or dropped) every admitted
/// sample, so the misprediction log is complete before it is replayed.
fn online_drain_shadow(timeout: Duration) -> bool {
    let t0 = Instant::now();
    loop {
        let sampled = metrics::SERVE_SHADOW_SAMPLED.get();
        let done =
            metrics::SERVE_SHADOW_RECORDS.get() + metrics::SERVE_SHADOW_DROPPED.get();
        if done >= sampled {
            return true;
        }
        if t0.elapsed() > timeout {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Closed-loop online-learning soak.
///
/// A CS1 model trained on oracle-labeled CNN-shaped GEMMs serves live
/// traffic with shadow-oracle sampling at rate 1.0. The query distribution
/// then drifts to skinny LLM-decode shapes the model has never seen; the
/// [`OnlinePolicy`] watches the shadow counters, and each time it fires the
/// controller replays the misprediction log through [`fine_tune`], persists
/// the tuned checkpoint over the served path, and pushes it live with
/// `POST /v1/reload`.
///
/// Gates (any failure fails the bench, after the artifact is written):
/// * at least one automatic fine-tune + hot-reload cycle fired;
/// * top-1 agreement vs the exact oracle over the drifted distribution is
///   strictly higher after the cycle(s) than before;
/// * zero failed client requests and zero 5xx — reloads and shadow
///   sampling must be invisible to the serving path.
fn bench_online(out_dir: &str, quick: bool) -> Result<(), CliError> {
    const CLIENTS: usize = 4;
    let train_rows = if quick { 1_200 } else { 4_000 };
    let train_epochs = if quick { 2 } else { 4 };
    let warm_requests = if quick { 512 } else { 4_096 };
    let drift_pool_size = if quick { 48 } else { 96 };
    let chunk_requests = drift_pool_size * 4;
    let max_rounds = if quick { 4 } else { 6 };
    let budget = 1u64 << ONLINE_BUDGET_LOG2;
    let drain_timeout = Duration::from_secs(60);

    let space = Case1Space::new(budget);
    let classes = space.len() as u32;
    let problem = Case1Problem::new(budget);
    println!(
        "bench online: {classes}-class CS1 space, {train_rows} oracle-labeled CNN rows, \
         drift pool {drift_pool_size}, up to {max_rounds} rounds"
    );

    println!("  training base model on the CNN regime...");
    let model_path = online_model_file(&problem, classes, train_rows, train_epochs)?;
    let shadow_dir = std::env::temp_dir().join(format!(
        "airchitect-bench-online-shadow-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&shadow_dir);

    // Counter baselines, so the artifact reports this run only.
    let sampled0 = metrics::SERVE_SHADOW_SAMPLED.get();
    let dropped0 = metrics::SERVE_SHADOW_DROPPED.get();
    let records0 = metrics::SERVE_SHADOW_RECORDS.get();
    let disagree0 = metrics::SERVE_SHADOW_DISAGREEMENTS.get();

    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_paths: vec![model_path.clone()],
        workers: 2,
        queue_depth: 1024,
        batch_max: 16,
        cache_capacity: 4096,
        read_timeout_secs: 30,
        shadow_rate: 1.0,
        shadow_dir: Some(shadow_dir.clone()),
        shadow_queue_depth: 4096,
        shadow_threads: 2,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Distinct body pools per phase; the drifted pool doubles as the
    // agreement eval set, with oracle answers decoded up front.
    let mut rng = StdRng::seed_from_u64(41);
    let warm_pool: Arc<Vec<String>> = Arc::new(
        (0..256)
            .map(|_| online_body(&online_cnn_workload(&mut rng)))
            .collect(),
    );
    let mut eval: Vec<(String, String)> = Vec::with_capacity(drift_pool_size);
    for _ in 0..drift_pool_size {
        let wl = online_drifted_workload(&mut rng);
        let label = problem.search(&wl, budget).label;
        let (array, dataflow) = space
            .decode(label)
            .ok_or_else(|| CliError::Run("oracle label outside its own space".into()))?;
        let expected = format!(
            "\"result\":{{\"rows\":{},\"cols\":{},\"macs\":{},\"dataflow\":\"{dataflow}\"}}",
            array.rows(),
            array.cols(),
            array.rows() * array.cols(),
        );
        eval.push((online_body(&wl), expected));
    }
    let drift_pool: Arc<Vec<String>> =
        Arc::new(eval.iter().map(|(body, _)| body.clone()).collect());

    let failed = Arc::new(AtomicU64::new(0));
    let fivexx = Arc::new(AtomicU64::new(0));
    let t_soak = Instant::now();
    let mut requests_total = 0u64;

    // Phase A: in-distribution traffic. The shadow records written here are
    // overwhelmingly agreements — the policy must not fire on them.
    requests_total +=
        online_loadgen(addr, CLIENTS, warm_requests, &warm_pool, &failed, &fivexx)?;
    if !online_drain_shadow(drain_timeout) {
        return Err(CliError::Run("shadow queue failed to drain after warmup".into()));
    }
    let agreement_before = online_agreement(addr, &eval, &failed, &fivexx)?;
    requests_total += eval.len() as u64;
    println!("  drifted-distribution agreement before fine-tune: {agreement_before:.4}");

    // Phase B: drifted traffic, policy-watched. Each round drives a chunk,
    // drains the shadow pool, consults the policy on the counter deltas
    // since the last cycle, and fires fine-tune + reload when it triggers.
    let policy = OnlinePolicy::default();
    let opts = FineTuneOptions {
        epochs: if quick { 8 } else { 10 },
        lr: 3e-3,
        batch_size: 32,
        threads: 2,
        seed: 7,
    };
    let mut cycles = 0u64;
    let mut agreement_after = agreement_before;
    let mut cycle_records0 = metrics::SERVE_SHADOW_RECORDS.get();
    let mut cycle_disagree0 = metrics::SERVE_SHADOW_DISAGREEMENTS.get();
    for round in 0..max_rounds {
        requests_total +=
            online_loadgen(addr, CLIENTS, chunk_requests, &drift_pool, &failed, &fivexx)?;
        if !online_drain_shadow(drain_timeout) {
            return Err(CliError::Run(format!(
                "shadow queue failed to drain in round {round}"
            )));
        }
        let window_samples = metrics::SERVE_SHADOW_RECORDS.get() - cycle_records0;
        let window_disagreements =
            metrics::SERVE_SHADOW_DISAGREEMENTS.get() - cycle_disagree0;
        let stats = DriftStats {
            window_samples,
            window_disagreements,
            agreement: if window_samples == 0 {
                1.0
            } else {
                (window_samples - window_disagreements) as f64 / window_samples as f64
            },
            oracle_mean_us: metrics::SERVE_SHADOW_ORACLE_US.snapshot().mean(),
            total_samples: metrics::SERVE_SHADOW_RECORDS.get() - records0,
            total_disagreements: metrics::SERVE_SHADOW_DISAGREEMENTS.get() - disagree0,
        };
        if policy.should_fine_tune(&stats) {
            let scan = read_dir(&shadow_dir).map_err(|e| CliError::Io {
                path: shadow_dir.display().to_string(),
                message: e.to_string(),
            })?;
            let mut model =
                persist::load(&model_path).map_err(|e| CliError::Run(e.to_string()))?;
            let outcome = fine_tune(&mut model, &scan.records, &opts)
                .map_err(|e| CliError::Run(e.to_string()))?;
            if outcome.report.is_some() {
                persist::save(&model, &model_path)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                let mut client = HttpClient::connect(addr, Duration::from_secs(30))
                    .map_err(|e| CliError::Run(e.to_string()))?;
                let resp = client
                    .post("/v1/reload", "")
                    .map_err(|e| CliError::Run(e.to_string()))?;
                if resp.status != 200 {
                    return Err(CliError::Run(format!(
                        "reload after fine-tune returned {}: {}",
                        resp.status, resp.body
                    )));
                }
                cycles += 1;
                cycle_records0 = metrics::SERVE_SHADOW_RECORDS.get();
                cycle_disagree0 = metrics::SERVE_SHADOW_DISAGREEMENTS.get();
                println!(
                    "  round {round}: policy fired (window agreement {:.4}) -> \
                     fine-tuned on {} rows (v{}), hot-reloaded",
                    stats.agreement, outcome.used_rows, outcome.target_version
                );
            }
        }
        agreement_after = online_agreement(addr, &eval, &failed, &fivexx)?;
        requests_total += eval.len() as u64;
        println!("  round {round}: drifted agreement {agreement_after:.4} ({cycles} cycles)");
        if cycles >= 1 && agreement_after > agreement_before {
            break;
        }
    }
    let wall_secs = t_soak.elapsed().as_secs_f64();

    // Graceful shutdown closes the misprediction log with its end line.
    let mut shut = HttpClient::connect(addr, Duration::from_secs(30))
        .map_err(|e| CliError::Run(e.to_string()))?;
    let resp = shut
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    server_thread
        .join()
        .map_err(|_| CliError::Run("server thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("server exited with: {e}")))?;

    // Every closed log segment must be a schema-valid telemetry file.
    let scan = read_dir(&shadow_dir).map_err(|e| CliError::Io {
        path: shadow_dir.display().to_string(),
        message: e.to_string(),
    })?;
    let _ = std::fs::remove_file(&model_path);
    let _ = std::fs::remove_dir_all(&shadow_dir);

    let sampled = metrics::SERVE_SHADOW_SAMPLED.get() - sampled0;
    let dropped = metrics::SERVE_SHADOW_DROPPED.get() - dropped0;
    let records = metrics::SERVE_SHADOW_RECORDS.get() - records0;
    let disagreements = metrics::SERVE_SHADOW_DISAGREEMENTS.get() - disagree0;
    let oracle = metrics::SERVE_SHADOW_ORACLE_US.snapshot();
    let failed = failed.load(Ordering::Relaxed);
    let fivexx = fivexx.load(Ordering::Relaxed);
    let qps = requests_total as f64 / wall_secs;
    println!(
        "  {requests_total} requests ({failed} failed, {fivexx} 5xx), {sampled} sampled, \
         {records} records, {disagreements} disagreements, {dropped} dropped"
    );
    println!(
        "  agreement {agreement_before:.4} -> {agreement_after:.4} after {cycles} \
         fine-tune cycle(s); oracle mean {:.0} us",
        oracle.mean()
    );

    // The artifact is written before the gates run, so a failed soak still
    // leaves its numbers behind for debugging.
    let body = format!(
        "{{\n  \"suite\": \"online\",\n  \"case\": \"cs1\",\n  \
         \"budget_log2\": {ONLINE_BUDGET_LOG2},\n  \"classes\": {classes},\n  \
         \"requests\": {requests_total},\n  \"failed_requests\": {failed},\n  \
         \"http_5xx\": {fivexx},\n  \"sampled\": {sampled},\n  \
         \"dropped\": {dropped},\n  \"records\": {records},\n  \
         \"disagreements\": {disagreements},\n  \"log_segments\": {},\n  \
         \"torn_segments\": {},\n  \"cycles\": {cycles},\n  \
         \"agreement_before\": {agreement_before:.4},\n  \
         \"agreement_after\": {agreement_after:.4},\n  \
         \"oracle_mean_us\": {:.2},\n  \"oracle_max_us\": {},\n  \
         \"qps\": {qps:.2}\n}}\n",
        scan.segments,
        scan.torn_segments,
        oracle.mean(),
        oracle.max,
    );
    write_json(out_dir, "BENCH_online.json", &body)?;

    if cycles == 0 {
        return Err(CliError::Run(
            "drift policy never fired: no fine-tune + reload cycle ran".into(),
        ));
    }
    if agreement_after <= agreement_before {
        return Err(CliError::Run(format!(
            "oracle agreement did not improve after fine-tune \
             ({agreement_before:.4} -> {agreement_after:.4})"
        )));
    }
    if failed > 0 || fivexx > 0 {
        return Err(CliError::Run(format!(
            "{failed} failed requests / {fivexx} 5xx during the online soak"
        )));
    }
    Ok(())
}

/// Shared loadgen over self-healing clients: `clients` threads stride
/// through a body pool against `addr`, returning (latencies_us,
/// failed_count). Failures are exhausted-retry transport errors or
/// non-200 statuses — under cluster failover both should be zero.
fn cluster_loadgen(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    pool: &Arc<Vec<String>>,
    progress: &Arc<AtomicU64>,
) -> Result<(Vec<u64>, u64), CliError> {
    let timeout = Duration::from_secs(10);
    let failed = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|tid| {
            let pool = Arc::clone(pool);
            let failed = Arc::clone(&failed);
            let progress = Arc::clone(progress);
            std::thread::spawn(move || -> Vec<u64> {
                let mut client =
                    RetryClient::new(addr, timeout, 4, Duration::from_millis(50));
                let mut latencies = Vec::with_capacity(requests / clients);
                for i in 0..requests / clients {
                    let body = &pool[(tid + i * 7) % pool.len()];
                    let sent = Instant::now();
                    match client.post("/v1/recommend/array", body) {
                        Ok(resp) if resp.status == 200 => {}
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    latencies.push(sent.elapsed().as_micros() as u64);
                    progress.fetch_add(1, Ordering::Relaxed);
                }
                latencies
            })
        })
        .collect();
    let mut latencies = Vec::with_capacity(requests);
    for handle in handles {
        latencies.extend(
            handle
                .join()
                .map_err(|_| CliError::Run("loadgen client panicked".into()))?,
        );
    }
    Ok((latencies, failed.load(Ordering::Relaxed)))
}

/// Loadgen against a supervised cluster with a mid-run replica SIGKILL.
///
/// Gates (any failure fails the bench):
/// * zero failed client requests while a replica dies under load — the
///   router's retry-on-next-replica must absorb the crash;
/// * the killed replica is restarted and re-admitted to the ring within a
///   bounded window after the load drains;
/// * aggregate cluster QPS at least matches the single-replica figure —
///   measured through the same router with one replica, so the constant
///   per-hop proxy cost cancels and the gate isolates what scaling out
///   (and dying mid-run) actually costs. Replica caches are disabled so
///   the comparison is inference-bound, not cache-bound. On machines too
///   small to run the fleet in parallel the >= 1x requirement relaxes to a
///   bounded-degradation floor (see the gate comment below).
fn bench_cluster(out_dir: &str, quick: bool) -> Result<(), CliError> {
    const CLIENTS: usize = 16;
    const REPLICAS: usize = 3;
    let requests: usize = if quick { 2_000 } else { 12_000 };
    let single_requests: usize = if quick { 1_000 } else { 4_000 };
    println!(
        "bench cluster: {requests} requests over {CLIENTS} clients against {REPLICAS} replicas, \
         one SIGKILL mid-run"
    );

    let model_path = serve_model_file(if quick { 2_000 } else { 8_000 })?;
    // Replica caches off: the QPS gate compares inference throughput, and
    // a killed replica must cost recomputation, not a warm cache.
    let replica_config = ServeConfig {
        model_paths: vec![model_path.clone()],
        workers: 2,
        queue_depth: 1024,
        cache_capacity: 0,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };

    let mut rng = StdRng::seed_from_u64(41);
    let pool: Arc<Vec<String>> = Arc::new(
        (0..256)
            .map(|_| {
                let wl = random_workload(&mut rng);
                format!(
                    "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{}}}",
                    wl.m(),
                    wl.n(),
                    wl.k(),
                    1u64 << 10
                )
            })
            .collect(),
    );

    let program = std::env::current_exe()
        .map_err(|e| CliError::Run(format!("cannot locate own binary: {e}")))?;
    let mk_cfg = |replicas: usize| ClusterConfig {
        addr: "127.0.0.1:0".into(),
        replica_argv: Cluster::replica_argv(&program.display().to_string(), &replica_config),
        replicas,
        probe_interval_ms: 100,
        restart_base_ms: 100,
        backend_timeout_ms: 30_000,
        read_timeout_secs: 30,
        ..ClusterConfig::default()
    };

    // Baseline: one replica behind the same router with the same loadgen,
    // so both figures pay the identical per-hop proxy cost and the gate
    // compares replica capacity rather than hop latency.
    let single_qps = {
        let cluster = Cluster::start(mk_cfg(1)).map_err(|e| CliError::Run(e.to_string()))?;
        let addr = cluster.local_addr();
        if !cluster.wait_healthy(1, Duration::from_secs(60)) {
            return Err(CliError::Run(
                "baseline cluster never reached 1 healthy replica".into(),
            ));
        }
        let cluster_thread = std::thread::spawn(move || cluster.run());
        let progress = Arc::new(AtomicU64::new(0));
        let t0 = Instant::now();
        let (_, failed) = cluster_loadgen(addr, CLIENTS, single_requests, &pool, &progress)?;
        let qps = single_requests as f64 / t0.elapsed().as_secs_f64();
        let mut shut = RetryClient::new(addr, Duration::from_secs(5), 3, Duration::from_millis(50));
        let _ = shut.post("/v1/shutdown", "");
        cluster_thread
            .join()
            .map_err(|_| CliError::Run("baseline cluster thread panicked".into()))?
            .map_err(|e| CliError::Run(format!("baseline cluster exited with: {e}")))?;
        if failed > 0 {
            return Err(CliError::Run(format!(
                "{failed} failed requests against the single-replica baseline"
            )));
        }
        println!("  single replica baseline (through router): {qps:.0} req/s");
        qps
    };

    let cluster_cfg = mk_cfg(REPLICAS);
    let probe_interval_ms = cluster_cfg.probe_interval_ms;
    let cluster = Cluster::start(cluster_cfg).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = cluster.local_addr();
    let fleet = cluster.fleet();
    if !cluster.wait_healthy(REPLICAS, Duration::from_secs(60)) {
        return Err(CliError::Run(format!(
            "cluster never reached {REPLICAS} healthy replicas"
        )));
    }
    let cluster_thread = std::thread::spawn(move || cluster.run());

    // Killer: SIGKILL one replica once ~40% of the load has gone through.
    let progress = Arc::new(AtomicU64::new(0));
    let victim: u32 = 0;
    let kill_at = (requests * 2 / 5) as u64;
    let killed_at_ms = Arc::new(AtomicU64::new(0));
    let killer = {
        let fleet = Arc::clone(&fleet);
        let progress = Arc::clone(&progress);
        let killed_at_ms = Arc::clone(&killed_at_ms);
        let t0 = Instant::now();
        std::thread::spawn(move || {
            while progress.load(Ordering::Relaxed) < kill_at {
                std::thread::sleep(Duration::from_millis(5));
            }
            let killed = fleet.kill_replica(victim);
            killed_at_ms.store(t0.elapsed().as_millis() as u64, Ordering::Relaxed);
            killed
        })
    };

    let t0 = Instant::now();
    let (mut latencies, failed) = cluster_loadgen(addr, CLIENTS, requests, &pool, &progress)?;
    let wall_secs = t0.elapsed().as_secs_f64();
    let killed = killer
        .join()
        .map_err(|_| CliError::Run("killer thread panicked".into()))?;
    if !killed {
        return Err(CliError::Run(format!(
            "kill_replica({victim}) found no live child to kill"
        )));
    }

    // Re-admission gate: the killed replica must return to the ring. The
    // load can drain before the probe thread has even ejected the victim
    // (it still counts as healthy until then), so wait for the full
    // eject -> restart -> re-admit cycle, not just the healthy count.
    let readmit_deadline = Instant::now() + Duration::from_secs(30);
    let readmit_t0 = Instant::now();
    loop {
        let restarts: u64 = fleet.views().iter().map(|v| v.restarts_total).sum();
        if restarts >= 1 && fleet.healthy() >= REPLICAS {
            break;
        }
        if Instant::now() >= readmit_deadline {
            return Err(CliError::Run(format!(
                "replica {victim} was not restarted and re-admitted within 30 s of the load \
                 draining"
            )));
        }
        std::thread::sleep(Duration::from_millis(probe_interval_ms));
    }
    let readmit_ms = readmit_t0.elapsed().as_millis() as u64;

    let views = fleet.views();
    let restarts_total: u64 = views.iter().map(|v| v.restarts_total).sum();
    let failovers_total: u64 = views.iter().map(|v| v.failovers_total).sum();
    let hedges_fired: u64 = views.iter().map(|v| v.hedges_fired).sum();

    let mut shut = RetryClient::new(addr, Duration::from_secs(5), 3, Duration::from_millis(50));
    let resp = shut
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    cluster_thread
        .join()
        .map_err(|_| CliError::Run("cluster thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("cluster exited with: {e}")))?;
    let _ = std::fs::remove_file(&model_path);

    // The headline gate: a replica died mid-run and no client saw it.
    if failed > 0 {
        return Err(CliError::Run(format!(
            "{failed} client-visible failures while replica {victim} was killed under load"
        )));
    }
    // Throughput gate. Scaling out only pays when the fleet has cores to
    // run on: with router + REPLICAS x 2 workers all time-sharing a small
    // CPU, three processes plus a mid-run SIGKILL can only cost throughput
    // relative to one. Require the full >= 1x figure when the hardware can
    // express the parallelism, and a bounded-degradation floor when the
    // replicas are just contending for the same cores.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let required = if cores >= 2 * REPLICAS + 2 { 1.0 } else { 0.6 };
    let qps = requests as f64 / wall_secs;
    if qps < single_qps * required {
        return Err(CliError::Run(format!(
            "cluster QPS {qps:.0} fell below {required:.1}x the single-replica baseline \
             {single_qps:.0} ({cores} cores)"
        )));
    }
    if restarts_total == 0 {
        return Err(CliError::Run(
            "the killed replica recorded no restart".into(),
        ));
    }

    latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "  {qps:.0} req/s ({:.2}x single replica), 0 failed, replica {victim} killed and \
         re-admitted in {readmit_ms} ms",
        qps / single_qps
    );
    println!(
        "  {restarts_total} restarts, {failovers_total} failovers, {hedges_fired} hedges; \
         latency p50 {p50} us, p95 {p95} us, p99 {p99} us"
    );

    let body = format!(
        "{{\n  \"suite\": \"cluster\",\n  \"case\": \"cs1\",\n  \"replicas\": {REPLICAS},\n  \
         \"requests\": {requests},\n  \"clients\": {CLIENTS},\n  \"failed_requests\": {failed},\n  \
         \"killed_replica\": {victim},\n  \"kill_at_request\": {kill_at},\n  \
         \"restarts_total\": {restarts_total},\n  \"failovers_total\": {failovers_total},\n  \
         \"hedges_fired\": {hedges_fired},\n  \"readmit_ms\": {readmit_ms},\n  \
         \"qps\": {qps:.2},\n  \"single_replica_qps\": {single_qps:.2},\n  \
         \"speedup\": {:.4},\n  \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \"p99_us\": {p99}\n}}\n",
        qps / single_qps
    );
    write_json(out_dir, "BENCH_cluster.json", &body)
}

/// One rollout-soak request body with both models' precomputed answers.
struct RolloutBody {
    body: String,
    /// The incumbent's (and, after the good promote, the fleet's) answer.
    from_incumbent: String,
    /// The regressed candidate's answer; differs from the incumbent's on
    /// every in-slice entry by construction.
    from_candidate: String,
}

/// Polls `/healthz` until the rollout state machine reports `idle`,
/// returning the final body. Background loadgen clients keep the canary
/// fed with samples while this waits.
fn rollout_settle(client: &mut HttpClient, deadline: Duration) -> Result<String, CliError> {
    let t0 = Instant::now();
    loop {
        let health = client
            .get("/healthz")
            .map_err(|e| CliError::Run(e.to_string()))?;
        if health.status == 200 && health.body.contains("\"state\":\"idle\"") {
            return Ok(health.body);
        }
        if t0.elapsed() > deadline {
            return Err(CliError::Run(format!(
                "rollout did not settle within {deadline:?}: {}",
                health.body
            )));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Safe-rollout soak: continuous loadgen against a registry-backed server
/// while three checkpoints are pushed through `/v1/reload` mid-run — a
/// corrupted artifact, a regressed (disagreeing) fine-tune, and a good
/// one.
///
/// The body pool is built so the canary exposure is provable, not
/// statistical: every 4th pool slot holds a key the server's own
/// deterministic sampler puts in the canary slice (and on which the
/// regressed model provably disagrees); the other slots hold
/// out-of-slice keys. Clients stride the pool with a step coprime to its
/// length, so any window of a client's stream contains at most
/// `ceil(n/4)` in-slice requests — the bad candidate can never answer
/// more than the canary split of the traffic, plus a per-client edge
/// request at each window boundary.
///
/// Gates (any failure fails the bench):
/// * the corrupted checkpoint is rejected at staging and quarantined;
/// * the regressed checkpoint is rolled back by the agreement gate and
///   quarantined — and its answer fraction stays within the split bound;
/// * the good checkpoint promotes, on disk and in the live server;
/// * zero failed requests and zero wrong (neither-model) answers.
fn bench_rollout(out_dir: &str, quick: bool) -> Result<(), CliError> {
    use airchitect_serve::registry::{Registry, DEFAULT_RETAIN};

    const CLIENTS: usize = 4;
    const SPLIT: f64 = 0.25;
    const POOL: usize = 64;
    const BUDGET: u64 = 1 << 10;
    let min_samples: u64 = if quick { 12 } else { 50 };
    let train_rows = if quick { 2_000 } else { 4_000 };
    let timeout = Duration::from_secs(30);
    let settle_deadline = Duration::from_secs(60);
    println!(
        "bench rollout: canary split {SPLIT}, {CLIENTS} clients, \
         corrupt + regressed + good checkpoints mid-run"
    );

    // Incumbent A and a regressed candidate B (different random labels, so
    // their answers disagree on most queries).
    let train = |seed: u64| -> Result<AirchitectModel, CliError> {
        let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..train_rows {
            let wl = random_workload(&mut rng);
            let budget = 1u64 << rng.random_range(5..=CS1_BUDGET_LOG2);
            ds.push(
                &Case1Problem::features(&wl, budget),
                rng.random_range(0..CS1_CLASSES),
            )
            .unwrap();
        }
        let mut model = AirchitectModel::new(
            CaseStudy::ArrayDataflow,
            &AirchitectConfig {
                num_classes: CS1_CLASSES,
                train: TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        model.train(&ds).map_err(|e| CliError::Run(e.to_string()))?;
        Ok(model)
    };
    let model_a = train(29)?;
    let model_b = train(43)?;
    let bytes_a = persist::to_bytes(&model_a);
    let bytes_b = persist::to_bytes(&model_b);
    let rec_a = Recommender::new(model_a).map_err(|e| CliError::Run(e.to_string()))?;
    let rec_b = Recommender::new(model_b).map_err(|e| CliError::Run(e.to_string()))?;

    // Registry-backed server: the seed artifact becomes v1.
    let dir = std::env::temp_dir().join(format!("airchitect-bench-rollout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| CliError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let seed_path = dir.join("seed.airm");
    std::fs::write(&seed_path, &bytes_a[..]).map_err(|e| CliError::Io {
        path: seed_path.display().to_string(),
        message: e.to_string(),
    })?;

    // Build the pool: in-slice slots (index % 4 == 0) carry keys the
    // server's sampler admits to the canary AND on which A and B disagree;
    // the rest are out-of-slice keys. Classification uses the same
    // `cache_key` + `sampled` pair the server does, so the split is exact.
    let problem = Case1Problem::new(1 << CS1_BUDGET_LOG2);
    let ppm = airchitect_online::sampler::rate_to_ppm(SPLIT);
    let mut rng = StdRng::seed_from_u64(47);
    let mut in_slice: Vec<RolloutBody> = Vec::new();
    let mut out_slice: Vec<RolloutBody> = Vec::new();
    let (want_in, want_out) = (POOL / 4, POOL - POOL / 4);
    while in_slice.len() < want_in || out_slice.len() < want_out {
        let wl = random_workload(&mut rng);
        let body = format!(
            "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{BUDGET}}}",
            wl.m(),
            wl.n(),
            wl.k()
        );
        let parsed = airchitect_serve::router::parse_recommend(
            CaseStudy::ArrayDataflow,
            body.as_bytes(),
        )
        .map_err(|r| CliError::Run(format!("pool body rejected: {}", r.body)))?;
        let (array, df) = rec_a
            .recommend_array_fast(&problem, &wl, BUDGET)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let from_incumbent = render_cs1(&array, df);
        let (array, df) = rec_b
            .recommend_array_fast(&problem, &wl, BUDGET)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let from_candidate = render_cs1(&array, df);
        let entry = RolloutBody {
            body,
            from_incumbent,
            from_candidate,
        };
        if airchitect_online::sampler::sampled(&parsed.cache_key, ppm) {
            if entry.from_candidate != entry.from_incumbent && in_slice.len() < want_in {
                in_slice.push(entry);
            }
        } else if out_slice.len() < want_out {
            out_slice.push(entry);
        }
    }
    let mut in_slice = in_slice.into_iter();
    let mut out_slice = out_slice.into_iter();
    let pool: Arc<Vec<RolloutBody>> = Arc::new(
        (0..POOL)
            .map(|i| {
                if i % 4 == 0 {
                    in_slice.next().expect("filled above")
                } else {
                    out_slice.next().expect("filled above")
                }
            })
            .collect(),
    );

    let samples0 = metrics::SERVE_CANARY_SAMPLES.get();
    let agreements0 = metrics::SERVE_CANARY_AGREEMENTS.get();
    let promotions0 = metrics::SERVE_CANARY_PROMOTIONS.get();
    let rollbacks0 = metrics::SERVE_CANARY_ROLLBACKS.get();

    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_paths: vec![seed_path],
        model_dir: Some(dir.clone()),
        canary_split: SPLIT,
        canary_min_samples: min_samples,
        canary_min_agreement: 0.9,
        canary_max_p99_ratio: 1e9, // latency gate off: CI machines jitter
        workers: 2,
        queue_depth: 1024,
        // Every in-slice request must reach the canary comparator, not a
        // warm cache.
        cache_capacity: 0,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Continuous loadgen: every response must match one of the two
    // precomputed answers; candidate-only answers are tallied so the
    // exposure bound can be checked.
    let done = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let failed = Arc::new(AtomicU64::new(0));
    let wrong = Arc::new(AtomicU64::new(0));
    let candidate_answers = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|tid| {
            let pool = Arc::clone(&pool);
            let done = Arc::clone(&done);
            let total = Arc::clone(&total);
            let failed = Arc::clone(&failed);
            let wrong = Arc::clone(&wrong);
            let candidate_answers = Arc::clone(&candidate_answers);
            std::thread::spawn(move || -> Result<(), String> {
                let mut client =
                    HttpClient::connect(addr, timeout).map_err(|e| e.to_string())?;
                let mut i = 0usize;
                while !done.load(Ordering::Acquire) {
                    let entry = &pool[(tid + i * 7) % pool.len()];
                    i += 1;
                    let resp = client
                        .post("/v1/recommend/array", &entry.body)
                        .map_err(|e| e.to_string())?;
                    total.fetch_add(1, Ordering::Relaxed);
                    if resp.status != 200 {
                        failed.fetch_add(1, Ordering::Relaxed);
                    } else if entry.from_candidate != entry.from_incumbent
                        && resp.body.contains(&entry.from_candidate)
                    {
                        candidate_answers.fetch_add(1, Ordering::Relaxed);
                    } else if !resp.body.contains(&entry.from_incumbent) {
                        wrong.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(())
            })
        })
        .collect();

    let orchestrate = || -> Result<(u64, u64), CliError> {
        let mut client =
            HttpClient::connect(addr, timeout).map_err(|e| CliError::Run(e.to_string()))?;
        // Warmup: a full pass over the pool proves the baseline serves.
        while total.load(Ordering::Relaxed) < POOL as u64 {
            std::thread::sleep(Duration::from_millis(10));
        }

        // Phase 1: a corrupted checkpoint must be rejected at staging.
        let mut reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let corrupt_v = reg
            .add_version(b"definitely not a model artifact")
            .map_err(|e| CliError::Run(e.to_string()))?;
        let resp = client
            .post("/v1/reload", "")
            .map_err(|e| CliError::Run(e.to_string()))?;
        if resp.status != 409 || !resp.body.contains("stage_failed") {
            return Err(CliError::Run(format!(
                "corrupt checkpoint was not rejected: {} {}",
                resp.status, resp.body
            )));
        }
        let reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let quarantined = |reg: &Registry, v: u64| {
            reg.manifest()
                .entries
                .iter()
                .any(|e| e.version == v && e.quarantined)
        };
        if !quarantined(&reg, corrupt_v) {
            return Err(CliError::Run(format!(
                "corrupt version v{corrupt_v} was not quarantined"
            )));
        }
        println!("  corrupt checkpoint v{corrupt_v}: rejected at staging and quarantined");

        // Phase 2: a regressed checkpoint canaries, fails the agreement
        // gate, and is rolled back + quarantined.
        let mut reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let bad_v = reg
            .add_version(&bytes_b)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let window_start = total.load(Ordering::Relaxed);
        let resp = client
            .post("/v1/reload", "")
            .map_err(|e| CliError::Run(e.to_string()))?;
        if resp.status != 200 || !resp.body.contains("\"staged\":true") {
            return Err(CliError::Run(format!(
                "regressed checkpoint failed to stage: {} {}",
                resp.status, resp.body
            )));
        }
        let health = rollout_settle(&mut client, settle_deadline)?;
        let window = total.load(Ordering::Relaxed) - window_start;
        if !health.contains("rolled_back") {
            return Err(CliError::Run(format!(
                "regressed checkpoint was not rolled back: {health}"
            )));
        }
        let reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        if !quarantined(&reg, bad_v) {
            return Err(CliError::Run(format!(
                "regressed version v{bad_v} was not quarantined after rollback"
            )));
        }
        println!("  regressed checkpoint v{bad_v}: canaried, rolled back, quarantined");

        // Phase 3: a good checkpoint (the incumbent's own bytes, so perfect
        // agreement) canaries and promotes.
        let mut reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let good_v = reg
            .add_version(&bytes_a)
            .map_err(|e| CliError::Run(e.to_string()))?;
        let resp = client
            .post("/v1/reload", "")
            .map_err(|e| CliError::Run(e.to_string()))?;
        if resp.status != 200 || !resp.body.contains("\"staged\":true") {
            return Err(CliError::Run(format!(
                "good checkpoint failed to stage: {} {}",
                resp.status, resp.body
            )));
        }
        let health = rollout_settle(&mut client, settle_deadline)?;
        if !health.contains("promoted") {
            return Err(CliError::Run(format!(
                "good checkpoint was not promoted: {health}"
            )));
        }
        let reg = Registry::open(&dir, DEFAULT_RETAIN)
            .map_err(|e| CliError::Run(e.to_string()))?;
        if reg.manifest().active != Some(good_v) {
            return Err(CliError::Run(format!(
                "registry active is {:?}, expected v{good_v}",
                reg.manifest().active
            )));
        }
        println!("  good checkpoint v{good_v}: canaried and promoted (active on disk)");
        Ok((window, good_v))
    };
    let orchestration = orchestrate();
    done.store(true, Ordering::Release);
    for handle in clients {
        handle
            .join()
            .map_err(|_| CliError::Run("rollout loadgen client panicked".into()))?
            .map_err(CliError::Run)?;
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    let mut shut =
        HttpClient::connect(addr, timeout).map_err(|e| CliError::Run(e.to_string()))?;
    let resp = shut
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    server_thread
        .join()
        .map_err(|_| CliError::Run("server thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("server exited with: {e}")))?;
    let _ = std::fs::remove_dir_all(&dir);
    let (window, good_v) = orchestration?;

    let total = total.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    let wrong = wrong.load(Ordering::Relaxed);
    let candidate_answers = candidate_answers.load(Ordering::Relaxed);
    let samples = metrics::SERVE_CANARY_SAMPLES.get() - samples0;
    let agreements = metrics::SERVE_CANARY_AGREEMENTS.get() - agreements0;
    let promotions = metrics::SERVE_CANARY_PROMOTIONS.get() - promotions0;
    let rollbacks = metrics::SERVE_CANARY_ROLLBACKS.get() - rollbacks0;
    let candidate_fraction = candidate_answers as f64 / window.max(1) as f64;
    let qps = total as f64 / wall_secs;
    println!(
        "  {total} requests ({failed} failed, {wrong} wrong), {samples} canary samples, \
         {promotions} promotions, {rollbacks} rollbacks"
    );
    println!(
        "  bad-candidate answers: {candidate_answers}/{window} in the canary window \
         ({candidate_fraction:.4} vs split {SPLIT})"
    );

    // The artifact is written before the gates run, so a failed soak still
    // leaves its numbers behind for debugging.
    let body = format!(
        "{{\n  \"suite\": \"rollout\",\n  \"case\": \"cs1\",\n  \
         \"canary_split\": {SPLIT},\n  \"canary_min_samples\": {min_samples},\n  \
         \"requests\": {total},\n  \"failed_requests\": {failed},\n  \
         \"wrong_answers\": {wrong},\n  \"corrupt_rejected\": true,\n  \
         \"regressed_rolled_back\": true,\n  \"good_promoted\": true,\n  \
         \"promoted_version\": {good_v},\n  \
         \"bad_candidate_answers\": {candidate_answers},\n  \
         \"canary_window_requests\": {window},\n  \
         \"bad_candidate_fraction\": {candidate_fraction:.4},\n  \
         \"canary_samples\": {samples},\n  \"canary_agreements\": {agreements},\n  \
         \"canary_promotions\": {promotions},\n  \"canary_rollbacks\": {rollbacks},\n  \
         \"qps\": {qps:.2}\n}}\n"
    );
    write_json(out_dir, "BENCH_rollout.json", &body)?;

    if failed > 0 {
        return Err(CliError::Run(format!(
            "{failed} requests failed during the rollout soak (gate: zero)"
        )));
    }
    if wrong > 0 {
        return Err(CliError::Run(format!(
            "{wrong} responses matched neither the incumbent nor the candidate"
        )));
    }
    // Exposure bound: in-slice keys occupy every 4th pool slot and clients
    // stride with a step coprime to the pool, so any measurement window
    // can exceed the split by at most one edge request per client.
    let allowed = window as f64 * SPLIT + CLIENTS as f64;
    if (candidate_answers as f64) > allowed {
        return Err(CliError::Run(format!(
            "{candidate_answers} bad-candidate answers exceed the split bound \
             ({allowed:.0} of {window})"
        )));
    }
    Ok(())
}

/// Renders a CS1 answer exactly as the server does, so response bodies can
/// be compared byte-for-byte against a locally computed oracle.
fn render_cs1(array: &ArrayConfig, df: Dataflow) -> String {
    format!(
        "\"rows\":{},\"cols\":{},\"macs\":{},\"dataflow\":\"{df}\"",
        array.rows(),
        array.cols(),
        array.macs()
    )
}

/// Loadgen under a scripted fault schedule. A conductor thread cycles
/// failpoints — inference error bursts (trip the breaker, engaging the
/// search fallback), latency injection, and worker panics — while
/// keep-alive clients hammer `/v1/recommend/array`. Every 200 body must
/// match either the precomputed model answer or the precomputed exhaustive
/// optimum for its workload. Gates: zero wrong answers, zero hung clients,
/// a bounded 5xx fraction, and full recovery once the faults drain.
fn bench_chaos(out_dir: &str, quick: bool) -> Result<(), CliError> {
    if !airchitect_chaos::is_enabled() {
        return Err(CliError::Usage(
            "suite `chaos` needs failpoints compiled in (rebuild with `--features chaos`)".into(),
        ));
    }
    const CLIENTS: usize = 4;
    const BUDGET: u64 = 1 << 10;
    let requests: usize = if quick { 1_000 } else { 8_000 };
    let timeout = Duration::from_secs(30);
    println!("bench chaos: {requests} requests over {CLIENTS} clients under fault injection");

    airchitect_chaos::reset();
    let model_path = serve_model_file(if quick { 2_000 } else { 4_000 })?;

    // All oracles for every pooled workload: the model's own f32 answer
    // and its int8 answer (healthy responses arrive via the batch path or
    // the single-query bypass respectively) plus the exhaustive optimum
    // (degraded responses).
    let problem = Case1Problem::new(1 << CS1_BUDGET_LOG2);
    let model = persist::load(&model_path).map_err(|e| CliError::Run(e.to_string()))?;
    let rec = Recommender::new(model).map_err(|e| CliError::Run(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(37);
    let pool: Arc<Vec<(String, String, String, String)>> = Arc::new(
        (0..48)
            .map(|_| -> Result<(String, String, String, String), CliError> {
                let wl = random_workload(&mut rng);
                let body = format!(
                    "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{BUDGET}}}",
                    wl.m(),
                    wl.n(),
                    wl.k()
                );
                let (array, df) = rec
                    .recommend_array(&problem, &wl, BUDGET)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                let from_model = render_cs1(&array, df);
                let (array, df) = rec
                    .recommend_array_fast(&problem, &wl, BUDGET)
                    .map_err(|e| CliError::Run(e.to_string()))?;
                let from_quant = render_cs1(&array, df);
                let found = problem.search(&wl, BUDGET);
                let (array, df) = problem
                    .space()
                    .decode(found.label)
                    .ok_or_else(|| CliError::Run("search label out of space".into()))?;
                Ok((body, from_model, from_quant, render_cs1(&array, df)))
            })
            .collect::<Result<_, _>>()?,
    );

    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_paths: vec![model_path.clone()],
        workers: 4,
        queue_depth: 1024,
        batch_max: 16,
        cache_capacity: 0, // every answer must be computed under fault
        read_timeout_secs: 30,
        deadline_ms: 2_000,
        breaker_threshold: 5,
        breaker_cooldown_ms: 100,
        fallback_search: true,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Conductor: cycles the fault schedule until the load drains. Each
    // entry is bounded (one-shot counts), so the 5xx budget is bounded too.
    let done = Arc::new(AtomicBool::new(false));
    let conductor = {
        let done = Arc::clone(&done);
        std::thread::spawn(move || -> u64 {
            let schedule = [
                // Failure burst: exactly the breaker threshold, so the
                // circuit opens, the fallback serves from search, and the
                // first half-open probe after the cooldown recovers.
                "serve.infer=err(other):1:5",
                // Latency injection: rides under the 2 s deadline but
                // exercises the queue under slow workers.
                "serve.batch.dispatch=delay(40):0.3:20",
                // A worker panic: must be isolated to one 500.
                "serve.batch.dispatch=panic:1:1",
            ];
            // Healthy warmup: let the model path serve some of the load
            // before the first fault lands.
            std::thread::sleep(Duration::from_millis(50));
            let mut cycles = 0u64;
            while !done.load(Ordering::Acquire) {
                for cfg in schedule {
                    airchitect_chaos::configure_str(cfg).expect("valid schedule");
                    std::thread::sleep(Duration::from_millis(60));
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                }
                // Reload corruption: arm a one-shot read fault and trigger
                // a reload. The server answers 409 (or 503 once the reload
                // circuit opens) and keeps serving the old model; the
                // clients' oracle checks prove no mixed-model answers leak.
                airchitect_chaos::configure_str("serve.reload.read=err(other):1:1")
                    .expect("valid schedule");
                if let Ok(mut c) = HttpClient::connect(addr, Duration::from_secs(5)) {
                    let _ = c.post("/v1/reload", "");
                }
                airchitect_chaos::reset();
                cycles += 1;
                std::thread::sleep(Duration::from_millis(40));
            }
            airchitect_chaos::reset();
            cycles
        })
    };

    let wrong = Arc::new(AtomicU64::new(0));
    let from_model_n = Arc::new(AtomicU64::new(0));
    let from_search_n = Arc::new(AtomicU64::new(0));
    let fivexx = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|tid| {
            let pool = Arc::clone(&pool);
            let wrong = Arc::clone(&wrong);
            let from_model_n = Arc::clone(&from_model_n);
            let from_search_n = Arc::clone(&from_search_n);
            let fivexx = Arc::clone(&fivexx);
            let rejected = Arc::clone(&rejected);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut client =
                    HttpClient::connect(addr, timeout).map_err(|e| e.to_string())?;
                let mut latencies = Vec::with_capacity(requests / CLIENTS);
                for i in 0..requests / CLIENTS {
                    let (body, from_model, from_quant, from_search) =
                        &pool[(tid + i * 7) % pool.len()];
                    let sent = Instant::now();
                    let resp = client
                        .post("/v1/recommend/array", body)
                        .map_err(|e| e.to_string())?;
                    latencies.push(sent.elapsed().as_micros() as u64);
                    match resp.status {
                        200 => {
                            let ok = (resp.body.contains("\"source\":\"model\"")
                                && (resp.body.contains(from_model)
                                    || resp.body.contains(from_quant)))
                                || (resp.body.contains("\"source\":\"search\"")
                                    && resp.body.contains(from_search));
                            if !ok {
                                wrong.fetch_add(1, Ordering::Relaxed);
                            } else if resp.body.contains("\"source\":\"search\"") {
                                from_search_n.fetch_add(1, Ordering::Relaxed);
                            } else {
                                from_model_n.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        429 => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                        s if s >= 500 => {
                            fivexx.fetch_add(1, Ordering::Relaxed);
                        }
                        s => return Err(format!("unexpected {s}: {}", resp.body)),
                    }
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    for handle in clients {
        // A client that hangs past its 30 s read timeout (or dies on a
        // socket error) fails the whole bench: the no-hang gate.
        let thread_latencies = handle
            .join()
            .map_err(|_| CliError::Run("loadgen client panicked".into()))?
            .map_err(|e| CliError::Run(format!("client hung or failed: {e}")))?;
        latencies.extend(thread_latencies);
    }
    let wall_secs = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let fault_cycles = conductor
        .join()
        .map_err(|_| CliError::Run("chaos conductor panicked".into()))?;

    // Recovery gate: with the faults drained, the breaker's half-open
    // probe must close the circuit and model serving must resume.
    let mut client = HttpClient::connect(addr, timeout).map_err(|e| CliError::Run(e.to_string()))?;
    let mut recovered = false;
    for _ in 0..100 {
        let resp = client
            .post("/v1/recommend/array", &pool[0].0)
            .map_err(|e| CliError::Run(e.to_string()))?;
        if resp.status == 200 && resp.body.contains("\"source\":\"model\"") {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let resp = client
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    server_thread
        .join()
        .map_err(|_| CliError::Run("server thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("server exited with: {e}")))?;
    let _ = std::fs::remove_file(&model_path);

    if !recovered {
        return Err(CliError::Run(
            "server did not recover to model serving after faults drained".into(),
        ));
    }
    let wrong = wrong.load(Ordering::Relaxed);
    if wrong > 0 {
        return Err(CliError::Run(format!(
            "{wrong} responses did not match the model or search oracle"
        )));
    }
    let fivexx = fivexx.load(Ordering::Relaxed);
    // Injected faults are bounded per cycle (5 inference errors + 1
    // panic); outside those windows the 5xx budget is 1% of the load.
    let max_5xx = fault_cycles * 6 + (requests as u64).div_ceil(100);
    if fivexx > max_5xx {
        return Err(CliError::Run(format!(
            "{fivexx} 5xx responses exceeds the {max_5xx} budget"
        )));
    }

    latencies.sort_unstable();
    let total = latencies.len();
    let qps = total as f64 / wall_secs;
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    let max_us = latencies.last().copied().unwrap_or(0);
    let from_model_n = from_model_n.load(Ordering::Relaxed);
    let from_search_n = from_search_n.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    println!(
        "  {qps:.0} req/s over {total} requests ({fault_cycles} fault cycles, \
         {from_model_n} model, {from_search_n} fallback, {fivexx} 5xx, {rejected} 429)"
    );
    println!("  latency p50 {p50} us, p95 {p95} us, p99 {p99} us, max {max_us} us");

    let body = format!(
        "{{\n  \"suite\": \"chaos\",\n  \"case\": \"cs1\",\n  \"requests\": {total},\n  \
         \"clients\": {CLIENTS},\n  \"fault_cycles\": {fault_cycles},\n  \
         \"responses_model\": {from_model_n},\n  \"responses_search\": {from_search_n},\n  \
         \"responses_5xx\": {fivexx},\n  \"responses_429\": {rejected},\n  \
         \"wrong_answers\": {wrong},\n  \"hung_clients\": 0,\n  \
         \"max_5xx_allowed\": {max_5xx},\n  \"recovered\": true,\n  \"qps\": {qps:.2},\n  \
         \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \"p99_us\": {p99},\n  \
         \"max_us\": {max_us}\n}}\n"
    );
    write_json(out_dir, "BENCH_chaos.json", &body)
}

/// One nonblocking loadgen connection for the c10k suite.
#[cfg(target_os = "linux")]
struct C10kClient {
    stream: std::net::TcpStream,
    /// 0 connecting, 1 sending, 2 reading, 3 idle.
    state: u8,
    out: Vec<u8>,
    out_pos: usize,
    inbuf: Vec<u8>,
    requests_done: u64,
    sent_at: Instant,
    want_write: bool,
}

/// Bytes of a complete HTTP/1.1 response at the front of `buf`, if one is
/// there (header scan + `Content-Length`; the server always sends one).
#[cfg(target_os = "linux")]
fn c10k_response_len(buf: &[u8]) -> Option<usize> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut content_length = 0usize;
    for line in head.split("\r\n") {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok()?;
            }
        }
    }
    let total = head_end + content_length;
    (buf.len() >= total).then_some(total)
}

/// What one loadgen thread measured.
#[cfg(target_os = "linux")]
struct C10kThreadResult {
    established: usize,
    failed_connects: usize,
    starved: usize,
    sustain_requests: u64,
    sustain_secs: f64,
    latencies_us: Vec<u64>,
}

/// Drives `conns` keep-alive connections through one epoll loop: ramp
/// (nonblocking connects in bounded batches), warm (every connection must
/// complete one request — the starvation gate), then a sustain window
/// keeping `window` requests outstanding, rotating across all
/// connections.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_lines, clippy::too_many_arguments)]
fn c10k_loadgen(
    tid: usize,
    addr: std::net::SocketAddr,
    conns: usize,
    conn_offset: usize,
    window: usize,
    warm_deadline: Instant,
    sustain: Duration,
    bodies: Arc<Vec<Vec<u8>>>,
    sustain_started: Arc<AtomicU64>,
) -> Result<C10kThreadResult, String> {
    use airchitect_serve::reactor::{self, Events, Interest, Poller};
    use std::io::{ErrorKind, Read, Write};
    use std::net::{Ipv4Addr, SocketAddrV4};
    use std::os::fd::AsRawFd;

    let std::net::SocketAddr::V4(dst) = addr else {
        return Err("c10k loadgen needs an IPv4 server address".into());
    };
    let poller = Poller::new().map_err(|e| format!("loadgen epoll: {e}"))?;
    let mut events = Events::with_capacity(1024);
    let mut clients: Vec<Option<C10kClient>> = (0..conns).map(|_| None).collect();
    let mut established = 0usize;
    let mut failed_connects = 0usize;
    let mut initiated = 0usize;
    let mut inflight_connects = 0usize;

    // Each source IP supports ~28k ephemeral ports to one destination;
    // rotate through 127.0.1.x when a fleet-wide run would exceed that.
    let source_for = |global_idx: usize| -> Option<Ipv4Addr> {
        let bucket = global_idx / 20_000;
        (bucket > 0).then(|| Ipv4Addr::new(127, 0, 1, (bucket % 250) as u8 + 1))
    };

    let connect_one = |idx: usize,
                           poller: &Poller,
                           clients: &mut Vec<Option<C10kClient>>,
                           failed: &mut usize|
     -> bool {
        match reactor::connect_from(source_for(conn_offset + idx), SocketAddrV4::new(*dst.ip(), dst.port())) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                if poller
                    .add(stream.as_raw_fd(), idx as u64, Interest::READ_WRITE)
                    .is_err()
                {
                    *failed += 1;
                    return false;
                }
                clients[idx] = Some(C10kClient {
                    stream,
                    state: 0,
                    out: Vec::new(),
                    out_pos: 0,
                    inbuf: Vec::new(),
                    requests_done: 0,
                    sent_at: Instant::now(),
                    want_write: true,
                });
                true
            }
            Err(_) => {
                *failed += 1;
                false
            }
        }
    };

    let request_bytes = |body: &[u8]| -> Vec<u8> {
        let mut req = format!(
            "POST /v1/recommend/array HTTP/1.1\r\nHost: c10k\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        )
        .into_bytes();
        req.extend_from_slice(body);
        req
    };

    // Phase state shared by the event handlers below.
    let mut phase = 1u8; // 1 warm, 2 sustain
    let mut sustain_requests = 0u64;
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut cursor = 0usize;
    let mut pick_counter = 0u64;

    // The per-event work, shared by warm and sustain: returns false if the
    // connection died (a hard failure for this suite — established
    // keep-alive connections must survive).
    // Implemented inline in the loop below for borrow simplicity.

    let mut sustain_until: Option<Instant> = None;
    loop {
        let now = Instant::now();
        match phase {
            1 => {
                if now >= warm_deadline {
                    break; // starved connections are counted after the loop
                }
                // Top up the connect window.
                while initiated < conns && inflight_connects < 1024 {
                    if connect_one(initiated, &poller, &mut clients, &mut failed_connects) {
                        inflight_connects += 1;
                    }
                    initiated += 1;
                }
                if established + failed_connects == conns {
                    let warmed = clients
                        .iter()
                        .flatten()
                        .filter(|c| c.requests_done >= 1)
                        .count();
                    if warmed + failed_connects == conns {
                        phase = 2;
                        sustain_started.fetch_add(1, Ordering::Release);
                        sustain_until = Some(Instant::now() + sustain);
                        sustain_requests = 0;
                        // Prime the outstanding window.
                        for _ in 0..window {
                            // send on next idle client
                            let mut scanned = 0;
                            while scanned < conns {
                                let idx = cursor % conns;
                                cursor += 1;
                                scanned += 1;
                                if clients[idx].as_ref().is_some_and(|c| c.state == 3) {
                                    let body =
                                        &bodies[(pick_counter as usize) % bodies.len()];
                                    pick_counter += 1;
                                    let c = clients[idx].as_mut().unwrap();
                                    c.out = request_bytes(body);
                                    c.out_pos = 0;
                                    c.state = 1;
                                    c.sent_at = Instant::now();
                                    // Kick the write immediately; epoll
                                    // won't report writable unless asked.
                                    let fd = c.stream.as_raw_fd();
                                    if !c.want_write {
                                        c.want_write = true;
                                        let _ = poller.modify(
                                            fd,
                                            idx as u64,
                                            Interest::READ_WRITE,
                                        );
                                    }
                                    break;
                                }
                            }
                        }
                    }
                }
            }
            _ => {
                if sustain_until.is_some_and(|t| now >= t) {
                    break;
                }
            }
        }

        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .map_err(|e| format!("loadgen epoll_wait: {e}"))?;
        let batch: Vec<_> = events.iter().collect();
        for ev in batch {
            let idx = ev.token as usize;
            let Some(client) = clients.get_mut(idx).and_then(|c| c.as_mut()) else {
                continue;
            };
            let mut dead = false;
            if client.state == 0 && (ev.writable || ev.failed) {
                match reactor::take_socket_error(&client.stream) {
                    Ok(None) => {
                        inflight_connects -= 1;
                        established += 1;
                        // Warm request.
                        let body = &bodies[idx % bodies.len()];
                        client.out = request_bytes(body);
                        client.out_pos = 0;
                        client.state = 1;
                        client.sent_at = Instant::now();
                    }
                    _ => {
                        inflight_connects -= 1;
                        failed_connects += 1;
                        dead = true;
                    }
                }
            }
            if !dead && client.state == 1 && (ev.writable || client.out_pos == 0) {
                loop {
                    if client.out_pos >= client.out.len() {
                        client.state = 2;
                        client.inbuf.clear();
                        // Stop asking for writable; reads drive now.
                        if client.want_write {
                            client.want_write = false;
                            let fd = client.stream.as_raw_fd();
                            let _ = poller.modify(fd, idx as u64, Interest::READ);
                        }
                        break;
                    }
                    match client.stream.write(&client.out[client.out_pos..]) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => client.out_pos += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            if !client.want_write {
                                client.want_write = true;
                                let fd = client.stream.as_raw_fd();
                                let _ =
                                    poller.modify(fd, idx as u64, Interest::READ_WRITE);
                            }
                            break;
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if !dead && client.state == 2 && ev.readable {
                let mut chunk = [0u8; 4096];
                loop {
                    match client.stream.read(&mut chunk) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => client.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
                if !dead {
                    if let Some(total) = c10k_response_len(&client.inbuf) {
                        client.inbuf.drain(..total);
                        client.requests_done += 1;
                        client.state = 3;
                        if phase == 2 {
                            sustain_requests += 1;
                            latencies_us
                                .push(client.sent_at.elapsed().as_micros() as u64);

                            // Rotate: launch the next request on the next
                            // idle connection, keeping the window full.
                            let mut scanned = 0;
                            while scanned < conns {
                                let next = cursor % conns;
                                cursor += 1;
                                scanned += 1;
                                if clients[next].as_ref().is_some_and(|c| c.state == 3) {
                                    let body =
                                        &bodies[(pick_counter as usize) % bodies.len()];
                                    pick_counter += 1;
                                    let c = clients[next].as_mut().unwrap();
                                    c.out = request_bytes(body);
                                    c.out_pos = 0;
                                    c.state = 1;
                                    c.sent_at = Instant::now();
                                    if !c.want_write {
                                        c.want_write = true;
                                        let fd = c.stream.as_raw_fd();
                                        let _ = poller.modify(
                                            fd,
                                            next as u64,
                                            Interest::READ_WRITE,
                                        );
                                    }
                                    break;
                                }
                            }
                            continue; // `client` borrow replaced by `c`
                        }
                    }
                }
            }
            if dead {
                if let Some(c) = clients[idx].take() {
                    let _ = poller.delete(c.stream.as_raw_fd());
                    if c.state != 0 {
                        // An established keep-alive connection died.
                        return Err(format!(
                            "loadgen {tid}: established connection {idx} died mid-run"
                        ));
                    }
                }
            }
        }
    }

    let sustain_secs = sustain.as_secs_f64();
    let starved = clients
        .iter()
        .flatten()
        .filter(|c| c.requests_done == 0)
        .count();
    Ok(C10kThreadResult {
        established,
        failed_connects,
        starved,
        sustain_requests,
        sustain_secs,
        latencies_us,
    })
}

#[cfg(not(target_os = "linux"))]
fn bench_c10k(_out_dir: &str, _quick: bool) -> Result<(), CliError> {
    Err(CliError::Run(
        "suite `c10k` needs the epoll reactor (Linux only)".into(),
    ))
}

/// c10k gate: tens of thousands of concurrent keep-alive connections
/// through the evented listener, every one of them served (no accept
/// starvation), with aggregate QPS above a hardware-aware floor. The
/// connection target scales down honestly when `RLIMIT_NOFILE` cannot
/// cover 50k in-process connection *pairs* (loadgen + server share this
/// process), and the emitted JSON records both the ask and the reality.
#[cfg(target_os = "linux")]
fn bench_c10k(out_dir: &str, quick: bool) -> Result<(), CliError> {
    use airchitect_serve::reactor;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let want: u64 = if quick { 5_000 } else { 50_000 };
    // Each connection is two fds in this process (client + server end);
    // keep headroom for models, epoll instances, and artifacts.
    let granted = reactor::raise_nofile_limit(2 * want + 1024);
    let target = (want.min(granted.saturating_sub(512) / 2)) as usize;
    let loadgen_threads = (cores / 2).clamp(1, 4);
    let window = 256usize;
    let sustain = Duration::from_secs(if quick { 2 } else { 8 });
    println!(
        "bench c10k: {target} keep-alive connections (asked {want}, nofile {granted}), \
         {loadgen_threads} loadgen threads, {window} outstanding, {}s sustain",
        sustain.as_secs()
    );

    let model_path = serve_model_file(if quick { 2_000 } else { 4_000 })?;
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        model_paths: vec![model_path.clone()],
        workers: 2,
        queue_depth: 2048,
        batch_max: 64,
        cache_capacity: 4096,
        read_timeout_secs: 300,
        write_timeout_secs: 30,
        event_loops: cores.clamp(2, 8),
        threaded: false,
        ..ServeConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| CliError::Run(e.to_string()))?;
    let addr = server.local_addr();
    let event_loops = server.event_loops();
    let server_thread = std::thread::spawn(move || server.run());

    // A small body pool: after the warm pass these are all cache hits,
    // which is what a c10k steady state looks like.
    let mut rng = StdRng::seed_from_u64(47);
    let bodies: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..64)
            .map(|_| {
                let wl = random_workload(&mut rng);
                format!(
                    "{{\"m\":{},\"n\":{},\"k\":{},\"mac_budget\":{}}}",
                    wl.m(),
                    wl.n(),
                    wl.k(),
                    1u64 << 10
                )
                .into_bytes()
            })
            .collect(),
    );

    let warm_deadline = Instant::now() + Duration::from_secs(if quick { 60 } else { 180 });
    let sustain_started = Arc::new(AtomicU64::new(0));
    let per_thread = target / loadgen_threads;
    let mut offset = 0usize;
    let loadgens: Vec<_> = (0..loadgen_threads)
        .map(|tid| {
            let conns = if tid == loadgen_threads - 1 {
                target - offset
            } else {
                per_thread
            };
            let this_offset = offset;
            offset += conns;
            let bodies = Arc::clone(&bodies);
            let sustain_started = Arc::clone(&sustain_started);
            std::thread::spawn(move || {
                c10k_loadgen(
                    tid,
                    addr,
                    conns,
                    this_offset,
                    window / loadgen_threads,
                    warm_deadline,
                    sustain,
                    bodies,
                    sustain_started,
                )
            })
        })
        .collect();

    // Chaos conductor: once every loadgen thread is in sustain, burst the
    // accept failpoint, then prove fresh connections still get through.
    let chaos_enabled = airchitect_chaos::is_enabled();
    let accept_faults = if chaos_enabled {
        while (sustain_started.load(Ordering::Acquire) as usize) < loadgen_threads
            && Instant::now() < warm_deadline
        {
            std::thread::sleep(Duration::from_millis(20));
        }
        for _ in 0..if quick { 2 } else { 4 } {
            airchitect_chaos::configure_str("serve.listener.accept=err(other):1:8")
                .expect("valid chaos schedule");
            // Faults only fire on accept attempts, and the sustain fleet is
            // already connected — so force fresh accepts through the fault
            // window. The accept loop must absorb the injected errors and
            // still admit every one of these connections.
            for _ in 0..4 {
                let mut c = HttpClient::connect(addr, Duration::from_secs(10))
                    .map_err(|e| CliError::Run(format!("connect under accept faults: {e}")))?;
                let resp = c
                    .get("/healthz")
                    .map_err(|e| CliError::Run(format!("healthz under accept faults: {e}")))?;
                if resp.status != 200 {
                    return Err(CliError::Run(format!(
                        "healthz under accept faults answered {}",
                        resp.status
                    )));
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        airchitect_chaos::configure_str("serve.listener.accept=off").expect("valid");
        airchitect_chaos::fired("serve.listener.accept")
    } else {
        0
    };

    let mut established = 0usize;
    let mut failed_connects = 0usize;
    let mut starved = 0usize;
    let mut requests = 0u64;
    let mut sustain_secs = 0f64;
    let mut latencies: Vec<u64> = Vec::new();
    for handle in loadgens {
        let r = handle
            .join()
            .map_err(|_| CliError::Run("c10k loadgen panicked".into()))?
            .map_err(CliError::Run)?;
        established += r.established;
        failed_connects += r.failed_connects;
        starved += r.starved;
        requests += r.sustain_requests;
        sustain_secs = sustain_secs.max(r.sustain_secs);
        latencies.extend(r.latencies_us);
    }

    // Accept-starvation probe: with the fault schedule over (the
    // failpoint may still have residual budget mid-burst in quick runs),
    // brand-new connections must still be admitted promptly while every
    // established connection stays open.
    let probe_timeout = Duration::from_secs(10);
    let mut probe_failures = 0usize;
    for _ in 0..50 {
        match HttpClient::connect(addr, probe_timeout) {
            Ok(mut client) => match client.get("/healthz") {
                Ok(resp) if resp.status == 200 => {}
                _ => probe_failures += 1,
            },
            Err(_) => probe_failures += 1,
        }
    }

    // Shutdown and drain before judging, so a gate failure still leaves no
    // stray server thread.
    let mut shut =
        HttpClient::connect(addr, probe_timeout).map_err(|e| CliError::Run(e.to_string()))?;
    let resp = shut
        .post("/v1/shutdown", "")
        .map_err(|e| CliError::Run(e.to_string()))?;
    if resp.status != 200 {
        return Err(CliError::Run(format!("shutdown returned {}", resp.status)));
    }
    server_thread
        .join()
        .map_err(|_| CliError::Run("server thread panicked".into()))?
        .map_err(|e| CliError::Run(format!("server exited with: {e}")))?;
    let _ = std::fs::remove_file(&model_path);

    // Gates.
    if failed_connects > 0 {
        return Err(CliError::Run(format!(
            "{failed_connects} of {target} connections failed to establish"
        )));
    }
    if starved > 0 {
        return Err(CliError::Run(format!(
            "{starved} connections never completed a request (accept/serve starvation)"
        )));
    }
    if probe_failures > 0 {
        return Err(CliError::Run(format!(
            "{probe_failures}/50 fresh connections failed after the chaos schedule \
             (accept starvation)"
        )));
    }
    if chaos_enabled && accept_faults == 0 {
        return Err(CliError::Run(
            "chaos build but the accept failpoint never fired".into(),
        ));
    }
    // Hardware-aware QPS floor: the paper-reproduction figure (100k
    // aggregate) needs real parallelism; smaller hosts get a
    // per-core floor so the gate still means something.
    let qps = requests as f64 / sustain_secs;
    let qps_gate = if cores >= 8 {
        100_000.0
    } else {
        2_000.0 * cores as f64
    };
    if qps < qps_gate {
        return Err(CliError::Run(format!(
            "c10k sustain QPS {qps:.0} below the {qps_gate:.0} floor ({cores} cores)"
        )));
    }

    latencies.sort_unstable();
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 0.99),
    );
    println!(
        "  {established} connections, {requests} sustain requests, {qps:.0} req/s \
         (floor {qps_gate:.0}), {accept_faults} accept faults injected"
    );
    println!("  latency p50 {p50} us, p95 {p95} us, p99 {p99} us");

    let body = format!(
        "{{\n  \"suite\": \"c10k\",\n  \"case\": \"cs1\",\n  \"event_loops\": {event_loops},\n  \
         \"target_connections\": {want},\n  \"connections\": {established},\n  \
         \"failed_connects\": {failed_connects},\n  \"starved\": {starved},\n  \
         \"requests\": {requests},\n  \"qps\": {qps:.2},\n  \"qps_gate\": {qps_gate:.2},\n  \
         \"duration_secs\": {sustain_secs:.2},\n  \"accept_faults\": {accept_faults},\n  \
         \"probe_failures\": {probe_failures},\n  \"p50_us\": {p50},\n  \"p95_us\": {p95},\n  \
         \"p99_us\": {p99}\n}}\n"
    );
    write_json(out_dir, "BENCH_c10k.json", &body)
}
