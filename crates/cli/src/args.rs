//! Hand-rolled `--key value` argument parsing.

use std::collections::BTreeMap;

use crate::CliError;

/// Parsed `--key value` arguments plus bare flags (`--verify`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses a raw argv slice.
    ///
    /// A token starting with `--` that is followed by another `--` token (or
    /// nothing) is a bare flag; otherwise it consumes the next token as its
    /// value.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] for tokens that are not `--`-prefixed or
    /// for duplicate keys.
    pub fn parse(argv: &[String]) -> Result<Self, CliError> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            let Some(key) = token.strip_prefix("--") else {
                return Err(CliError::Usage(format!("expected `--key`, got `{token}`")));
            };
            if key.is_empty() {
                return Err(CliError::Usage("empty flag `--`".into()));
            }
            let next_is_value = argv.get(i + 1).is_some_and(|n| !n.starts_with("--"));
            if next_is_value {
                if args
                    .values
                    .insert(key.to_string(), argv[i + 1].clone())
                    .is_some()
                {
                    return Err(CliError::Usage(format!("duplicate key `--{key}`")));
                }
                i += 2;
            } else {
                if args.flags.contains(&key.to_string()) {
                    return Err(CliError::Usage(format!("duplicate flag `--{key}`")));
                }
                args.flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(args)
    }

    /// A required string value.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if missing.
    pub fn required(&self, key: &str) -> Result<&str, CliError> {
        self.values
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| CliError::Usage(format!("missing required `--{key}`")))
    }

    /// An optional string value.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A required integer value.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if missing or unparsable.
    pub fn required_u64(&self, key: &str) -> Result<u64, CliError> {
        self.required(key)?
            .parse::<u64>()
            .map_err(|_| CliError::Usage(format!("`--{key}` must be a positive integer")))
    }

    /// An optional integer value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if present but unparsable.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, CliError> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<u64>()
                .map_err(|_| CliError::Usage(format!("`--{key}` must be a positive integer"))),
        }
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects keys/flags outside the allowed set (typo protection).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] naming the first unknown argument.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), CliError> {
        for key in self.values.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(CliError::Usage(format!("unknown argument `--{key}`")));
            }
        }
        Ok(())
    }
}

/// Parses a `M,N,K;M,N,K;...` workload list.
///
/// # Errors
///
/// Returns [`CliError::Usage`] on malformed input.
pub fn parse_workloads(spec: &str) -> Result<Vec<(u64, u64, u64)>, CliError> {
    spec.split(';')
        .map(|triple| {
            let parts: Vec<&str> = triple.split(',').collect();
            if parts.len() != 3 {
                return Err(CliError::Usage(format!(
                    "workload `{triple}` must be M,N,K"
                )));
            }
            let mut dims = [0u64; 3];
            for (d, p) in dims.iter_mut().zip(&parts) {
                *d = p
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| CliError::Usage(format!("bad dimension `{p}`")))?;
            }
            Ok((dims[0], dims[1], dims[2]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| v.to_string()).collect()
    }

    #[test]
    fn parses_keys_and_flags() {
        let a = Args::parse(&argv(&["--m", "64", "--verify", "--n", "32"])).unwrap();
        assert_eq!(a.required_u64("m").unwrap(), 64);
        assert_eq!(a.required_u64("n").unwrap(), 32);
        assert!(a.flag("verify"));
        assert!(!a.flag("other"));
    }

    #[test]
    fn rejects_bare_values_and_duplicates() {
        assert!(Args::parse(&argv(&["m", "64"])).is_err());
        assert!(Args::parse(&argv(&["--m", "1", "--m", "2"])).is_err());
        assert!(Args::parse(&argv(&["--verify", "--verify"])).is_err());
    }

    #[test]
    fn required_and_defaults() {
        let a = Args::parse(&argv(&["--m", "7"])).unwrap();
        assert!(a.required("missing").is_err());
        assert_eq!(a.u64_or("epochs", 15).unwrap(), 15);
        assert!(a.required_u64("m").is_ok());
        let a = Args::parse(&argv(&["--m", "abc"])).unwrap();
        assert!(a.required_u64("m").is_err());
    }

    #[test]
    fn expect_only_catches_typos() {
        let a = Args::parse(&argv(&["--m", "1", "--bogus", "2"])).unwrap();
        assert!(a.expect_only(&["m"]).is_err());
        assert!(a.expect_only(&["m", "bogus"]).is_ok());
    }

    #[test]
    fn workload_list_parsing() {
        let wls = parse_workloads("1,2,3;4,5,6").unwrap();
        assert_eq!(wls, vec![(1, 2, 3), (4, 5, 6)]);
        assert!(parse_workloads("1,2").is_err());
        assert!(parse_workloads("a,b,c").is_err());
    }
}
