//! Subcommand implementations.

use airchitect::checkpoint::CheckpointError;
use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist::PersistError;
use airchitect::pipeline::{self, CheckpointConfig, PipelineError};
use airchitect::{persist, Recommender};
use airchitect_data::{codec, DataError};
use airchitect_dse::case1::{self, Case1Problem};
use airchitect_dse::case2::{self, Case2Problem, Case2Query};
use airchitect_dse::case3::{self, Case3Problem};
use airchitect_dse::parallel::{self, ParallelError};
use airchitect_dse::search_algos::SearchStrategy;
use airchitect_dse::space::{Case1Space, Case2Space, Case3Space};
use airchitect_nn::optim::Optimizer;
use airchitect_nn::train::TrainConfig;
use airchitect_online as online;
use airchitect_sim::functional::{FunctionalArray, SimMatrix};
use airchitect_sim::memory::BufferConfig;
use airchitect_sim::{report, ArrayConfig, Dataflow};
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::args::{parse_workloads, Args};
use crate::CliError;

fn run_err(e: impl std::fmt::Display) -> CliError {
    CliError::Run(e.to_string())
}

/// Shared `--trace` / `--metrics-out FILE` handling.
///
/// [`telemetry_begin`] arms the recorder (and opens the JSONL sink) before
/// a command's work; [`Telemetry::finish`] always tears it down afterwards
/// — even when the command failed — so a traced error in one invocation
/// cannot leak recording state into the next (the CLI tests run many
/// commands in one process).
pub(crate) struct Telemetry {
    command: &'static str,
    trace: bool,
    active: bool,
    out: Option<String>,
}

pub(crate) fn telemetry_begin(args: &Args, command: &'static str) -> Result<Telemetry, CliError> {
    let trace = args.flag("trace");
    let out = args.optional("metrics-out").map(str::to_string);
    let active = trace || out.is_some();
    if active {
        airchitect_telemetry::reset();
        airchitect_telemetry::enable();
    }
    if let Some(path) = &out {
        airchitect_telemetry::sink::open(std::path::Path::new(path), command).map_err(|e| {
            CliError::Io {
                path: path.clone(),
                message: e.to_string(),
            }
        })?;
    }
    Ok(Telemetry {
        command,
        trace,
        active,
        out,
    })
}

impl Telemetry {
    /// Disables recording, prints the `--trace` summary, and closes the
    /// sink (flushing whatever was recorded even on failure). The
    /// command's own error, if any, takes precedence over sink I/O errors.
    pub(crate) fn finish(self, result: Result<(), CliError>) -> Result<(), CliError> {
        if !self.active {
            return result;
        }
        if result.is_ok() && self.trace {
            print!("{}", self.live_report().render());
        }
        let closed = airchitect_telemetry::sink::close();
        airchitect_telemetry::disable();
        match (result, closed) {
            (Err(e), _) => Err(e),
            (Ok(()), Err(e)) => Err(CliError::Io {
                path: self.out.unwrap_or_default(),
                message: e.to_string(),
            }),
            (Ok(()), Ok(Some(path))) => {
                println!("telemetry written to {}", path.display());
                Ok(())
            }
            (Ok(()), Ok(None)) => Ok(()),
        }
    }

    /// The in-memory state rendered like a parsed file (events are only
    /// counted by the sink, so that section is empty here).
    fn live_report(&self) -> airchitect_telemetry::report::Report {
        let snap = airchitect_telemetry::metrics::snapshot();
        airchitect_telemetry::report::Report {
            command: self.command.to_string(),
            schema_version: airchitect_telemetry::SCHEMA_VERSION,
            spans: airchitect_telemetry::span::aggregates()
                .into_iter()
                .map(|(name, agg)| (name.to_string(), agg))
                .collect(),
            events: Vec::new(),
            counters: snap.counters,
            gauges: snap.gauges,
            histograms: snap.histograms,
            shadow_records: 0,
            shadow_disagreements: 0,
        }
    }
}

/// Maps a dataset-codec error for `path` onto the exit-code taxonomy:
/// unreadable file → [`CliError::Io`], damaged contents →
/// [`CliError::Corrupt`].
fn data_err(path: &str) -> impl Fn(DataError) -> CliError + '_ {
    move |e| match e {
        DataError::Io(message) => CliError::Io {
            path: path.to_string(),
            message,
        },
        DataError::Corrupt { .. } | DataError::ChecksumMismatch { .. } => CliError::Corrupt {
            path: path.to_string(),
            message: e.to_string(),
        },
        other => CliError::Run(other.to_string()),
    }
}

/// Maps a model-codec error for `path` onto the exit-code taxonomy.
fn persist_err(path: &str) -> impl Fn(PersistError) -> CliError + '_ {
    move |e| match e {
        PersistError::Io(message) => CliError::Io {
            path: path.to_string(),
            message,
        },
        PersistError::Corrupt(_)
        | PersistError::ChecksumMismatch { .. }
        | PersistError::Network(_) => CliError::Corrupt {
            path: path.to_string(),
            message: e.to_string(),
        },
    }
}

/// Maps a checkpointed-pipeline error onto the exit-code taxonomy, naming
/// the checkpoint directory as the offending path.
fn pipeline_err(dir: &str) -> impl Fn(PipelineError) -> CliError + '_ {
    move |e| match e {
        PipelineError::Config(what) => CliError::Usage(what.to_string()),
        PipelineError::Checkpoint(CheckpointError::Io(message)) => CliError::Io {
            path: dir.to_string(),
            message,
        },
        PipelineError::Checkpoint(
            ce @ (CheckpointError::Corrupt(_) | CheckpointError::ChecksumMismatch { .. }),
        ) => CliError::Corrupt {
            path: dir.to_string(),
            message: ce.to_string(),
        },
        PipelineError::Generation(ParallelError::Data(de)) => data_err(dir)(de),
        other => CliError::Run(other.to_string()),
    }
}

/// Resolves the `--checkpoint-dir DIR` / `--resume DIR` pair shared by
/// `generate` and `train`: at most one may be given; `--resume` implies
/// resuming from (and continuing to checkpoint into) its directory.
fn checkpoint_args(args: &Args) -> Result<Option<(String, bool)>, CliError> {
    match (args.optional("checkpoint-dir"), args.optional("resume")) {
        (Some(_), Some(_)) => Err(CliError::Usage(
            "pass either `--checkpoint-dir` or `--resume`, not both".into(),
        )),
        (Some(dir), None) => Ok(Some((dir.to_string(), false))),
        (None, Some(dir)) => Ok(Some((dir.to_string(), true))),
        (None, None) => Ok(None),
    }
}

fn parse_dataflow(args: &Args) -> Result<Dataflow, CliError> {
    match args.optional("dataflow") {
        None => Ok(Dataflow::Os),
        Some(s) => s.parse::<Dataflow>().map_err(run_err),
    }
}

fn parse_case(args: &Args) -> Result<CaseStudy, CliError> {
    match args.required("case")? {
        "1" => Ok(CaseStudy::ArrayDataflow),
        "2" => Ok(CaseStudy::BufferSizing),
        "3" => Ok(CaseStudy::MultiArrayScheduling),
        other => Err(CliError::Usage(format!(
            "`--case` must be 1, 2, or 3 (got `{other}`)"
        ))),
    }
}

/// `airchitect simulate` — analytical model, optional functional verify.
pub fn simulate(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "m",
        "n",
        "k",
        "rows",
        "cols",
        "dataflow",
        "ifmap-kb",
        "filter-kb",
        "ofmap-kb",
        "bandwidth",
        "verify",
        "trace",
    ])?;
    let wl = GemmWorkload::new(
        args.required_u64("m")?,
        args.required_u64("n")?,
        args.required_u64("k")?,
    )
    .map_err(run_err)?;
    let array = ArrayConfig::new(args.required_u64("rows")?, args.required_u64("cols")?)
        .map_err(run_err)?;
    let dataflow = parse_dataflow(&args)?;
    let buffers = BufferConfig::from_kb(
        args.u64_or("ifmap-kb", 256)?,
        args.u64_or("filter-kb", 256)?,
        args.u64_or("ofmap-kb", 128)?,
    )
    .map_err(run_err)?;
    let bandwidth = args.u64_or("bandwidth", 16)?;

    let r = report::simulate(&wl, array, dataflow, buffers, bandwidth).map_err(run_err)?;
    println!("{wl} on {array} ({dataflow}), {bandwidth} B/cycle");
    println!("  compute cycles : {}", r.compute_cycles);
    println!("  stall cycles   : {}", r.stall_cycles);
    println!("  total cycles   : {}", r.total_cycles);
    println!("  utilization    : {:.4}", r.utilization);
    println!(
        "  DRAM traffic   : ifmap {} B, filter {} B, ofmap {} B",
        r.traffic.ifmap, r.traffic.filter, r.traffic.ofmap
    );
    println!("  energy         : {:.3e} units", r.energy);

    if args.flag("trace") {
        let t = airchitect_sim::trace::trace(&wl, array, dataflow);
        println!(
            "  trace          : {} phases, peak bandwidth demand {:.2} B/cycle",
            t.phases().len(),
            t.peak_bandwidth()
        );
        println!(
            "    {:>5} {:>7} {:>8} {:>10} {:>10} {:>10}",
            "fold", "phase", "cycles", "ifmap B", "filter B", "ofmap B"
        );
        for p in t.phases().iter().take(12) {
            println!(
                "    {:>5} {:>7} {:>8} {:>10} {:>10} {:>10}",
                p.fold,
                p.kind.to_string(),
                p.cycles,
                p.ifmap_bytes,
                p.filter_bytes,
                p.ofmap_bytes
            );
        }
        if t.phases().len() > 12 {
            println!("    ... ({} more phases)", t.phases().len() - 12);
        }
    }

    if args.flag("verify") {
        let (m, n, k) = (wl.m() as usize, wl.n() as usize, wl.k() as usize);
        if m * k + k * n > 4_000_000 {
            return Err(CliError::Run(
                "--verify is for small GEMMs (operands over 4M elements)".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(0);
        let mut fill = |rows: usize, cols: usize| {
            SimMatrix::from_vec(
                rows,
                cols,
                (0..rows * cols)
                    .map(|_| (rng.random_range(-8i32..=8)) as f32)
                    .collect(),
            )
        };
        let a = fill(m, k);
        let b = fill(k, n);
        let result = FunctionalArray::new(array)
            .execute(&wl, &a, &b, dataflow)
            .map_err(run_err)?;
        let ok_product = result.output == a.matmul_reference(&b);
        let ok_cycles = result.cycles == r.compute_cycles;
        println!(
            "  verify         : product {}  cycles {} ({} functional vs {} analytical)",
            if ok_product { "OK" } else { "MISMATCH" },
            if ok_cycles { "OK" } else { "MISMATCH" },
            result.cycles,
            r.compute_cycles
        );
        if !(ok_product && ok_cycles) {
            return Err(CliError::Run("functional verification failed".into()));
        }
    }
    Ok(())
}

/// `airchitect search` — the conventional exhaustive flow.
pub fn search(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    match args.required("case")? {
        "1" => {
            args.expect_only(&["case", "m", "n", "k", "budget-log2", "method"])?;
            let wl = GemmWorkload::new(
                args.required_u64("m")?,
                args.required_u64("n")?,
                args.required_u64("k")?,
            )
            .map_err(run_err)?;
            let budget_log2 = args.u64_or("budget-log2", 18)? as u32;
            let problem = Case1Problem::new(1u64 << budget_log2);
            let t0 = std::time::Instant::now();
            let r = match args.optional("method").unwrap_or("exhaustive") {
                "exhaustive" => problem.search(&wl, 1u64 << budget_log2),
                "random" => airchitect_dse::search_algos::RandomSearch {
                    evaluations: 30,
                    seed: 0,
                }
                .search(&problem, &wl, 1u64 << budget_log2),
                "hill-climb" => airchitect_dse::search_algos::HillClimb {
                    restarts: 3,
                    seed: 0,
                }
                .search(&problem, &wl, 1u64 << budget_log2),
                "genetic" => airchitect_dse::search_algos::GeneticSearch::default().search(
                    &problem,
                    &wl,
                    1u64 << budget_log2,
                ),
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown method `{other}` (exhaustive|random|hill-climb|genetic)"
                    )))
                }
            };
            let (array, df) = problem.space().decode(r.label).expect("label in space");
            println!("{wl}, budget 2^{budget_log2} MACs");
            println!(
                "  result: {array} with {df} — {} cycles (label {}, {} evals in {:?})",
                r.cost,
                r.label,
                r.evaluations,
                t0.elapsed()
            );
        }
        "2" => {
            args.expect_only(&[
                "case",
                "m",
                "n",
                "k",
                "rows",
                "cols",
                "dataflow",
                "bandwidth",
                "limit-kb",
            ])?;
            let query = Case2Query {
                workload: GemmWorkload::new(
                    args.required_u64("m")?,
                    args.required_u64("n")?,
                    args.required_u64("k")?,
                )
                .map_err(run_err)?,
                array: ArrayConfig::new(args.required_u64("rows")?, args.required_u64("cols")?)
                    .map_err(run_err)?,
                dataflow: parse_dataflow(&args)?,
                bandwidth: args.u64_or("bandwidth", 16)?,
                limit_kb: args.u64_or("limit-kb", 1500)?,
            };
            let problem = Case2Problem::new();
            let r = problem.search(&query);
            let (i, f, o) = problem.space().decode(r.label).expect("label in space");
            println!(
                "optimum buffers: IFMAP {i} KB, Filter {f} KB, OFMAP {o} KB — {} stall cycles (label {})",
                r.cost, r.label
            );
        }
        "3" => {
            args.expect_only(&["case", "workloads"])?;
            let triples = parse_workloads(args.required("workloads")?)?;
            if triples.len() != 4 {
                return Err(CliError::Usage("case 3 needs exactly 4 workloads".into()));
            }
            let workloads: Vec<GemmWorkload> = triples
                .iter()
                .map(|&(m, n, k)| GemmWorkload::new(m, n, k).map_err(run_err))
                .collect::<Result<_, _>>()?;
            let problem = Case3Problem::new();
            let r = problem.search(&workloads);
            let (perm, dfs) = problem.space().decode(r.label).expect("label in space");
            println!(
                "optimum schedule (label {}): makespan {} cycles",
                r.label, r.cost
            );
            for (array_idx, (wl_idx, df)) in perm.iter().zip(&dfs).enumerate() {
                println!(
                    "  array {array_idx} ({}) <- workload {wl_idx} {} with {df}",
                    problem.system().instances()[array_idx].config,
                    workloads[*wl_idx]
                );
            }
        }
        other => {
            return Err(CliError::Usage(format!(
                "`--case` must be 1, 2, or 3 (got `{other}`)"
            )))
        }
    }
    Ok(())
}

/// `airchitect spaces` — inspect the output spaces.
pub fn spaces(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&["budget-log2"])?;
    let budget_log2 = args.u64_or("budget-log2", 18)? as u32;
    let s1 = Case1Space::new(1u64 << budget_log2);
    let s2 = Case2Space::paper();
    let s3 = Case3Space::paper();
    println!("case 1 (budget 2^{budget_log2}): {} labels", s1.len());
    println!("case 2 (buffers 100..1000 KB):   {} labels", s2.len());
    println!("case 3 (4 arrays):               {} labels", s3.len());
    Ok(())
}

/// `airchitect generate` — labeled dataset to a `.aids` file.
pub fn generate(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "case",
        "samples",
        "out",
        "seed",
        "budget-log2",
        "threads",
        "checkpoint-dir",
        "resume",
        "trace",
        "metrics-out",
    ])?;
    let tele = telemetry_begin(&args, "generate")?;
    tele.finish(generate_inner(&args))
}

fn generate_inner(args: &Args) -> Result<(), CliError> {
    let case = parse_case(args)?;
    let samples = args.required_u64("samples")? as usize;
    let out = args.required("out")?;
    let seed = args.u64_or("seed", 0)?;
    let threads = args.u64_or("threads", 1)? as usize;
    let checkpoint = checkpoint_args(args)?;
    if case != CaseStudy::ArrayDataflow && (threads != 1 || checkpoint.is_some()) {
        return Err(CliError::Usage(
            "`--threads`, `--checkpoint-dir`, and `--resume` are only supported for case 1".into(),
        ));
    }
    let t0 = std::time::Instant::now();
    let mut datagen_span = airchitect_telemetry::span::Span::enter("pipeline.datagen");
    datagen_span.field_u64("samples", samples as u64);
    datagen_span.field_str(
        "case",
        match case {
            CaseStudy::ArrayDataflow => "cs1",
            CaseStudy::BufferSizing => "cs2",
            CaseStudy::MultiArrayScheduling => "cs3",
        },
    );
    let (ds, resumed_shards) = match case {
        CaseStudy::ArrayDataflow => {
            let budget_log2 = args.u64_or("budget-log2", 15)? as u32;
            let problem = Case1Problem::new(1u64 << budget_log2);
            let spec = case1::Case1DatasetSpec {
                samples,
                budget_log2_range: (5, budget_log2),
                seed,
            };
            match &checkpoint {
                Some((dir, _)) => {
                    // Checkpointed generation always reuses intact shards;
                    // `--resume` and `--checkpoint-dir` differ only in
                    // intent (the spec manifest catches directory misuse).
                    let run = parallel::generate_case1_checkpointed(&problem, &spec, threads, dir)
                        .map_err(|e| match e {
                            ParallelError::Data(de) => data_err(dir)(de),
                            other => run_err(other),
                        })?;
                    let resumed = run.shards.iter().filter(|s| s.resumed).count();
                    (run.dataset, resumed)
                }
                None if threads > 1 => (
                    parallel::generate_case1_parallel(&problem, &spec, threads).map_err(run_err)?,
                    0,
                ),
                None => (case1::generate_dataset(&problem, &spec), 0),
            }
        }
        CaseStudy::BufferSizing => (
            case2::generate_dataset(
                &Case2Problem::new(),
                &case2::Case2DatasetSpec {
                    samples,
                    seed,
                    ..Default::default()
                },
            ),
            0,
        ),
        CaseStudy::MultiArrayScheduling => (
            case3::generate_dataset(
                &Case3Problem::new(),
                &case3::Case3DatasetSpec { samples, seed },
            ),
            0,
        ),
    };
    drop(datagen_span);
    codec::save(&ds, out).map_err(data_err(out))?;
    if resumed_shards > 0 {
        println!("resumed: reused {resumed_shards} checkpointed shard(s)");
    }
    println!(
        "wrote {} samples ({} classes, {} features) to {out} in {:?}",
        ds.len(),
        ds.num_classes(),
        ds.feature_dim(),
        t0.elapsed()
    );
    Ok(())
}

/// `airchitect train` — fit a model on a `.aids` dataset, or (with
/// `--quick`) run a self-contained CS1 smoke pipeline.
pub fn train(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "case",
        "data",
        "out",
        "epochs",
        "batch",
        "seed",
        "threads",
        "checkpoint-dir",
        "resume",
        "every-epochs",
        "quick",
        "samples",
        "trace",
        "metrics-out",
        "from-log",
        "model",
        "model-dir",
        "lr",
    ])?;
    let tele = telemetry_begin(&args, "train")?;
    let result = if args.optional("from-log").is_some() {
        train_from_log(&args)
    } else if args.flag("quick") {
        train_quick(&args)
    } else {
        train_inner(&args)
    };
    tele.finish(result)
}

/// `train --from-log`: replay a shadow-oracle misprediction log and
/// fine-tune the current checkpoint on the disagreements, continuing from
/// its existing weights with a reduced learning rate. The checksummed
/// output artifact is what an operator (or the online soak) pushes through
/// `POST /v1/reload`.
fn train_from_log(args: &Args) -> Result<(), CliError> {
    for forbidden in ["case", "data", "quick", "samples", "checkpoint-dir", "resume"] {
        if args.optional(forbidden).is_some() || args.flag(forbidden) {
            return Err(CliError::Usage(format!(
                "`--from-log` fine-tunes an existing model; drop `--{forbidden}`"
            )));
        }
    }
    let dir = args.required("from-log")?;
    let model_path = args.required("model")?;
    let out = args.optional("out");
    let model_dir = args.optional("model-dir");
    match (out, model_dir) {
        (None, None) => {
            return Err(CliError::Usage(
                "`--from-log` needs `--out <path>` or `--model-dir <registry>`".into(),
            ))
        }
        (Some(_), Some(_)) => {
            return Err(CliError::Usage(
                "`--out` and `--model-dir` are exclusive; the registry names its own artifacts"
                    .into(),
            ))
        }
        _ => {}
    }
    let threads = args.u64_or("threads", 1)? as usize;
    if threads == 0 {
        return Err(CliError::Usage("`--threads` must be at least 1".into()));
    }
    let lr = match args.optional("lr") {
        None => 1e-4f32,
        Some(raw) => {
            let lr: f32 = raw
                .parse()
                .ok()
                .filter(|lr: &f32| lr.is_finite() && *lr > 0.0)
                .ok_or_else(|| {
                    CliError::Usage(format!(
                        "`--lr` must be a positive learning rate (got `{raw}`)"
                    ))
                })?;
            lr
        }
    };
    let opts = online::FineTuneOptions {
        epochs: args.u64_or("epochs", 4)? as usize,
        lr,
        batch_size: args.u64_or("batch", 64)? as usize,
        threads,
        seed: args.u64_or("seed", 0)?,
    };
    if opts.epochs == 0 {
        return Err(CliError::Usage("`--epochs` must be at least 1".into()));
    }

    let mut model = persist::load(model_path).map_err(persist_err(model_path))?;
    let scan = online::read_dir(std::path::Path::new(dir)).map_err(|e| CliError::Io {
        path: dir.to_string(),
        message: format!("read misprediction log: {e}"),
    })?;
    println!(
        "misprediction log: {} record(s) across {} segment(s) ({} torn, {} skipped line(s))",
        scan.records.len(),
        scan.segments,
        scan.torn_segments,
        scan.skipped_lines
    );
    let t0 = std::time::Instant::now();
    let outcome = online::fine_tune(&mut model, &scan.records, &opts).map_err(run_err)?;
    println!(
        "replayed {} record(s) for {}: {} disagreement(s), {} row(s) trained \
         (skipped: {} cross-version, {} other-case, {} out-of-space)",
        outcome.records_seen,
        model.case_study().name(),
        outcome.disagreements,
        outcome.used_rows,
        outcome.skipped_cross_version,
        outcome.skipped_other_case,
        outcome.skipped_out_of_space,
    );
    match &outcome.report {
        Some(report) => {
            for e in &report.history.epochs {
                println!(
                    "epoch {:>3}: loss {:.4}  accuracy {:.4}",
                    e.epoch, e.train_loss, e.train_accuracy
                );
            }
            let written = emit_artifact(&model, out, model_dir)?;
            println!(
                "fine-tuned against model version {} in {:?}; model written to {written}",
                outcome.target_version,
                t0.elapsed()
            );
        }
        None => {
            // Nothing to learn from — still emit the artifact so callers
            // can reload unconditionally.
            let written = emit_artifact(&model, out, model_dir)?;
            println!("no usable disagreements; model copied unchanged to {written}");
        }
    }
    Ok(())
}

/// Writes the fine-tuned artifact either to a plain `--out` path or into
/// the `--model-dir` registry as a new staged version. Registration
/// refuses any artifact whose fingerprint matches a quarantined
/// (rolled-back) version — re-emitting known-bad weights must not re-enter
/// the rollout pipeline.
fn emit_artifact(
    model: &AirchitectModel,
    out: Option<&str>,
    model_dir: Option<&str>,
) -> Result<String, CliError> {
    use airchitect_serve::registry::{Registry, RegistryError, DEFAULT_RETAIN};
    if let Some(out) = out {
        persist::save(model, out).map_err(persist_err(out))?;
        return Ok(out.to_string());
    }
    let dir = model_dir.expect("caller validated out|model-dir");
    let bytes = persist::to_bytes(model);
    let mut reg = Registry::open(dir, DEFAULT_RETAIN)
        .map_err(|e| CliError::Run(format!("--model-dir {dir}: {e}")))?;
    match reg.add_version(&bytes) {
        Ok(version) => Ok(format!(
            "{} (staged version {version}; promote via POST /v1/reload)",
            reg.version_path(version).display()
        )),
        Err(RegistryError::Quarantined {
            version,
            fingerprint,
        }) => Err(CliError::Run(format!(
            "artifact fingerprint 0x{fingerprint:08x} matches quarantined version {version}; \
             refusing to re-register rolled-back weights"
        ))),
        Err(e) => Err(CliError::Run(format!("register artifact in {dir}: {e}"))),
    }
}

/// `train --quick`: generate → checkpointed train → evaluate, a small CS1
/// pipeline sized for seconds. No dataset file is needed, and a traced run
/// exercises every span kind (datagen, epochs, checkpoint saves, eval).
fn train_quick(args: &Args) -> Result<(), CliError> {
    let threads = args.u64_or("threads", 1)? as usize;
    if threads == 0 {
        return Err(CliError::Usage("`--threads` must be at least 1".into()));
    }
    if args.optional("data").is_some() {
        return Err(CliError::Usage(
            "`--quick` generates its own data; drop `--data`".into(),
        ));
    }
    let config = pipeline::PipelineConfig {
        samples: args.u64_or("samples", 600)? as usize,
        epochs: args.u64_or("epochs", 6)? as usize,
        batch_size: args.u64_or("batch", 64)? as usize,
        seed: args.u64_or("seed", 7)?,
        stratify: false,
        threads,
    };
    let checkpoint = checkpoint_args(args)?;
    let (dir, resume, ephemeral) = match &checkpoint {
        Some((dir, resume)) => (std::path::PathBuf::from(dir), *resume, false),
        None => (
            std::env::temp_dir().join(format!("airchitect-quick-{}", std::process::id())),
            false,
            true,
        ),
    };
    let ckpt = CheckpointConfig {
        every_epochs: args.u64_or("every-epochs", 1)? as usize,
        ..CheckpointConfig::new(&dir)
    };
    let t0 = std::time::Instant::now();
    let run = pipeline::run_case1_checkpointed(&config, (5, 9), &ckpt, resume)
        .map_err(pipeline_err(&dir.display().to_string()))?;
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    for e in &run.report.history.epochs {
        println!(
            "epoch {:>3}: loss {:.4}  accuracy {:.4}",
            e.epoch, e.train_loss, e.train_accuracy
        );
    }
    println!(
        "quick cs1 pipeline: {} samples, test accuracy {:.4}, penalty geomean {:.4} ({:?})",
        config.samples,
        run.test_accuracy,
        run.penalty.geomean,
        t0.elapsed()
    );
    if let Some(out) = args.optional("out") {
        persist::save(&run.model, out).map_err(persist_err(out))?;
        println!("model written to {out}");
    }
    Ok(())
}

fn train_inner(args: &Args) -> Result<(), CliError> {
    if args.optional("samples").is_some() {
        return Err(CliError::Usage("`--samples` needs `--quick`".into()));
    }
    let case = parse_case(args)?;
    let threads = args.u64_or("threads", 1)? as usize;
    if threads == 0 {
        return Err(CliError::Usage("`--threads` must be at least 1".into()));
    }
    let data_path = args.required("data")?;
    let ds = codec::load(data_path).map_err(data_err(data_path))?;
    if ds.feature_dim() != case.input_dim() {
        return Err(CliError::Run(format!(
            "dataset has {} features but {} expects {}",
            ds.feature_dim(),
            case.name(),
            case.input_dim()
        )));
    }
    let checkpoint = checkpoint_args(args)?;
    let every_epochs = args.u64_or("every-epochs", 1)? as usize;
    if every_epochs == 0 {
        return Err(CliError::Usage(
            "`--every-epochs` must be at least 1".into(),
        ));
    }
    if args.optional("every-epochs").is_some() && checkpoint.is_none() {
        return Err(CliError::Usage(
            "`--every-epochs` needs `--checkpoint-dir` or `--resume`".into(),
        ));
    }
    let config = AirchitectConfig {
        num_classes: ds.num_classes(),
        train: TrainConfig {
            epochs: args.u64_or("epochs", 15)? as usize,
            batch_size: args.u64_or("batch", 256)? as usize,
            optimizer: Optimizer::adam(1e-3),
            seed: args.u64_or("seed", 0)?,
            lr_decay: 1.0,
            threads,
        },
        seed: args.u64_or("seed", 0)?,
        ..Default::default()
    };
    let fresh = AirchitectModel::new(case, &config);
    let t0 = std::time::Instant::now();
    let (model, report) = match &checkpoint {
        Some((dir, resume)) => {
            let ckpt = CheckpointConfig {
                every_epochs,
                ..CheckpointConfig::new(dir.as_str())
            };
            let (model, report) = pipeline::train_checkpointed(fresh, &ds, None, &ckpt, *resume)
                .map_err(pipeline_err(dir))?;
            if report.history.epochs.len() < config.train.epochs {
                println!(
                    "resumed: {} epoch(s) restored from {dir}, {} to go",
                    config.train.epochs - report.history.epochs.len(),
                    report.history.epochs.len()
                );
            }
            (model, report)
        }
        None => {
            let mut model = fresh;
            let report = model.train(&ds).map_err(run_err)?;
            (model, report)
        }
    };
    for e in &report.history.epochs {
        println!(
            "epoch {:>3}: loss {:.4}  accuracy {:.4}",
            e.epoch, e.train_loss, e.train_accuracy
        );
    }
    let out = args.required("out")?;
    persist::save(&model, out).map_err(persist_err(out))?;
    match report.history.epochs.last() {
        Some(last) => println!(
            "trained in {:?}, final accuracy {:.4}; model written to {out}",
            t0.elapsed(),
            last.train_accuracy
        ),
        // A resume that found the run already complete trains no epochs.
        None => println!("nothing left to train; checkpointed model written to {out}"),
    }
    Ok(())
}

/// `airchitect evaluate` — score a trained model against a labeled dataset.
pub fn evaluate(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "model",
        "data",
        "penalty",
        "calibration",
        "threads",
        "trace",
        "metrics-out",
    ])?;
    let tele = telemetry_begin(&args, "evaluate")?;
    tele.finish(evaluate_inner(&args))
}

fn evaluate_inner(args: &Args) -> Result<(), CliError> {
    let threads = args.u64_or("threads", 1)? as usize;
    if threads == 0 {
        return Err(CliError::Usage("`--threads` must be at least 1".into()));
    }
    airchitect_tensor::gemm::set_num_threads(threads);
    let model_path = args.required("model")?;
    let model = persist::load(model_path).map_err(persist_err(model_path))?;
    let data_path = args.required("data")?;
    let ds = codec::load(data_path).map_err(data_err(data_path))?;
    if ds.feature_dim() != model.case_study().input_dim() {
        return Err(CliError::Run(format!(
            "dataset has {} features but the model expects {}",
            ds.feature_dim(),
            model.case_study().input_dim()
        )));
    }
    let t0 = std::time::Instant::now();
    let mut eval_span = airchitect_telemetry::span::Span::enter("pipeline.eval");
    eval_span.field_u64("test_rows", ds.len() as u64);
    let predictions = model.predict(&ds);
    let accuracy = airchitect_nn::metrics::accuracy(&predictions, ds.labels());
    eval_span.field_f64("test_accuracy", accuracy);
    drop(eval_span);
    println!(
        "{}: accuracy {:.4} over {} rows ({:.1} us/inference)",
        model.case_study().name(),
        accuracy,
        ds.len(),
        t0.elapsed().as_secs_f64() * 1e6 / ds.len().max(1) as f64
    );
    if args.flag("calibration") {
        let bins = airchitect::eval::calibration(&model, &ds, 10);
        let ece = airchitect::eval::expected_calibration_error(&bins);
        println!("calibration (ECE {ece:.4}):");
        println!(
            "  {:>12} {:>10} {:>10} {:>8}",
            "confidence", "mean conf", "accuracy", "count"
        );
        for b in bins.iter().filter(|b| b.count > 0) {
            println!(
                "  [{:.1}, {:.1}) {:>10.3} {:>10.3} {:>8}",
                b.lo, b.hi, b.mean_confidence, b.accuracy, b.count
            );
        }
    }
    if args.flag("penalty") {
        let penalty = match model.case_study() {
            CaseStudy::ArrayDataflow => {
                let space = airchitect_dse::space::Case1Space::from_len(model.network().out_dim())
                    .ok_or_else(|| CliError::Run("class count matches no CS1 space".into()))?;
                let problem = Case1Problem::new(space.mac_budget());
                airchitect::eval::case1_penalty(&problem, &ds, &predictions)
            }
            CaseStudy::BufferSizing => {
                airchitect::eval::case2_penalty(&Case2Problem::new(), &ds, &predictions)
            }
            CaseStudy::MultiArrayScheduling => {
                airchitect::eval::case3_penalty(&Case3Problem::new(), &ds, &predictions)
            }
        };
        println!(
            "penalty: geomean performance {:.4}, catastrophic (<20%) {:.4}",
            penalty.geomean, penalty.catastrophic_fraction
        );
    }
    Ok(())
}

/// `airchitect report` — validate and pretty-print a telemetry JSONL file
/// produced by `--metrics-out`.
///
/// Accepts the file as a positional argument (`report run.jsonl`) or via
/// `--in run.jsonl`.
pub fn report_file(argv: &[String]) -> Result<(), CliError> {
    let path = match argv.split_first() {
        Some((first, rest)) if !first.starts_with("--") => {
            if !rest.is_empty() {
                return Err(CliError::Usage(
                    "`report` takes exactly one telemetry file".into(),
                ));
            }
            first.clone()
        }
        _ => {
            let args = Args::parse(argv)?;
            args.expect_only(&["in"])?;
            args.required("in")?.to_string()
        }
    };
    let text = std::fs::read_to_string(&path).map_err(|e| CliError::Io {
        path: path.clone(),
        message: e.to_string(),
    })?;
    let report =
        airchitect_telemetry::report::parse_report(&text).map_err(|message| CliError::Corrupt {
            path: path.clone(),
            message,
        })?;
    print!("{}", report.render());
    Ok(())
}

/// `airchitect recommend` — constant-time query against a trained model.
pub fn recommend(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    let model_path = args.required("model")?;
    let model = persist::load(model_path).map_err(persist_err(model_path))?;
    let case = model.case_study();
    let recommender = Recommender::new(model).map_err(run_err)?;
    match case {
        CaseStudy::ArrayDataflow => {
            args.expect_only(&["model", "m", "n", "k", "budget-log2"])?;
            let wl = GemmWorkload::new(
                args.required_u64("m")?,
                args.required_u64("n")?,
                args.required_u64("k")?,
            )
            .map_err(run_err)?;
            let budget_log2 = args.u64_or("budget-log2", 15)? as u32;
            // Labels are only meaningful in the training-time space; rebuild
            // it from the model's class count.
            let classes = recommender.model().network().out_dim();
            let space = airchitect_dse::space::Case1Space::from_len(classes).ok_or_else(|| {
                CliError::Run(format!(
                    "model has {classes} classes, which matches no CS1 output space"
                ))
            })?;
            let problem = Case1Problem::new(space.mac_budget());
            let t0 = std::time::Instant::now();
            let (array, df) = recommender
                .recommend_array(&problem, &wl, 1u64 << budget_log2)
                .map_err(run_err)?;
            println!(
                "recommended: {array} with {df} (inference {:?})",
                t0.elapsed()
            );
        }
        CaseStudy::BufferSizing => {
            args.expect_only(&[
                "model",
                "m",
                "n",
                "k",
                "rows",
                "cols",
                "dataflow",
                "bandwidth",
                "limit-kb",
            ])?;
            let query = Case2Query {
                workload: GemmWorkload::new(
                    args.required_u64("m")?,
                    args.required_u64("n")?,
                    args.required_u64("k")?,
                )
                .map_err(run_err)?,
                array: ArrayConfig::new(args.required_u64("rows")?, args.required_u64("cols")?)
                    .map_err(run_err)?,
                dataflow: parse_dataflow(&args)?,
                bandwidth: args.u64_or("bandwidth", 16)?,
                limit_kb: args.u64_or("limit-kb", 1500)?,
            };
            let problem = Case2Problem::new();
            let (i, f, o) = recommender
                .recommend_buffers(&problem, &query)
                .map_err(run_err)?;
            println!("recommended buffers: IFMAP {i} KB, Filter {f} KB, OFMAP {o} KB");
        }
        CaseStudy::MultiArrayScheduling => {
            args.expect_only(&["model", "workloads"])?;
            let triples = parse_workloads(args.required("workloads")?)?;
            if triples.len() != 4 {
                return Err(CliError::Usage("case 3 needs exactly 4 workloads".into()));
            }
            let workloads: Vec<GemmWorkload> = triples
                .iter()
                .map(|&(m, n, k)| GemmWorkload::new(m, n, k).map_err(run_err))
                .collect::<Result<_, _>>()?;
            let problem = Case3Problem::new();
            let schedule = recommender
                .recommend_schedule(&problem, &workloads)
                .map_err(run_err)?;
            let cost = problem
                .system()
                .evaluate(&workloads, &schedule)
                .map_err(run_err)?;
            println!("recommended schedule (makespan {} cycles):", cost.makespan);
            for (array_idx, asn) in schedule.assignments.iter().enumerate() {
                println!(
                    "  array {array_idx} <- workload {} with {}",
                    asn.workload, asn.dataflow
                );
            }
        }
    }
    Ok(())
}
