//! Implementation of the `airchitect` command-line tool.
//!
//! Subcommands (see `airchitect help`):
//!
//! * `simulate`  — run the analytical model for one configuration, with
//!   optional register-level verification,
//! * `search`    — exhaustive optimum for one query (the conventional flow),
//! * `spaces`    — inspect the quantized output spaces,
//! * `generate`  — produce a labeled dataset file (`.aids`),
//! * `train`     — train an AIrchitect model on a dataset (`.airm` output),
//! * `recommend` — constant-time recommendation from a trained model.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within the
//! approved dependency set.

#![warn(missing_docs)]

pub mod args;
pub mod commands;

use std::fmt;

/// Error produced by the CLI layer.
#[derive(Debug)]
pub enum CliError {
    /// Bad or missing command-line arguments.
    Usage(String),
    /// Any downstream failure, stringified with context.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Top-level dispatch: runs the subcommand named by `argv[0]`.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad arguments, or downstream
/// failures.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage(HELP.trim_start().to_string()));
    };
    match cmd.as_str() {
        "simulate" => commands::simulate(rest),
        "search" => commands::search(rest),
        "spaces" => commands::spaces(rest),
        "generate" => commands::generate(rest),
        "train" => commands::train(rest),
        "recommend" => commands::recommend(rest),
        "evaluate" => commands::evaluate(rest),
        "help" | "--help" | "-h" => {
            println!("{}", HELP.trim_start());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `airchitect help`)"
        ))),
    }
}

/// The top-level help text.
pub const HELP: &str = r#"
airchitect — learned constant-time architecture & mapping optimization

USAGE:
  airchitect <command> [--key value ...]

COMMANDS:
  simulate   --m M --n N --k K --rows R --cols C [--dataflow OS|WS|IS]
             [--ifmap-kb X --filter-kb X --ofmap-kb X --bandwidth B] [--verify]
             Run the analytical model for one configuration. With --verify,
             also execute the GEMM on the register-level array and check both
             the product and the cycle count.

  search     --case 1 --m M --n N --k K [--budget-log2 B]
             --case 2 --m M --n N --k K --rows R --cols C
                      [--dataflow OS] [--bandwidth B] [--limit-kb L]
             --case 3 --workloads M,N,K;M,N,K;M,N,K;M,N,K
             Exhaustive search for the optimal configuration.

  spaces     [--budget-log2 B]
             Print the three quantized output spaces and their sizes.

  generate   --case 1|2|3 --samples N --out data.aids [--seed S]
             Generate a labeled dataset with the conventional search flow.

  train      --case 1|2|3 --data data.aids --out model.airm
             [--epochs E] [--batch B] [--seed S]
             Train an AIrchitect model on a generated dataset.

  evaluate   --model model.airm --data data.aids [--penalty] [--calibration]
             Accuracy (and optionally the misprediction penalty) of a trained
             model on a labeled dataset.

  recommend  --model model.airm  plus the same query flags as `search`
             Constant-time recommendation from a trained model.

  help       Show this message.
"#;
