//! Implementation of the `airchitect` command-line tool.
//!
//! Subcommands (see `airchitect help`):
//!
//! * `simulate`  — run the analytical model for one configuration, with
//!   optional register-level verification,
//! * `search`    — exhaustive optimum for one query (the conventional flow),
//! * `spaces`    — inspect the quantized output spaces,
//! * `generate`  — produce a labeled dataset file (`.aids`),
//! * `train`     — train an AIrchitect model on a dataset (`.airm` output),
//! * `recommend` — constant-time recommendation from a trained model,
//! * `bench`     — reproducible compute-engine benchmarks (`BENCH_*.json`),
//! * `serve`     — batched, hot-reloadable HTTP inference server,
//! * `report`    — validate and pretty-print a telemetry JSONL file.
//!
//! `generate`, `train`, `evaluate`, and `bench` accept `--trace` (print a
//! span/metric summary on exit) and `--metrics-out FILE` (stream telemetry
//! to a versioned JSON-lines file).
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to stay within the
//! approved dependency set.

#![warn(missing_docs)]

pub mod args;
pub mod bench;
pub mod commands;
pub mod serve;

use std::fmt;

/// Error produced by the CLI layer.
///
/// Each variant maps to a distinct process exit code (see
/// [`CliError::exit_code`]), so scripts can tell a typo from a missing
/// file from a corrupt artifact without parsing stderr.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad or missing command-line arguments (exit code 2).
    Usage(String),
    /// A file could not be read or written (exit code 3).
    Io {
        /// The offending file or directory.
        path: String,
        /// The underlying error.
        message: String,
    },
    /// An artifact file exists but is damaged: truncated, bit-flipped, or
    /// failing its checksum (exit code 4).
    Corrupt {
        /// The offending file.
        path: String,
        /// What the codec rejected.
        message: String,
    },
    /// Any other downstream failure, stringified with context (exit
    /// code 1).
    Run(String),
}

impl CliError {
    /// The process exit code for this error: usage 2, I/O 3, corrupt
    /// artifact 4, anything else 1.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } => 3,
            CliError::Corrupt { .. } => 4,
            CliError::Run(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io { path, message } => write!(f, "cannot access `{path}`: {message}"),
            CliError::Corrupt { path, message } => {
                write!(f, "corrupt artifact `{path}`: {message}")
            }
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Top-level dispatch: runs the subcommand named by `argv[0]`.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, bad arguments, or downstream
/// failures.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(CliError::Usage(HELP.trim_start().to_string()));
    };
    match cmd.as_str() {
        "simulate" => commands::simulate(rest),
        "search" => commands::search(rest),
        "spaces" => commands::spaces(rest),
        "generate" => commands::generate(rest),
        "train" => commands::train(rest),
        "recommend" => commands::recommend(rest),
        "evaluate" => commands::evaluate(rest),
        "report" => commands::report_file(rest),
        "bench" => bench::bench(rest),
        "serve" => serve::serve(rest),
        "help" | "--help" | "-h" => {
            println!("{}", HELP.trim_start());
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}` (try `airchitect help`)"
        ))),
    }
}

/// The top-level help text.
pub const HELP: &str = r#"
airchitect — learned constant-time architecture & mapping optimization

USAGE:
  airchitect <command> [--key value ...]

COMMANDS:
  simulate   --m M --n N --k K --rows R --cols C [--dataflow OS|WS|IS]
             [--ifmap-kb X --filter-kb X --ofmap-kb X --bandwidth B] [--verify]
             Run the analytical model for one configuration. With --verify,
             also execute the GEMM on the register-level array and check both
             the product and the cycle count.

  search     --case 1 --m M --n N --k K [--budget-log2 B]
             --case 2 --m M --n N --k K --rows R --cols C
                      [--dataflow OS] [--bandwidth B] [--limit-kb L]
             --case 3 --workloads M,N,K;M,N,K;M,N,K;M,N,K
             Exhaustive search for the optimal configuration.

  spaces     [--budget-log2 B]
             Print the three quantized output spaces and their sizes.

  generate   --case 1|2|3 --samples N --out data.aids [--seed S]
             [--threads T] [--checkpoint-dir DIR | --resume DIR]
             Generate a labeled dataset with the conventional search flow.
             With --threads, case-1 generation fans out over T panic-isolated
             workers. With --checkpoint-dir, every finished shard is persisted
             so a killed run loses at most one shard of work; --resume DIR
             reuses the intact shards and regenerates the rest (case 1 only).

  train      --case 1|2|3 --data data.aids --out model.airm
             [--epochs E] [--batch B] [--seed S] [--threads T]
             [--checkpoint-dir DIR | --resume DIR] [--every-epochs N]
             Train an AIrchitect model on a generated dataset. --threads runs
             the compute kernels on T threads; any value produces the same
             model, bit for bit. With --checkpoint-dir, the model + optimizer
             state is snapshotted every N epochs (default 1); --resume DIR
             continues a killed run bit-identically to an uninterrupted one.
             --quick instead runs a self-contained CS1 smoke pipeline
             (generate -> checkpointed train -> evaluate; --samples N sizes
             it, --data is not needed, --out is optional).
             --from-log DIR --model base.airm --out tuned.airm
             [--epochs E] [--batch B] [--lr LR] [--seed S] [--threads T]
             instead fine-tunes an existing model on a shadow-oracle
             misprediction log (see `serve --shadow-oracle`): replays the
             log, keeps disagreements scored against the newest model
             version, and continues training from the current weights with
             a reduced learning rate (default 1e-4) under the usual
             divergence guards. Push the output through POST /v1/reload.

  evaluate   --model model.airm --data data.aids [--penalty] [--calibration]
             [--threads T]
             Accuracy (and optionally the misprediction penalty) of a trained
             model on a labeled dataset.

  recommend  --model model.airm  plus the same query flags as `search`
             Constant-time recommendation from a trained model.

  bench      [--suite train|infer|dse|serve|chaos|cluster|online|all]
             [--out-dir DIR]
             [--threads T] [--samples N] [--epochs E] [--quick]
             Time the compute engine (training epochs vs the naive baseline,
             batched + single-query inference, DSE search throughput, HTTP
             serving with concurrent clients and mid-run hot-reloads) and
             write BENCH_<suite>.json artifacts. --quick shrinks every suite
             for smoke runs. Suite `chaos` (not in `all`; needs a build with
             `--features chaos`) drives loadgen under injected faults and
             gates on zero wrong answers, zero hangs, and bounded 5xx.
             Suite `cluster` (not in `all`) loadgens a supervised
             multi-replica cluster, SIGKILLs one replica mid-run, and gates
             on zero failed client requests, bounded re-admission, and
             cluster QPS at least matching a single replica.
             Suite `online` (not in `all`) soaks a live server with a
             drifting query distribution under shadow-oracle sampling,
             fires `train --from-log` + POST /v1/reload when the drift
             policy triggers, and gates on oracle agreement strictly
             improving with zero failed requests and zero 5xx.

  serve      --model model.airm[,model2.airm...] [--host H] [--port P]
             [--cluster] [--replicas N]
             [--workers W] [--queue-depth D] [--batch-max B] [--cache-cap C]
             [--read-timeout-secs S] [--write-timeout-secs S]
             [--deadline-ms MS] [--breaker-threshold N]
             [--breaker-cooldown-ms MS] [--fallback search|none]
             Serve recommendations over HTTP: POST /v1/recommend/{array|
             buffers|schedule} (JSON bodies mirroring the `recommend` flags,
             plus "topk"), GET /healthz, GET /metrics, POST /v1/reload
             (atomic model hot-swap), POST /v1/shutdown (graceful drain).
             --port 0 binds an ephemeral port (printed on stdout). Requests
             beyond --queue-depth are rejected with 429 + Retry-After.
             --deadline-ms caps end-to-end request time (clients can tighten
             per request with X-Deadline-Ms; over-budget answers 504).
             --breaker-threshold N opens a circuit after N consecutive
             failures (0 disables; probes again after the cooldown).
             --fallback search answers from exhaustive DSE search (stamped
             "source":"search" + a Warning header) when a circuit is open or
             a model failed to load, instead of 5xx.
             --nodelay sets TCP_NODELAY on accepted sockets in both
             listener modes (also via AIRCHITECT_SERVE_NODELAY=1).
             --shadow-oracle RATE --shadow-log-dir DIR
             [--shadow-queue-depth D] [--shadow-threads T]
             samples RATE (0..=1, deterministic per query) of admitted
             recommend requests, re-scores them against the exact DSE
             oracle on a low-priority background pool, and appends
             versioned records to a rotating JSONL misprediction log in
             DIR for `train --from-log`. A full shadow queue drops samples
             (serve.shadow.dropped) instead of delaying requests.
             --cluster [--replicas N] [--probe-interval-ms MS]
             [--probe-timeout-ms MS] [--hedge-ms MS] [--max-inflight N]
             [--backend-timeout-ms MS]
             Cluster mode: supervise N replica child processes (health
             probes, exponential-backoff restarts with a restart-storm cap)
             behind a consistent-hashing router that retries idempotent
             recommends on the next replica, hedges tail-latent requests
             (--hedge-ms 0 derives the delay from the rolling p99), and
             aggregates /healthz + /metrics across the fleet.

  report     FILE (or --in FILE)
             Validate a telemetry JSON-lines file against the versioned
             schema and pretty-print its spans, events, and metrics.

  help       Show this message.

TELEMETRY (generate | train | evaluate | bench):
  --trace            print a span/metric summary when the command finishes
  --metrics-out F    stream spans, events, and a final metrics snapshot to
                     F as versioned JSON lines (read back with `report`)

EXIT CODES:
  0  success        2  usage error
  1  other failure  3  file I/O error   4  corrupt artifact
"#;
