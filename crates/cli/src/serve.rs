//! `airchitect serve` — run the batched, hot-reloadable inference server,
//! or (with `--cluster`) a supervised fleet of replica processes behind a
//! consistent-hashing router.

use std::path::PathBuf;

use airchitect_serve::{Cluster, ClusterConfig, ServeConfig, ServeError, Server};

use crate::args::Args;
use crate::CliError;

fn serve_err(e: ServeError) -> CliError {
    match e {
        ServeError::Config(msg) => CliError::Usage(msg),
        other => CliError::Run(other.to_string()),
    }
}

/// Entry point for `airchitect serve`. Blocks until `POST /v1/shutdown`.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, model load failures, or socket
/// failures.
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "model",
        "host",
        "port",
        "workers",
        "queue-depth",
        "batch-max",
        "cache-cap",
        "read-timeout-secs",
        "write-timeout-secs",
        "deadline-ms",
        "breaker-threshold",
        "breaker-cooldown-ms",
        "fallback",
        "no-bypass",
        "event-loops",
        "threaded",
        "nodelay",
        "shadow-oracle",
        "shadow-log-dir",
        "shadow-queue-depth",
        "shadow-threads",
        "model-dir",
        "canary-split",
        "canary-min-samples",
        "canary-min-agreement",
        "canary-max-p99-ratio",
        "rollout-timeout-ms",
        "cluster",
        "replicas",
        "probe-interval-ms",
        "probe-timeout-ms",
        "hedge-ms",
        "max-inflight",
        "backend-timeout-ms",
    ])?;
    let model_dir = args.optional("model-dir").map(PathBuf::from);
    let model_paths: Vec<PathBuf> = match args.optional("model") {
        Some(raw) => raw
            .split(',')
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
            .collect(),
        // A registry with an active version can boot without --model.
        None if model_dir.is_some() => Vec::new(),
        None => return Err(CliError::Usage("missing required `--model`".into())),
    };
    if model_paths.is_empty() && model_dir.is_none() {
        return Err(CliError::Usage(
            "`--model` needs at least one .airm path (comma-separated for several)".into(),
        ));
    }
    if model_dir.is_some() && model_paths.len() > 1 {
        return Err(CliError::Usage(
            "`--model-dir` manages a single model; pass at most one `--model` to seed it".into(),
        ));
    }
    let workers = args.u64_or("workers", 4)? as usize;
    if workers == 0 {
        return Err(CliError::Usage("`--workers` must be at least 1".into()));
    }
    let batch_max = args.u64_or("batch-max", 16)? as usize;
    if batch_max == 0 {
        return Err(CliError::Usage("`--batch-max` must be at least 1".into()));
    }
    let host = args.optional("host").unwrap_or("127.0.0.1");
    let port = args.u64_or("port", 8080)?;
    if port > u64::from(u16::MAX) {
        return Err(CliError::Usage(format!("`--port` must be <= 65535 (got {port})")));
    }
    let fallback_search = match args.optional("fallback") {
        None | Some("none") => false,
        Some("search") => true,
        Some(other) => {
            return Err(CliError::Usage(format!(
                "`--fallback` must be `search` or `none` (got `{other}`)"
            )))
        }
    };
    let shadow_rate = match args.optional("shadow-oracle") {
        None => 0.0,
        Some(raw) => {
            let rate: f64 = raw.parse().map_err(|_| {
                CliError::Usage(format!(
                    "`--shadow-oracle` must be a sampling rate in 0..=1 (got `{raw}`)"
                ))
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(CliError::Usage(format!(
                    "`--shadow-oracle` must be a sampling rate in 0..=1 (got `{raw}`)"
                )));
            }
            if rate > 0.0 && args.optional("shadow-log-dir").is_none() {
                return Err(CliError::Usage(
                    "`--shadow-oracle` needs `--shadow-log-dir` for the misprediction log"
                        .into(),
                ));
            }
            rate
        }
    };
    let canary_split = match args.optional("canary-split") {
        None => 0.0,
        Some(raw) => {
            let rate: f64 = raw.parse().map_err(|_| {
                CliError::Usage(format!(
                    "`--canary-split` must be a sampling rate in 0..=1 (got `{raw}`)"
                ))
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(CliError::Usage(format!(
                    "`--canary-split` must be a sampling rate in 0..=1 (got `{raw}`)"
                )));
            }
            rate
        }
    };
    let canary_min_agreement = match args.optional("canary-min-agreement") {
        None => 0.9,
        Some(raw) => {
            let rate: f64 = raw.parse().map_err(|_| {
                CliError::Usage(format!(
                    "`--canary-min-agreement` must be a fraction in 0..=1 (got `{raw}`)"
                ))
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(CliError::Usage(format!(
                    "`--canary-min-agreement` must be a fraction in 0..=1 (got `{raw}`)"
                )));
            }
            rate
        }
    };
    let canary_max_p99_ratio = match args.optional("canary-max-p99-ratio") {
        None => 4.0,
        Some(raw) => {
            let ratio: f64 = raw.parse().map_err(|_| {
                CliError::Usage(format!(
                    "`--canary-max-p99-ratio` must be a positive number (got `{raw}`)"
                ))
            })?;
            if !ratio.is_finite() || ratio <= 0.0 {
                return Err(CliError::Usage(format!(
                    "`--canary-max-p99-ratio` must be a positive number (got `{raw}`)"
                )));
            }
            ratio
        }
    };
    let breaker_threshold = args.u64_or("breaker-threshold", 5)?;
    if breaker_threshold > u64::from(u32::MAX) {
        return Err(CliError::Usage(format!(
            "`--breaker-threshold` must fit in a u32 (got {breaker_threshold})"
        )));
    }
    let config = ServeConfig {
        addr: format!("{host}:{port}"),
        model_paths,
        workers,
        queue_depth: args.u64_or("queue-depth", 256)? as usize,
        batch_max,
        cache_capacity: args.u64_or("cache-cap", 4096)? as usize,
        read_timeout_secs: args.u64_or("read-timeout-secs", 5)?,
        write_timeout_secs: args.u64_or("write-timeout-secs", 5)?,
        deadline_ms: args.u64_or("deadline-ms", 0)?,
        breaker_threshold: breaker_threshold as u32,
        breaker_cooldown_ms: args.u64_or("breaker-cooldown-ms", 1000)?,
        fallback_search,
        single_query_bypass: !args.flag("no-bypass"),
        event_loops: args.u64_or("event-loops", 0)? as usize,
        // The env default keeps one invocation form usable in both modes
        // (CI runs every suite twice that way).
        threaded: args.flag("threaded") || ServeConfig::default().threaded,
        nodelay: args.flag("nodelay") || ServeConfig::default().nodelay,
        shadow_rate,
        shadow_dir: args.optional("shadow-log-dir").map(PathBuf::from),
        shadow_queue_depth: args.u64_or("shadow-queue-depth", 64)? as usize,
        shadow_threads: args.u64_or("shadow-threads", 1)? as usize,
        model_dir: model_dir.clone(),
        canary_split,
        canary_min_samples: args.u64_or("canary-min-samples", 50)?,
        canary_min_agreement,
        canary_max_p99_ratio,
        rollout_timeout_ms: args.u64_or("rollout-timeout-ms", 30_000)?,
    };

    if args.flag("cluster") {
        let replicas = args.u64_or("replicas", 3)? as usize;
        if replicas == 0 {
            return Err(CliError::Usage("`--replicas` must be at least 1".into()));
        }
        let mut config = config;
        if let Some(dir) = &model_dir {
            // The router owns the registry; replicas only ever see the
            // promoted `current.airm` path, so seed it before they spawn.
            use airchitect_serve::registry::{Registry, DEFAULT_RETAIN};
            let mut reg = Registry::open(dir, DEFAULT_RETAIN)
                .map_err(|e| CliError::Usage(format!("--model-dir: {e}")))?;
            if reg.manifest().active.is_none() {
                let Some(seed) = config.model_paths.first() else {
                    return Err(CliError::Usage(format!(
                        "registry at {} has no active version; seed it with --model or \
                         `train --model-dir`",
                        dir.display()
                    )));
                };
                let bytes = std::fs::read(seed).map_err(|e| {
                    CliError::Run(format!("read seed model {}: {e}", seed.display()))
                })?;
                let version = reg
                    .add_version(&bytes)
                    .map_err(|e| CliError::Run(format!("seed registry: {e}")))?;
                reg.promote(version)
                    .map_err(|e| CliError::Run(format!("seed registry: {e}")))?;
            }
            config.model_paths = vec![reg.current_path()];
        }
        let program = std::env::current_exe()
            .map_err(|e| CliError::Run(format!("cannot locate own binary for replicas: {e}")))?;
        let cluster_cfg = ClusterConfig {
            addr: config.addr.clone(),
            replica_argv: Cluster::replica_argv(&program.display().to_string(), &config),
            replicas,
            probe_interval_ms: args.u64_or("probe-interval-ms", 200)?,
            probe_timeout_ms: args.u64_or("probe-timeout-ms", 1000)?,
            hedge_ms: args.u64_or("hedge-ms", 0)?,
            max_inflight: args.u64_or("max-inflight", 256)?,
            backend_timeout_ms: args.u64_or("backend-timeout-ms", 10_000)?,
            read_timeout_secs: config.read_timeout_secs,
            write_timeout_secs: config.write_timeout_secs,
            model_dir: model_dir.clone(),
            rollout_timeout_ms: config.rollout_timeout_ms,
            ..ClusterConfig::default()
        };
        let cluster = Cluster::start(cluster_cfg).map_err(serve_err)?;
        // Same parseable line the replicas print, so scripts can treat a
        // router exactly like a single server.
        println!("listening on http://{}", cluster.local_addr());
        println!("cluster: {replicas} replicas, supervised with health probes and restarts");
        cluster.run().map_err(serve_err)?;
        println!("shutdown complete");
        return Ok(());
    }

    let server = Server::bind(&config).map_err(serve_err)?;
    // Parseable by scripts: `--port 0` binds an ephemeral port, and this
    // line is the only way to learn which one.
    println!("listening on http://{}", server.local_addr());
    if server.event_loops() > 0 {
        println!("listener: evented, {} event loop(s)", server.event_loops());
    } else {
        println!("listener: thread-per-connection");
    }
    println!(
        "routes: POST /v1/recommend/{{array|buffers|schedule}} | POST /v1/reload | \
         POST /v1/rollback | POST /v1/shutdown | GET /healthz | GET /metrics"
    );
    server.run().map_err(serve_err)?;
    println!("shutdown complete");
    Ok(())
}
