//! `airchitect serve` — run the batched, hot-reloadable inference server.

use std::path::PathBuf;

use airchitect_serve::{ServeConfig, ServeError, Server};

use crate::args::Args;
use crate::CliError;

fn serve_err(e: ServeError) -> CliError {
    match e {
        ServeError::Config(msg) => CliError::Usage(msg),
        other => CliError::Run(other.to_string()),
    }
}

/// Entry point for `airchitect serve`. Blocks until `POST /v1/shutdown`.
///
/// # Errors
///
/// Returns [`CliError`] for bad arguments, model load failures, or socket
/// failures.
pub fn serve(argv: &[String]) -> Result<(), CliError> {
    let args = Args::parse(argv)?;
    args.expect_only(&[
        "model",
        "host",
        "port",
        "workers",
        "queue-depth",
        "batch-max",
        "cache-cap",
        "read-timeout-secs",
    ])?;
    let model_paths: Vec<PathBuf> = args
        .required("model")?
        .split(',')
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .collect();
    if model_paths.is_empty() {
        return Err(CliError::Usage(
            "`--model` needs at least one .airm path (comma-separated for several)".into(),
        ));
    }
    let workers = args.u64_or("workers", 4)? as usize;
    if workers == 0 {
        return Err(CliError::Usage("`--workers` must be at least 1".into()));
    }
    let batch_max = args.u64_or("batch-max", 16)? as usize;
    if batch_max == 0 {
        return Err(CliError::Usage("`--batch-max` must be at least 1".into()));
    }
    let host = args.optional("host").unwrap_or("127.0.0.1");
    let port = args.u64_or("port", 8080)?;
    if port > u64::from(u16::MAX) {
        return Err(CliError::Usage(format!("`--port` must be <= 65535 (got {port})")));
    }
    let config = ServeConfig {
        addr: format!("{host}:{port}"),
        model_paths,
        workers,
        queue_depth: args.u64_or("queue-depth", 256)? as usize,
        batch_max,
        cache_capacity: args.u64_or("cache-cap", 4096)? as usize,
        read_timeout_secs: args.u64_or("read-timeout-secs", 5)?,
    };

    let server = Server::bind(&config).map_err(serve_err)?;
    // Parseable by scripts: `--port 0` binds an ephemeral port, and this
    // line is the only way to learn which one.
    println!("listening on http://{}", server.local_addr());
    println!(
        "routes: POST /v1/recommend/{{array|buffers|schedule}} | POST /v1/reload | \
         POST /v1/shutdown | GET /healthz | GET /metrics"
    );
    server.run().map_err(serve_err)?;
    println!("shutdown complete");
    Ok(())
}
