//! End-to-end fault-tolerance tests against the real `airchitect` binary:
//! the exit-code taxonomy (usage 2, I/O 3, corrupt artifact 4), corrupted
//! artifact files yielding typed errors instead of panics, and
//! checkpointed generate/train runs resuming to byte-identical outputs.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn airchitect(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_airchitect"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airchitect-cli-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Generates a tiny case-1 dataset into `dir/data.aids` and returns its path.
fn small_dataset(dir: &Path) -> PathBuf {
    let data = dir.join("data.aids");
    let out = airchitect(&[
        "generate",
        "--case",
        "1",
        "--samples",
        "30",
        "--budget-log2",
        "8",
        "--seed",
        "1",
        "--out",
        data.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "generate failed: {}", stderr(&out));
    data
}

/// Trains a tiny model on `data` into `dir/model.airm` and returns its path.
fn small_model(dir: &Path, data: &Path) -> PathBuf {
    let model = dir.join("model.airm");
    let out = airchitect(&[
        "train",
        "--case",
        "1",
        "--data",
        data.to_str().unwrap(),
        "--epochs",
        "1",
        "--batch",
        "16",
        "--out",
        model.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "train failed: {}", stderr(&out));
    model
}

#[test]
fn usage_errors_exit_with_code_2() {
    for args in [
        vec!["frobnicate"],
        vec!["train", "--case", "1"], // missing --data
        vec![
            "generate",
            "--case",
            "1",
            "--samples",
            "5",
            "--out",
            "/tmp/x.aids",
            "--bogus",
            "1",
        ],
        vec![
            "generate",
            "--case",
            "2",
            "--samples",
            "5",
            "--out",
            "/tmp/x.aids",
            "--threads",
            "4",
        ],
    ] {
        let out = airchitect(&args);
        assert_eq!(
            out.status.code(),
            Some(2),
            "args {args:?}: {}",
            stderr(&out)
        );
    }
}

#[test]
fn missing_files_exit_with_code_3_and_name_the_path() {
    let out = airchitect(&[
        "train",
        "--case",
        "1",
        "--data",
        "/nonexistent/nope.aids",
        "--out",
        "/tmp/never.airm",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("/nonexistent/nope.aids"));

    let out = airchitect(&[
        "evaluate",
        "--model",
        "/nonexistent/nope.airm",
        "--data",
        "/nonexistent/nope.aids",
    ]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains("/nonexistent/nope.airm"));
}

#[test]
fn corrupt_artifacts_exit_with_code_4_and_never_panic() {
    let dir = temp_dir("corrupt");
    let data = small_dataset(&dir);
    let model = small_model(&dir, &data);

    let corruptions: [(&str, fn(&[u8]) -> Vec<u8>); 3] = [
        ("zero-length", |_| Vec::new()),
        ("truncated", |b| b[..b.len() / 2].to_vec()),
        ("bit-flipped", |b| {
            let mut v = b.to_vec();
            let mid = v.len() / 2;
            v[mid] ^= 0x40;
            v
        }),
    ];

    for (what, corrupt) in corruptions {
        for (original, flag_pair) in [(&data, "--data"), (&model, "--model")] {
            let bytes = std::fs::read(original).unwrap();
            let damaged = dir.join(format!(
                "damaged-{what}-{}",
                original.file_name().unwrap().to_str().unwrap()
            ));
            std::fs::write(&damaged, corrupt(&bytes)).unwrap();

            // Point one flag at the damaged copy, the other at a good file.
            let (m, d) = if flag_pair == "--model" {
                (damaged.clone(), data.clone())
            } else {
                (model.clone(), damaged.clone())
            };
            let out = airchitect(&[
                "evaluate",
                "--model",
                m.to_str().unwrap(),
                "--data",
                d.to_str().unwrap(),
            ]);
            let err = stderr(&out);
            assert_eq!(
                out.status.code(),
                Some(4),
                "{what} {flag_pair} should be a corrupt-artifact error: {err}"
            );
            assert!(
                err.contains(damaged.to_str().unwrap()),
                "{what}: stderr must name the offending file, got: {err}"
            );
            assert!(!err.contains("panicked"), "{what}: {err}");
        }
    }

    // `train` on a damaged dataset takes the same typed path.
    let mut bytes = std::fs::read(&data).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let damaged = dir.join("train-input.aids");
    std::fs::write(&damaged, &bytes).unwrap();
    let out = airchitect(&[
        "train",
        "--case",
        "1",
        "--data",
        damaged.to_str().unwrap(),
        "--out",
        dir.join("never.airm").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_generate_resumes_to_identical_bytes() {
    let dir = temp_dir("gen-resume");
    let ckpt = dir.join("ckpt");
    let first = dir.join("first.aids");
    let second = dir.join("second.aids");
    let base = [
        "generate",
        "--case",
        "1",
        "--samples",
        "40",
        "--budget-log2",
        "8",
        "--seed",
        "3",
        "--threads",
        "4",
    ];

    let mut args: Vec<&str> = base.to_vec();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let first_s = first.to_str().unwrap().to_string();
    args.extend_from_slice(&["--checkpoint-dir", &ckpt_s, "--out", &first_s]);
    let out = airchitect(&args);
    assert!(out.status.success(), "{}", stderr(&out));

    // Simulate a crash that lost one shard and the final output.
    std::fs::remove_file(ckpt.join("shard-0002.aids")).unwrap();

    let mut args: Vec<&str> = base.to_vec();
    let second_s = second.to_str().unwrap().to_string();
    args.extend_from_slice(&["--resume", &ckpt_s, "--out", &second_s]);
    let out = airchitect(&args);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("reused 3 checkpointed shard(s)"),
        "{}",
        stdout(&out)
    );

    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "resumed generation must be byte-identical"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpointed_train_resumes_to_identical_bytes() {
    let dir = temp_dir("train-resume");
    let data = small_dataset(&dir);
    let ckpt = dir.join("ckpt");
    let first = dir.join("first.airm");
    let second = dir.join("second.airm");
    let base = [
        "train",
        "--case",
        "1",
        "--data",
        data.to_str().unwrap(),
        "--epochs",
        "3",
        "--batch",
        "16",
        "--seed",
        "9",
    ];

    let mut args: Vec<&str> = base.to_vec();
    let ckpt_s = ckpt.to_str().unwrap().to_string();
    let first_s = first.to_str().unwrap().to_string();
    args.extend_from_slice(&["--checkpoint-dir", &ckpt_s, "--out", &first_s]);
    let out = airchitect(&args);
    assert!(out.status.success(), "{}", stderr(&out));

    // Re-running with --resume finds the completed checkpoint, trains zero
    // further epochs, and writes the identical model.
    let mut args: Vec<&str> = base.to_vec();
    let second_s = second.to_str().unwrap().to_string();
    args.extend_from_slice(&["--resume", &ckpt_s, "--out", &second_s]);
    let out = airchitect(&args);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("resumed: 3 epoch(s) restored"),
        "{}",
        stdout(&out)
    );
    assert_eq!(
        std::fs::read(&first).unwrap(),
        std::fs::read(&second).unwrap(),
        "resumed training must produce a byte-identical model"
    );

    // A different schedule must be refused, not silently retrained.
    let out = airchitect(&[
        "train",
        "--case",
        "1",
        "--data",
        data.to_str().unwrap(),
        "--epochs",
        "5",
        "--batch",
        "16",
        "--seed",
        "9",
        "--resume",
        &ckpt_s,
        "--out",
        second_s.as_str(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("different run"), "{}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}
