//! Integration tests driving the CLI command functions end to end with
//! temp files (no subprocess spawning needed — the binary is a thin shim).

use airchitect_cli::run;
use std::path::PathBuf;

fn argv(s: &[&str]) -> Vec<String> {
    s.iter().map(|v| v.to_string()).collect()
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airchitect-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_and_unknown_commands() {
    assert!(run(&argv(&["help"])).is_ok());
    assert!(run(&argv(&["frobnicate"])).is_err());
    assert!(run(&[]).is_err());
}

#[test]
fn simulate_with_verification() {
    assert!(run(&argv(&[
        "simulate",
        "--m",
        "16",
        "--n",
        "16",
        "--k",
        "32",
        "--rows",
        "4",
        "--cols",
        "8",
        "--dataflow",
        "IS",
        "--verify",
    ]))
    .is_ok());
    // Bad dataflow is a run error, not a panic.
    assert!(run(&argv(&[
        "simulate",
        "--m",
        "4",
        "--n",
        "4",
        "--k",
        "4",
        "--rows",
        "2",
        "--cols",
        "2",
        "--dataflow",
        "XX",
    ]))
    .is_err());
    // Typo protection.
    assert!(run(&argv(&[
        "simulate", "--m", "4", "--n", "4", "--k", "4", "--rows", "2", "--cols", "2", "--bogus",
        "1",
    ]))
    .is_err());
}

#[test]
fn search_all_cases() {
    assert!(run(&argv(&[
        "search",
        "--case",
        "1",
        "--m",
        "100",
        "--n",
        "200",
        "--k",
        "300",
        "--budget-log2",
        "9",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "search",
        "--case",
        "2",
        "--m",
        "100",
        "--n",
        "200",
        "--k",
        "300",
        "--rows",
        "8",
        "--cols",
        "8",
        "--limit-kb",
        "900",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "search",
        "--case",
        "3",
        "--workloads",
        "64,64,64;128,32,16;8,8,8;256,16,32",
    ]))
    .is_ok());
    // Wrong workload count for case 3.
    assert!(run(&argv(&["search", "--case", "3", "--workloads", "1,2,3"])).is_err());
}

#[test]
fn spaces_prints() {
    assert!(run(&argv(&["spaces"])).is_ok());
    assert!(run(&argv(&["spaces", "--budget-log2", "10"])).is_ok());
}

#[test]
fn generate_train_recommend_cycle() {
    let dir = tmpdir();
    let data = dir.join("cs1.aids");
    let model = dir.join("cs1.airm");
    assert!(run(&argv(&[
        "generate",
        "--case",
        "1",
        "--samples",
        "300",
        "--budget-log2",
        "9",
        "--out",
        data.to_str().expect("utf8 path"),
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "train",
        "--case",
        "1",
        "--data",
        data.to_str().expect("utf8 path"),
        "--out",
        model.to_str().expect("utf8 path"),
        "--epochs",
        "2",
        "--batch",
        "64",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "recommend",
        "--model",
        model.to_str().expect("utf8 path"),
        "--m",
        "64",
        "--n",
        "64",
        "--k",
        "64",
        "--budget-log2",
        "8",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "evaluate",
        "--model",
        model.to_str().expect("utf8 path"),
        "--data",
        data.to_str().expect("utf8 path"),
        "--penalty",
        "--calibration",
    ]))
    .is_ok());
    // Training a case-2 model on case-1 data is rejected with a clear error.
    assert!(run(&argv(&[
        "train",
        "--case",
        "2",
        "--data",
        data.to_str().expect("utf8 path"),
        "--out",
        model.to_str().expect("utf8 path"),
    ]))
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_quick_train_emits_schema_valid_telemetry() {
    let dir = tmpdir();
    let jsonl = dir.join("quick.jsonl");
    assert!(run(&argv(&[
        "train",
        "--quick",
        "--samples",
        "300",
        "--epochs",
        "2",
        "--trace",
        "--metrics-out",
        jsonl.to_str().expect("utf8 path"),
    ]))
    .is_ok());

    let text = std::fs::read_to_string(&jsonl).expect("telemetry file exists");
    let report = airchitect_telemetry::report::parse_report(&text).expect("schema-valid JSONL");
    assert_eq!(report.command, "train");
    for required in [
        "pipeline.datagen",
        "pipeline.train",
        "pipeline.eval",
        "train.epoch",
        "checkpoint.save",
    ] {
        assert!(
            report.spans.iter().any(|(name, _)| name == required),
            "span `{required}` missing from {:?}",
            report.spans.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
    let epochs = &report.spans.iter().find(|(n, _)| n == "train.epoch").unwrap().1;
    assert_eq!(epochs.count, 2);

    // The `report` subcommand accepts the file both ways.
    assert!(run(&argv(&["report", jsonl.to_str().expect("utf8 path")])).is_ok());
    assert!(run(&argv(&["report", "--in", jsonl.to_str().expect("utf8 path")])).is_ok());

    // A truncated file (no end line) is rejected as corrupt.
    let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    let bad = dir.join("truncated.jsonl");
    std::fs::write(&bad, truncated).expect("write truncated file");
    assert!(run(&argv(&["report", bad.to_str().expect("utf8 path")])).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_validation() {
    // Every bad-flag case is a usage error (exit code 2), not a crash.
    for bad in [
        vec!["serve"],                                        // no --model
        vec!["serve", "--model", ""],                         // empty path list
        vec!["serve", "--model", "x.airm", "--workers", "0"], // no workers
        vec!["serve", "--model", "x.airm", "--batch-max", "0"],
        vec!["serve", "--model", "x.airm", "--port", "99999"],
        vec!["serve", "--model", "x.airm", "--bogus", "1"], // typo protection
    ] {
        let err = run(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
        assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
    }
    // A missing model file is a run error (exit code 1), not a usage error.
    let err = run(&argv(&["serve", "--model", "/nonexistent/x.airm", "--port", "0"]))
        .expect_err("missing model file must fail");
    assert_eq!(err.exit_code(), 1, "{err}");
}

#[test]
fn quick_train_rejects_contradictory_flags() {
    assert!(run(&argv(&["train", "--quick", "--data", "x.aids"])).is_err());
    assert!(run(&argv(&["train", "--case", "1", "--samples", "10", "--data", "x.aids"])).is_err());
}
