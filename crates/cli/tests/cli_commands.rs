//! Integration tests driving the CLI command functions end to end with
//! temp files (no subprocess spawning needed — the binary is a thin shim).

use airchitect_cli::run;
use std::path::PathBuf;

fn argv(s: &[&str]) -> Vec<String> {
    s.iter().map(|v| v.to_string()).collect()
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("airchitect-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn help_and_unknown_commands() {
    assert!(run(&argv(&["help"])).is_ok());
    assert!(run(&argv(&["frobnicate"])).is_err());
    assert!(run(&[]).is_err());
}

#[test]
fn simulate_with_verification() {
    assert!(run(&argv(&[
        "simulate",
        "--m",
        "16",
        "--n",
        "16",
        "--k",
        "32",
        "--rows",
        "4",
        "--cols",
        "8",
        "--dataflow",
        "IS",
        "--verify",
    ]))
    .is_ok());
    // Bad dataflow is a run error, not a panic.
    assert!(run(&argv(&[
        "simulate",
        "--m",
        "4",
        "--n",
        "4",
        "--k",
        "4",
        "--rows",
        "2",
        "--cols",
        "2",
        "--dataflow",
        "XX",
    ]))
    .is_err());
    // Typo protection.
    assert!(run(&argv(&[
        "simulate", "--m", "4", "--n", "4", "--k", "4", "--rows", "2", "--cols", "2", "--bogus",
        "1",
    ]))
    .is_err());
}

#[test]
fn search_all_cases() {
    assert!(run(&argv(&[
        "search",
        "--case",
        "1",
        "--m",
        "100",
        "--n",
        "200",
        "--k",
        "300",
        "--budget-log2",
        "9",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "search",
        "--case",
        "2",
        "--m",
        "100",
        "--n",
        "200",
        "--k",
        "300",
        "--rows",
        "8",
        "--cols",
        "8",
        "--limit-kb",
        "900",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "search",
        "--case",
        "3",
        "--workloads",
        "64,64,64;128,32,16;8,8,8;256,16,32",
    ]))
    .is_ok());
    // Wrong workload count for case 3.
    assert!(run(&argv(&["search", "--case", "3", "--workloads", "1,2,3"])).is_err());
}

#[test]
fn spaces_prints() {
    assert!(run(&argv(&["spaces"])).is_ok());
    assert!(run(&argv(&["spaces", "--budget-log2", "10"])).is_ok());
}

#[test]
fn generate_train_recommend_cycle() {
    let dir = tmpdir();
    let data = dir.join("cs1.aids");
    let model = dir.join("cs1.airm");
    assert!(run(&argv(&[
        "generate",
        "--case",
        "1",
        "--samples",
        "300",
        "--budget-log2",
        "9",
        "--out",
        data.to_str().expect("utf8 path"),
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "train",
        "--case",
        "1",
        "--data",
        data.to_str().expect("utf8 path"),
        "--out",
        model.to_str().expect("utf8 path"),
        "--epochs",
        "2",
        "--batch",
        "64",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "recommend",
        "--model",
        model.to_str().expect("utf8 path"),
        "--m",
        "64",
        "--n",
        "64",
        "--k",
        "64",
        "--budget-log2",
        "8",
    ]))
    .is_ok());
    assert!(run(&argv(&[
        "evaluate",
        "--model",
        model.to_str().expect("utf8 path"),
        "--data",
        data.to_str().expect("utf8 path"),
        "--penalty",
        "--calibration",
    ]))
    .is_ok());
    // Training a case-2 model on case-1 data is rejected with a clear error.
    assert!(run(&argv(&[
        "train",
        "--case",
        "2",
        "--data",
        data.to_str().expect("utf8 path"),
        "--out",
        model.to_str().expect("utf8 path"),
    ]))
    .is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_quick_train_emits_schema_valid_telemetry() {
    let dir = tmpdir();
    let jsonl = dir.join("quick.jsonl");
    assert!(run(&argv(&[
        "train",
        "--quick",
        "--samples",
        "300",
        "--epochs",
        "2",
        "--trace",
        "--metrics-out",
        jsonl.to_str().expect("utf8 path"),
    ]))
    .is_ok());

    let text = std::fs::read_to_string(&jsonl).expect("telemetry file exists");
    let report = airchitect_telemetry::report::parse_report(&text).expect("schema-valid JSONL");
    assert_eq!(report.command, "train");
    for required in [
        "pipeline.datagen",
        "pipeline.train",
        "pipeline.eval",
        "train.epoch",
        "checkpoint.save",
    ] {
        assert!(
            report.spans.iter().any(|(name, _)| name == required),
            "span `{required}` missing from {:?}",
            report.spans.iter().map(|(n, _)| n).collect::<Vec<_>>()
        );
    }
    let epochs = &report.spans.iter().find(|(n, _)| n == "train.epoch").unwrap().1;
    assert_eq!(epochs.count, 2);

    // The `report` subcommand accepts the file both ways.
    assert!(run(&argv(&["report", jsonl.to_str().expect("utf8 path")])).is_ok());
    assert!(run(&argv(&["report", "--in", jsonl.to_str().expect("utf8 path")])).is_ok());

    // A truncated file (no end line) is rejected as corrupt.
    let truncated: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    let bad = dir.join("truncated.jsonl");
    std::fs::write(&bad, truncated).expect("write truncated file");
    assert!(run(&argv(&["report", bad.to_str().expect("utf8 path")])).is_err());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_flag_validation() {
    // Every bad-flag case is a usage error (exit code 2), not a crash.
    for bad in [
        vec!["serve"],                                        // no --model
        vec!["serve", "--model", ""],                         // empty path list
        vec!["serve", "--model", "x.airm", "--workers", "0"], // no workers
        vec!["serve", "--model", "x.airm", "--batch-max", "0"],
        vec!["serve", "--model", "x.airm", "--port", "99999"],
        vec!["serve", "--model", "x.airm", "--bogus", "1"], // typo protection
    ] {
        let err = run(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
        assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
    }
    // A missing model file is a run error (exit code 1), not a usage error.
    let err = run(&argv(&["serve", "--model", "/nonexistent/x.airm", "--port", "0"]))
        .expect_err("missing model file must fail");
    assert_eq!(err.exit_code(), 1, "{err}");
}

#[test]
fn quick_train_rejects_contradictory_flags() {
    assert!(run(&argv(&["train", "--quick", "--data", "x.aids"])).is_err());
    assert!(run(&argv(&["train", "--case", "1", "--samples", "10", "--data", "x.aids"])).is_err());
}

#[test]
fn serve_shadow_flag_validation() {
    // Shadow flags are validated before any socket is touched.
    for bad in [
        vec!["serve", "--model", "x.airm", "--shadow-oracle", "2.0"], // rate > 1
        vec!["serve", "--model", "x.airm", "--shadow-oracle", "nan"], // not a number
        vec!["serve", "--model", "x.airm", "--shadow-oracle", "0.5"], // no log dir
    ] {
        let err = run(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
        assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
    }
}

#[test]
fn train_from_log_fine_tunes_an_existing_model() {
    use airchitect_cli as _;
    use airchitect_online::{MispredLog, MispredRecord};
    use airchitect_repro_imports::*;

    let dir = tmpdir().join("from-log");
    std::fs::create_dir_all(&dir).expect("create log dir");
    let log_dir = dir.join("log");

    // A tiny CS1 model (30 classes over the 2^5-budget space).
    let (dim, classes) = (4usize, 30u32);
    let mut ds = Dataset::new(dim, classes).unwrap();
    let mut row = vec![0f32; dim];
    for i in 0..120usize {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((i * 31 + j * 7) % 97) as f32;
        }
        ds.push(&row, (i as u32 * 13) % classes).unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: classes,
            train: TrainConfig {
                epochs: 1,
                batch_size: 32,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).unwrap();
    let base = dir.join("base.airm");
    persist::save(&model, &base).unwrap();

    // A misprediction log with two current-version disagreements and one
    // stale record the replay must skip.
    let mut log = MispredLog::create(
        &log_dir,
        "shadow-test",
        airchitect_telemetry::rotate::RotateConfig::default(),
    )
    .unwrap();
    for (features, version) in [
        (vec![1.0f32, 2.0, 3.0, 4.0], 2u64),
        (vec![5.0f32, 6.0, 7.0, 8.0], 2),
        (vec![9.0f32, 1.0, 1.0, 1.0], 1), // stale: skipped
    ] {
        log.append(&MispredRecord {
            case: CaseStudy::ArrayDataflow,
            features,
            model_label: 3,
            oracle_label: 7,
            model_version: version,
            oracle_us: 40,
        })
        .unwrap();
    }
    log.close().unwrap();

    let base_s = base.to_str().unwrap();
    let log_s = log_dir.to_str().unwrap();
    let tuned = dir.join("tuned.airm");
    let tuned_s = tuned.to_str().unwrap();

    // Contradictory or malformed flags are usage errors.
    for bad in [
        vec!["train", "--from-log", log_s], // no --model / --out
        vec!["train", "--from-log", log_s, "--model", base_s, "--out", tuned_s, "--quick"],
        vec!["train", "--from-log", log_s, "--model", base_s, "--out", tuned_s, "--data", "x"],
        vec!["train", "--from-log", log_s, "--model", base_s, "--out", tuned_s, "--lr", "-1"],
    ] {
        let err = run(&argv(&bad)).expect_err(&format!("{bad:?} must be rejected"));
        assert_eq!(err.exit_code(), 2, "{bad:?}: {err}");
    }

    // The happy path writes a loadable fine-tuned artifact.
    assert!(run(&argv(&[
        "train", "--from-log", log_s, "--model", base_s, "--out", tuned_s, "--epochs", "2",
        "--lr", "1e-3",
    ]))
    .is_ok());
    let tuned_model = persist::load(&tuned).expect("fine-tuned artifact loads");
    assert_eq!(tuned_model.config().num_classes, classes);

    std::fs::remove_dir_all(&dir).ok();
}

/// The imports the from-log test needs, grouped so the test body reads
/// like the others.
mod airchitect_repro_imports {
    pub use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
    pub use airchitect::persist;
    pub use airchitect_data::Dataset;
    pub use airchitect_nn::train::TrainConfig;
}
