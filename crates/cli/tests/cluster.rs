//! End-to-end cluster test against the real `airchitect` binary: boot a
//! supervised 2-replica cluster, hammer it through the router, SIGKILL a
//! replica mid-run, and assert that no client request fails and the
//! killed replica is restarted and re-admitted to the ring.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_dse::case1::Case1Problem;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::RetryClient;
use airchitect_serve::{Cluster, ClusterConfig, ServeConfig};
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CS1_CLASSES: u32 = 459;

/// A briefly trained CS1 model persisted to a temp `.airm` (accuracy is
/// irrelevant; the replicas just need a loadable model).
fn model_file() -> PathBuf {
    let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    for _ in 0..400 {
        let wl = GemmWorkload::new(
            rng.random_range(16..512u64),
            rng.random_range(16..512u64),
            rng.random_range(16..512u64),
        )
        .unwrap();
        ds.push(
            &Case1Problem::features(&wl, 1 << 10),
            rng.random_range(0..CS1_CLASSES),
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: CS1_CLASSES,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).expect("train");
    let path = std::env::temp_dir().join(format!(
        "airchitect-cluster-test-{}.airm",
        std::process::id()
    ));
    persist::save(&model, &path).expect("persist model");
    path
}

#[test]
fn cluster_survives_a_replica_sigkill_under_load() {
    let model_path = model_file();
    let replica_config = ServeConfig {
        model_paths: vec![model_path.clone()],
        workers: 2,
        queue_depth: 1024,
        cache_capacity: 64,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let cfg = ClusterConfig {
        addr: "127.0.0.1:0".into(),
        replica_argv: Cluster::replica_argv(env!("CARGO_BIN_EXE_airchitect"), &replica_config),
        replicas: 2,
        probe_interval_ms: 50,
        probe_timeout_ms: 2000,
        restart_base_ms: 50,
        backend_timeout_ms: 30_000,
        read_timeout_secs: 30,
        ..ClusterConfig::default()
    };
    let probe_interval_ms = cfg.probe_interval_ms;
    let cluster = Cluster::start(cfg).expect("cluster starts");
    let addr = cluster.local_addr();
    let fleet = cluster.fleet();
    assert!(
        cluster.wait_healthy(2, Duration::from_secs(60)),
        "both replicas should pass startup probes"
    );
    let cluster_thread = std::thread::spawn(move || cluster.run());

    // Router healthz aggregates the fleet.
    let mut client = RetryClient::new(addr, Duration::from_secs(10), 4, Duration::from_millis(50));
    let healthz = client.get("/healthz").expect("healthz");
    assert_eq!(healthz.status, 200);
    assert!(healthz.body.contains("\"role\":\"router\""), "{}", healthz.body);
    assert!(healthz.body.contains("\"status\":\"ok\""), "{}", healthz.body);

    // Load with a SIGKILL a quarter of the way through. RetryClient only
    // retries transport errors, so a 5xx leaking through the router's
    // failover would fail the assertion below.
    let victim: u32 = 0;
    let bodies: Vec<String> = (0..16)
        .map(|i| format!("{{\"m\":{},\"n\":64,\"k\":32}}", 16 + i * 8))
        .collect();
    let mut failures = 0u64;
    for i in 0..200 {
        if i == 50 {
            assert!(
                fleet.kill_replica(victim),
                "victim replica should have a live child to kill"
            );
        }
        let resp = client
            .post("/v1/recommend/array", &bodies[i % bodies.len()])
            .expect("request survives failover");
        if resp.status != 200 {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 0,
        "a replica SIGKILL must not surface as client-visible errors"
    );

    // The supervisor restarts and re-admits the killed replica. The
    // request loop can drain before the probe thread even notices the
    // death (the victim still counts as healthy until ejected), so wait
    // for the full eject -> restart -> re-admit cycle, not just the
    // healthy count.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let restarts: u64 = fleet.views().iter().map(|v| v.restarts_total).sum();
        if restarts >= 1 && fleet.healthy() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed replica was not restarted and re-admitted within 30 s"
        );
        std::thread::sleep(Duration::from_millis(probe_interval_ms));
    }

    // Per-replica gauges show up in the router's aggregated metrics.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    for line in [
        "cluster.replica.0.restarts_total",
        "cluster.replica.1.healthy 1",
        "cluster.proxy_requests",
    ] {
        assert!(metrics.body.contains(line), "missing `{line}` in:\n{}", metrics.body);
    }

    // Reload fans out to every replica.
    let reload = client.post("/v1/reload", "").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.body);
    assert!(reload.body.contains("\"reloaded\":true"), "{}", reload.body);

    let shutdown = client.post("/v1/shutdown", "").expect("shutdown");
    assert_eq!(shutdown.status, 200);
    cluster_thread
        .join()
        .expect("cluster thread joins")
        .expect("cluster exits cleanly");
    let _ = std::fs::remove_file(&model_path);
}
