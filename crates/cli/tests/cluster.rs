//! End-to-end cluster test against the real `airchitect` binary: boot a
//! supervised 2-replica cluster, hammer it through the router, SIGKILL a
//! replica mid-run, and assert that no client request fails and the
//! killed replica is restarted and re-admitted to the ring.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use airchitect::model::{AirchitectConfig, AirchitectModel, CaseStudy};
use airchitect::persist;
use airchitect_data::Dataset;
use airchitect_dse::case1::Case1Problem;
use airchitect_nn::train::TrainConfig;
use airchitect_serve::client::RetryClient;
use airchitect_serve::{Cluster, ClusterConfig, ServeConfig};
use airchitect_workload::GemmWorkload;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CS1_CLASSES: u32 = 459;

/// A briefly trained CS1 model (accuracy is irrelevant; the replicas
/// just need a loadable model). Different seeds give different weights,
/// so artifacts trained from different seeds have distinct bytes.
fn train_model(seed: u64) -> AirchitectModel {
    let mut ds = Dataset::new(4, CS1_CLASSES).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..400 {
        let wl = GemmWorkload::new(
            rng.random_range(16..512u64),
            rng.random_range(16..512u64),
            rng.random_range(16..512u64),
        )
        .unwrap();
        ds.push(
            &Case1Problem::features(&wl, 1 << 10),
            rng.random_range(0..CS1_CLASSES),
        )
        .unwrap();
    }
    let mut model = AirchitectModel::new(
        CaseStudy::ArrayDataflow,
        &AirchitectConfig {
            num_classes: CS1_CLASSES,
            train: TrainConfig {
                epochs: 1,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    model.train(&ds).expect("train");
    model
}

/// The default test model persisted to a temp `.airm`.
fn model_file() -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "airchitect-cluster-test-{}.airm",
        std::process::id()
    ));
    persist::save(&train_model(3), &path).expect("persist model");
    path
}

#[test]
fn cluster_survives_a_replica_sigkill_under_load() {
    let model_path = model_file();
    let replica_config = ServeConfig {
        model_paths: vec![model_path.clone()],
        workers: 2,
        queue_depth: 1024,
        cache_capacity: 64,
        read_timeout_secs: 30,
        ..ServeConfig::default()
    };
    let cfg = ClusterConfig {
        addr: "127.0.0.1:0".into(),
        replica_argv: Cluster::replica_argv(env!("CARGO_BIN_EXE_airchitect"), &replica_config),
        replicas: 2,
        probe_interval_ms: 50,
        probe_timeout_ms: 2000,
        restart_base_ms: 50,
        backend_timeout_ms: 30_000,
        read_timeout_secs: 30,
        ..ClusterConfig::default()
    };
    let probe_interval_ms = cfg.probe_interval_ms;
    let cluster = Cluster::start(cfg).expect("cluster starts");
    let addr = cluster.local_addr();
    let fleet = cluster.fleet();
    assert!(
        cluster.wait_healthy(2, Duration::from_secs(60)),
        "both replicas should pass startup probes"
    );
    let cluster_thread = std::thread::spawn(move || cluster.run());

    // Router healthz aggregates the fleet.
    let mut client = RetryClient::new(addr, Duration::from_secs(10), 4, Duration::from_millis(50));
    let healthz = client.get("/healthz").expect("healthz");
    assert_eq!(healthz.status, 200);
    assert!(healthz.body.contains("\"role\":\"router\""), "{}", healthz.body);
    assert!(healthz.body.contains("\"status\":\"ok\""), "{}", healthz.body);

    // Load with a SIGKILL a quarter of the way through. RetryClient only
    // retries transport errors, so a 5xx leaking through the router's
    // failover would fail the assertion below.
    let victim: u32 = 0;
    let bodies: Vec<String> = (0..16)
        .map(|i| format!("{{\"m\":{},\"n\":64,\"k\":32}}", 16 + i * 8))
        .collect();
    let mut failures = 0u64;
    for i in 0..200 {
        if i == 50 {
            assert!(
                fleet.kill_replica(victim),
                "victim replica should have a live child to kill"
            );
        }
        let resp = client
            .post("/v1/recommend/array", &bodies[i % bodies.len()])
            .expect("request survives failover");
        if resp.status != 200 {
            failures += 1;
        }
    }
    assert_eq!(
        failures, 0,
        "a replica SIGKILL must not surface as client-visible errors"
    );

    // The supervisor restarts and re-admits the killed replica. The
    // request loop can drain before the probe thread even notices the
    // death (the victim still counts as healthy until ejected), so wait
    // for the full eject -> restart -> re-admit cycle, not just the
    // healthy count.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let restarts: u64 = fleet.views().iter().map(|v| v.restarts_total).sum();
        if restarts >= 1 && fleet.healthy() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed replica was not restarted and re-admitted within 30 s"
        );
        std::thread::sleep(Duration::from_millis(probe_interval_ms));
    }

    // Per-replica gauges show up in the router's aggregated metrics.
    let metrics = client.get("/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    for line in [
        "cluster.replica.0.restarts_total",
        "cluster.replica.1.healthy 1",
        "cluster.proxy_requests",
    ] {
        assert!(metrics.body.contains(line), "missing `{line}` in:\n{}", metrics.body);
    }

    // Reload fans out to every replica.
    let reload = client.post("/v1/reload", "").expect("reload");
    assert_eq!(reload.status, 200, "{}", reload.body);
    assert!(reload.body.contains("\"reloaded\":true"), "{}", reload.body);

    let shutdown = client.post("/v1/shutdown", "").expect("shutdown");
    assert_eq!(shutdown.status, 200);
    cluster_thread
        .join()
        .expect("cluster thread joins")
        .expect("cluster exits cleanly");
    let _ = std::fs::remove_file(&model_path);
}

/// The answer portion of a recommend response: everything after the
/// `"generation":N` field. The `"cached"` flag and producing generation
/// legitimately change across reloads and restarts; the recommendation
/// itself must not.
fn answer_of(body: &str) -> &str {
    let i = body.find("\"generation\":").expect("generation field");
    let rest = &body[i..];
    let j = rest.find(',').expect("fields after generation");
    &rest[j..]
}

/// SIGKILL-ing the replica that is mid-canary during a rolling reload
/// must roll the whole fleet back: the candidate version ends up
/// quarantined, the registry stays on the incumbent, the killed replica
/// is restarted onto `current.airm`, and every replica answers exactly
/// as it did before the rollout started.
#[test]
fn rolling_reload_mid_rollout_sigkill_rolls_the_fleet_back() {
    use airchitect_serve::registry::{Registry, DEFAULT_RETAIN};

    let dir = std::env::temp_dir().join(format!(
        "airchitect-cluster-rollout-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Seed the registry the way `serve --cluster --model-dir` does: the
    // router owns the MANIFEST, replicas serve `current.airm` by path.
    let seed_bytes = persist::to_bytes(&train_model(3));
    let current_path = {
        let mut reg = Registry::open(&dir, DEFAULT_RETAIN).expect("open registry");
        let v = reg.add_version(&seed_bytes).expect("seed version");
        reg.promote(v).expect("promote seed");
        reg.current_path()
    };
    let candidate_path = dir.join("candidate.airm");
    persist::save(&train_model(7), &candidate_path).expect("persist candidate");

    // min_samples is unreachable (no sampled traffic is driven), so the
    // staged replica sits in `evaluating` until we kill it.
    let replica_config = ServeConfig {
        model_paths: vec![current_path],
        workers: 2,
        queue_depth: 1024,
        cache_capacity: 64,
        read_timeout_secs: 30,
        canary_split: 1.0,
        canary_min_samples: 10_000,
        canary_min_agreement: 0.9,
        canary_max_p99_ratio: 1e9,
        ..ServeConfig::default()
    };
    let cfg = ClusterConfig {
        addr: "127.0.0.1:0".into(),
        replica_argv: Cluster::replica_argv(env!("CARGO_BIN_EXE_airchitect"), &replica_config),
        replicas: 2,
        probe_interval_ms: 50,
        probe_timeout_ms: 2000,
        restart_base_ms: 50,
        backend_timeout_ms: 30_000,
        read_timeout_secs: 30,
        model_dir: Some(dir.clone()),
        rollout_timeout_ms: 3_000,
        ..ClusterConfig::default()
    };
    let probe_interval_ms = cfg.probe_interval_ms;
    let cluster = Cluster::start(cfg).expect("cluster starts");
    let addr = cluster.local_addr();
    let fleet = cluster.fleet();
    assert!(
        cluster.wait_healthy(2, Duration::from_secs(60)),
        "both replicas should pass startup probes"
    );
    let cluster_thread = std::thread::spawn(move || cluster.run());
    let mut client = RetryClient::new(addr, Duration::from_secs(30), 4, Duration::from_millis(50));

    // Baseline answers; the fleet must return to exactly these.
    let bodies: Vec<String> = (0..16)
        .map(|i| format!("{{\"m\":{},\"n\":64,\"k\":32}}", 16 + i * 8))
        .collect();
    let baseline: Vec<String> = bodies
        .iter()
        .map(|b| {
            let resp = client.post("/v1/recommend/array", b).expect("baseline request");
            assert_eq!(resp.status, 200, "{}", resp.body);
            resp.body
        })
        .collect();

    // Kick off the rolling reload; it blocks in the router until the
    // fleet-wide verdict, so drive it from a second thread.
    let reload_thread = {
        let body = format!("{{\"path\":{:?}}}", candidate_path.display().to_string());
        std::thread::spawn(move || {
            let mut c = RetryClient::new(addr, Duration::from_secs(60), 1, Duration::from_millis(50));
            c.post("/v1/reload", &body).expect("reload request completes")
        })
    };

    // Wait for one replica to enter canary evaluation, then SIGKILL it.
    let deadline = Instant::now() + Duration::from_secs(30);
    'found: loop {
        assert!(Instant::now() < deadline, "no replica ever started evaluating");
        for view in fleet.views() {
            let Some(replica_addr) = view.addr else { continue };
            let mut probe =
                RetryClient::new(replica_addr, Duration::from_secs(5), 1, Duration::from_millis(20));
            if let Ok(health) = probe.get("/healthz") {
                if health.body.contains("\"state\":\"evaluating\"") {
                    assert!(fleet.kill_replica(view.id), "evaluating replica should be killable");
                    break 'found;
                }
            }
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // The router must notice the dead canary and roll the fleet back.
    let reload = reload_thread.join().expect("reload thread joins");
    assert_eq!(reload.status, 409, "{}", reload.body);
    assert!(reload.body.contains("\"rolled_back\":true"), "{}", reload.body);

    // Disk is authoritative: incumbent active, candidate quarantined.
    let manifest = Registry::open(&dir, DEFAULT_RETAIN).expect("reopen registry").manifest().clone();
    assert_eq!(manifest.active, Some(1), "{manifest:?}");
    let candidate = manifest.entries.iter().find(|e| e.version == 2).expect("candidate entry");
    assert!(candidate.quarantined, "{manifest:?}");

    // The killed replica restarts from `current.airm` and rejoins.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let restarts: u64 = fleet.views().iter().map(|v| v.restarts_total).sum();
        if restarts >= 1 && fleet.healthy() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed replica was not restarted and re-admitted within 30 s"
        );
        std::thread::sleep(Duration::from_millis(probe_interval_ms));
    }

    // Every replica answers exactly as before the aborted rollout.
    for (body, expected) in bodies.iter().zip(&baseline) {
        let resp = client.post("/v1/recommend/array", body).expect("post-rollback request");
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(
            answer_of(&resp.body),
            answer_of(expected),
            "fleet answers diverged after rollback"
        );
    }
    let metrics = client.get("/metrics").expect("metrics");
    assert!(
        metrics.body.contains("cluster.rollout.rollbacks 1"),
        "{}",
        metrics.body
    );

    let shutdown = client.post("/v1/shutdown", "").expect("shutdown");
    assert_eq!(shutdown.status, 200);
    cluster_thread
        .join()
        .expect("cluster thread joins")
        .expect("cluster exits cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
