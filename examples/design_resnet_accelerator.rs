//! Domain example: size a systolic array for ResNet-18 inference.
//!
//! Walks every GEMM of ResNet-18 through the conventional search flow at
//! several MAC budgets, reports the per-layer optima, and shows how a single
//! fixed configuration compares against per-layer reconfiguration — the
//! design tension that motivates learned, per-workload recommendation.
//!
//! Run with:
//! ```text
//! cargo run --release --example design_resnet_accelerator
//! ```

use airchitect_repro::dse::case1::Case1Problem;
use airchitect_repro::sim::{compute, Dataflow};
use airchitect_repro::workload::models;

fn main() {
    let net = models::resnet18();
    let gemms = net.gemms();
    println!("ResNet-18: {} GEMM layers\n", gemms.len());

    let problem = Case1Problem::new(1 << 14);
    let budget = 1u64 << 12; // 4096 MACs, a mid-size edge accelerator

    println!("per-layer optimal configuration at 2^12 MACs:");
    println!(
        "  {:<24} {:>12} {:>10} {:>5} {:>12}",
        "layer", "GEMM (M,N,K)", "array", "df", "cycles"
    );
    let mut per_layer_total = 0u64;
    let mut results = Vec::new();
    for (name, wl) in &gemms {
        let r = problem.search(wl, budget);
        let (array, df) = problem.space().decode(r.label).expect("label in space");
        println!(
            "  {:<24} {:>4},{:>4},{:>4} {:>10} {:>5} {:>12}",
            name,
            wl.m(),
            wl.n(),
            wl.k(),
            array.to_string(),
            df.to_string(),
            r.cost
        );
        per_layer_total += r.cost;
        results.push((wl, r.label));
    }

    // How much does committing to ONE fixed configuration cost?
    println!("\nfixed-configuration comparison (whole network on one array):");
    let mut best_fixed: Option<(String, u64)> = None;
    for (_, array, df) in problem.space().iter() {
        if array.macs() > budget {
            continue;
        }
        let total: u64 = gemms
            .iter()
            .map(|(_, wl)| compute::runtime_cycles(wl, array, df))
            .sum();
        if best_fixed.as_ref().is_none_or(|(_, t)| total < *t) {
            best_fixed = Some((format!("{array} {df}"), total));
        }
    }
    let (fixed_name, fixed_total) = best_fixed.expect("budget admits shapes");
    println!("  best fixed config:      {fixed_name} -> {fixed_total} cycles");
    println!("  per-layer reconfigured: {per_layer_total} cycles");
    println!(
        "  reconfiguration speedup: {:.2}x",
        fixed_total as f64 / per_layer_total as f64
    );

    // Dataflow mix of the per-layer optima.
    let mut mix = [0usize; 3];
    for (_, label) in &results {
        let (_, df) = problem.space().decode(*label).expect("label in space");
        mix[df.index()] += 1;
    }
    println!("\ndataflow mix across layers:");
    for df in Dataflow::ALL {
        println!("  {df}: {} layers", mix[df.index()]);
    }
    println!("\nno single (shape, dataflow) fits all layers — which is why the");
    println!("paper learns a per-workload recommender instead of a lookup table.");
}
