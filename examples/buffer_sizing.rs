//! Domain example: SRAM buffer sizing under a capacity budget (case study 2).
//!
//! For a fixed 32x32 weight-stationary array, sweeps the interface bandwidth
//! and the capacity limit, searching the 1000-point buffer space each time,
//! and shows how the optimal (IFMAP, Filter, OFMAP) split shifts — the
//! stationary operand's buffer stays minimal while the streaming operands
//! compete for capacity.
//!
//! Run with:
//! ```text
//! cargo run --release --example buffer_sizing
//! ```

use airchitect_repro::dse::case2::{Case2Problem, Case2Query};
use airchitect_repro::sim::{ArrayConfig, Dataflow};
use airchitect_repro::workload::GemmWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = Case2Problem::new();
    let workload = GemmWorkload::new(3136, 512, 1152)?; // a mid ResNet layer
    let array = ArrayConfig::new(32, 32)?;

    println!("workload: {workload} on a {array} array\n");

    for dataflow in Dataflow::ALL {
        println!("--- {dataflow} dataflow ---");
        println!(
            "  {:>4} {:>8} | {:>7} {:>7} {:>7} | {:>12}",
            "bw", "limit", "IFMAP", "Filter", "OFMAP", "stalls"
        );
        for (bandwidth, limit_kb) in [(4u64, 600u64), (4, 1500), (32, 600), (32, 1500)] {
            let query = Case2Query {
                workload,
                array,
                dataflow,
                bandwidth,
                limit_kb,
            };
            let result = problem.search(&query);
            let (i, f, o) = problem
                .space()
                .decode(result.label)
                .expect("label in space");
            println!(
                "  {bandwidth:>4} {limit_kb:>7}K | {i:>6}K {f:>6}K {o:>6}K | {:>12}",
                result.cost
            );
        }
        println!();
    }

    println!("observations (match paper Fig. 6d-f):");
    println!("  * WS keeps the Filter buffer at the 100 KB minimum — weights are");
    println!("    pinned in the array, the buffer only stages tiles;");
    println!("  * IS does the same for the IFMAP buffer;");
    println!("  * more bandwidth shrinks the buffers needed to reach zero stalls;");
    println!("  * tighter limits squeeze the OFMAP buffer first.");
    Ok(())
}
