//! Domain example: scheduling four concurrent workloads on a heterogeneous
//! multi-array accelerator (case study 3), with a learned scheduler.
//!
//! Trains a small CS3 model, then compares three schedulers on fresh
//! workload mixes: exhaustive search (optimal), the learned recommender
//! (constant time), and a naive identity schedule.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_array_scheduler
//! ```

use airchitect_repro::core::pipeline::{run_case3, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::dse::case3::Case3Problem;
use airchitect_repro::sim::multi::Schedule;
use airchitect_repro::sim::Dataflow;
use airchitect_repro::workload::distribution::CnnWorkloadSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let problem = Case3Problem::new();
    println!("system: {} heterogeneous arrays", problem.system().len());
    for (i, inst) in problem.system().instances().iter().enumerate() {
        println!(
            "  array {i}: {} ({} KB buffers, {} B/cycle)",
            inst.config,
            inst.buffers.total_kb(),
            inst.bandwidth
        );
    }

    println!("\ntraining the scheduler (a few minutes of search + training)...");
    let run = run_case3(&PipelineConfig {
        samples: 3_000,
        epochs: 10,
        batch_size: 128,
        seed: 33,
        stratify: false,
        threads: 1,
    });
    println!(
        "  test accuracy {:.3}, geomean performance {:.4}",
        run.test_accuracy, run.penalty.geomean
    );
    let recommender = Recommender::new(run.model)?;

    println!("\nscheduling fresh workload mixes:");
    println!(
        "  {:<6} {:>12} {:>12} {:>12} {:>8}",
        "mix", "search", "learned", "naive", "ratio"
    );
    let sampler = CnnWorkloadSampler::new();
    let mut rng = StdRng::seed_from_u64(1234);
    let naive = Schedule::new(&[0, 1, 2, 3], &[Dataflow::Os; 4]);
    let mut learned_vs_opt = Vec::new();
    for mix in 0..8 {
        let workloads = sampler.sample_many(4, &mut rng);
        let optimal = problem.search(&workloads);
        let schedule = recommender.recommend_schedule(&problem, &workloads)?;
        let learned = problem.system().evaluate(&workloads, &schedule)?;
        let naive_cost = problem.system().evaluate(&workloads, &naive)?;
        let ratio = optimal.cost as f64 / learned.makespan as f64;
        learned_vs_opt.push(ratio);
        println!(
            "  {mix:<6} {:>12} {:>12} {:>12} {:>8.3}",
            optimal.cost, learned.makespan, naive_cost.makespan, ratio
        );
    }
    let mean = learned_vs_opt.iter().sum::<f64>() / learned_vs_opt.len() as f64;
    println!(
        "\n  learned scheduler achieves {:.1}% of the optimal makespan on average,",
        mean * 100.0
    );
    println!(
        "  with one inference instead of {} schedule evaluations.",
        problem.space().len()
    );
    Ok(())
}
