//! Quickstart: train a small AIrchitect model for case study 1 and ask it
//! for an accelerator configuration — the paper's Fig. 1(b) flow end to end.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use airchitect_repro::core::pipeline::{run_case1, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::dse::case1::Case1Problem;
use airchitect_repro::workload::GemmWorkload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline phase (paper "Step 3"): generate search-labeled data and train.
    // 8k samples / 10 epochs keeps this example under a minute; scale up for
    // paper-grade accuracy.
    println!("training AIrchitect on search-generated optima...");
    let config = PipelineConfig {
        samples: 8_000,
        epochs: 10,
        batch_size: 256,
        seed: 42,
        stratify: false,
        threads: 1,
    };
    let budget_log2_range = (5, 15);
    let run = run_case1(&config, budget_log2_range);
    println!(
        "  trained: validation accuracy {:.3}, test accuracy {:.3}",
        run.report.history.final_val_accuracy().unwrap_or(f64::NAN),
        run.test_accuracy
    );
    println!(
        "  misprediction penalty: geomean performance {:.4} of optimal",
        run.penalty.geomean
    );

    // Online phase (paper "Step 1'"): constant-time recommendation.
    let problem = Case1Problem::new(1 << budget_log2_range.1);
    let recommender = Recommender::new(run.model)?;

    let workload = GemmWorkload::new(3025, 96, 363)?; // AlexNet conv1 as GEMM
    let budget = 1u64 << 10;
    let t0 = std::time::Instant::now();
    let (array, dataflow) = recommender.recommend_array(&problem, &workload, budget)?;
    let inference_time = t0.elapsed();

    println!("\nquery: {workload} with a budget of 2^10 MACs");
    println!("  recommended array: {array} with {dataflow} dataflow");
    println!("  inference time:    {inference_time:?} (constant — no search)");

    // Compare with the conventional flow the model replaces.
    let t0 = std::time::Instant::now();
    let truth = problem.search(&workload, budget);
    let search_time = t0.elapsed();
    let (best_array, best_df) = problem.space().decode(truth.label).expect("label in space");
    println!(
        "  exhaustive search: {best_array} with {best_df} dataflow \
         ({} configs evaluated in {search_time:?})",
        truth.evaluations
    );

    let label = problem
        .space()
        .encode(array, dataflow)
        .expect("recommended config is in the space");
    let perf = problem.normalized_performance(&workload, budget, label);
    println!(
        "  recommendation achieves {:.1}% of the optimal runtime",
        perf * 100.0
    );
    Ok(())
}
