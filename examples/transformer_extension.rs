//! Extension example: out-of-distribution recommendation for transformer
//! GEMMs.
//!
//! The paper trains and evaluates on CNN-derived workloads and proposes
//! extending the methodology to other spaces as future work. This example
//! probes that direction: a model trained on the CNN distribution is queried
//! with BERT-base encoder GEMMs it has never seen anything like (long
//! reductions, square attention products), and every recommendation is
//! scored against exhaustive search.
//!
//! Run with:
//! ```text
//! cargo run --release --example transformer_extension
//! ```

use airchitect_repro::core::pipeline::{run_case1, PipelineConfig};
use airchitect_repro::core::Recommender;
use airchitect_repro::dse::case1::Case1Problem;
use airchitect_repro::workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("training on the paper's CNN workload distribution...");
    let run = run_case1(
        &PipelineConfig {
            samples: 10_000,
            epochs: 12,
            batch_size: 256,
            seed: 7,
            stratify: false,
            threads: 1,
        },
        (5, 15),
    );
    println!("  CNN test accuracy: {:.3}\n", run.test_accuracy);

    let problem = Case1Problem::new(1 << 15);
    let recommender = Recommender::new(run.model)?;
    let budget = 1u64 << 12;

    println!("querying with BERT-base encoder GEMMs (never seen in training):");
    println!(
        "  {:<16} {:>16} {:>12} {:>12} {:>6}",
        "layer", "GEMM (M,N,K)", "searched", "predicted", "perf"
    );
    let mut perf_sum = 0.0;
    let bert = models::bert_base();
    let gemms = bert.gemms();
    for (layer, wl) in &gemms {
        let truth = problem.search(wl, budget);
        let (ta, tdf) = problem.space().decode(truth.label).expect("label in space");
        let (pa, pdf) = recommender.recommend_array(&problem, wl, budget)?;
        let label = problem
            .space()
            .encode(pa, pdf)
            .expect("recommended config is in the space");
        let perf = problem.normalized_performance(wl, budget, label);
        perf_sum += perf;
        println!(
            "  {:<16} {:>5},{:>5},{:>4} {:>8}:{:<3} {:>8}:{:<3} {:>6.3}",
            layer,
            wl.m(),
            wl.n(),
            wl.k(),
            ta.to_string(),
            tdf.to_string(),
            pa.to_string(),
            pdf.to_string(),
            perf
        );
    }
    let mean = perf_sum / gemms.len() as f64;
    println!(
        "\nmean normalized performance on transformer layers: {:.3}",
        mean
    );
    println!("(CNN-trained models transfer when the transformer GEMM falls inside");
    println!("the training distribution's support, and degrade gracefully outside");
    println!("it — quantifying the retraining need the paper's future work implies.)");

    // Show the top-3 ranked recommendations for the hardest layer.
    let (layer, wl) = &gemms[gemms.len() - 1];
    println!("\ntop-3 ranked recommendations for {layer} ({wl}):");
    for (array, df, p) in recommender.recommend_array_topk(&problem, wl, budget, 3)? {
        println!("  {array} with {df}  (confidence {p:.3})");
    }
    Ok(())
}
